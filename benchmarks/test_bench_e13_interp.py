"""E13 — Figure 2 / section 7.2: the single-node interpreter pipeline.

Claims regenerated:
* interpreted behaviors run the same coordination primitives as native
  ones (a ping-pong rally and a counter in both);
* the port discipline matches Figure 2 (invocations on the
  Invocation-port, ``become`` on the Behavior-port, ``create`` replies on
  the RPC-port) — reported as counted traffic;
* interpretation overhead: host-time per invocation, interpreted vs
  native Python behaviors.
"""

import time

from repro.core.actor import Behavior
from repro.interp import BehaviorLibrary, InterpretedBehavior
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.util import TextTable

from .common import emit

SCRIPTS = """
(behavior s-counter (count)
  (method incr (by) (become s-counter (+ count by)))
  (method query () (send-to (reply-addr) count)))

(behavior s-ponger ()
  (method ping (n from) (send-to from (list "pong" n))))

(behavior s-pinger (peer remaining)
  (method start () (send-to peer (list "ping" remaining (self))))
  (method pong (n)
    (if (> remaining 1)
        (begin
          (become s-pinger peer (- remaining 1))
          (send-to peer (list "ping" (- remaining 1) (self))))
        nil)))

(behavior s-spawner ()
  (method go (n)
    (for i (range n)
      (create s-ponger))))

(behavior s-cruncher ()
  (method spin (n)
    (define total 0)
    (define i 0)
    (while (< i n)
      (set! total (+ total (* i i)))
      (set! i (+ i 1)))
    total))
"""


class NativeCruncher(Behavior):
    def receive(self, ctx, message):
        _kind, n = message.payload
        total = 0
        for i in range(n):
            total += i * i


class NativeCounter(Behavior):
    def __init__(self, count=0):
        self.count = count

    def receive(self, ctx, message):
        kind, *rest = message.payload
        if kind == "incr":
            self.count += rest[0]
        elif kind == "query":
            ctx.send_to(message.reply_to, self.count)


def _counter_run(kind, n_messages):
    system = ActorSpaceSystem(topology=Topology.single(), seed=0)
    if kind == "native":
        actor = system.create_actor(NativeCounter())
        payloads = [("incr", 1)] * n_messages
    else:
        lib = BehaviorLibrary()
        lib.load(SCRIPTS)
        engine = "bytecode" if kind == "bytecode" else "tree"
        actor = system.create_actor(
            InterpretedBehavior(lib, lib.get("s-counter"), [0], engine=engine))
        payloads = [["incr", 1]] * n_messages
    t0 = time.perf_counter()
    for p in payloads:
        system.send_to(actor, p)
    system.run()
    elapsed = time.perf_counter() - t0
    return elapsed / n_messages * 1e6  # host microseconds per invocation


def test_bench_e13_interp(benchmark):
    overhead = TextTable(
        ["behavior kind", "host us/invocation", "vs native"],
        title="E13a: interpretation overhead — counter, 2000 invocations "
              "(tree walker vs the §7 'future' byte-compiler)",
    )
    native = _counter_run("native", 2000)
    tree = _counter_run("tree", 2000)
    compiled = _counter_run("bytecode", 2000)
    overhead.add_row(["native (Python)", native, 1.0])
    overhead.add_row(["interpreted (tree walker)", tree, tree / native])
    overhead.add_row(["interpreted (bytecode VM)", compiled, compiled / native])

    crunch = TextTable(
        ["behavior kind", "host ms for spin(3000)", "vs tree walker"],
        title="E13a': compute-heavy method — where the byte-compiler pays off",
    )
    results = {}
    for kind in ("native", "tree", "bytecode"):
        system = ActorSpaceSystem(topology=Topology.single(), seed=0)
        if kind == "native":
            actor = system.create_actor(NativeCruncher())
        else:
            lib = BehaviorLibrary()
            lib.load(SCRIPTS)
            actor = system.create_actor(
                InterpretedBehavior(lib, lib.get("s-cruncher"), [],
                                    engine=kind))
        t0 = time.perf_counter()
        system.send_to(actor, ["spin", 3000])
        system.run()
        results[kind] = (time.perf_counter() - t0) * 1e3
    for kind, label in (("native", "native (Python)"),
                        ("tree", "interpreted (tree walker)"),
                        ("bytecode", "interpreted (bytecode VM)")):
        crunch.add_row([label, results[kind],
                        results[kind] / results["tree"]])

    # Port discipline on a rally + spawner.
    system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)
    lib = BehaviorLibrary()
    lib.load(SCRIPTS)
    ponger = system.create_actor(
        InterpretedBehavior(lib, lib.get("s-ponger"), []), node=1)
    pinger = system.create_actor(
        InterpretedBehavior(lib, lib.get("s-pinger"), [ponger, 5]))
    spawner = system.create_actor(
        InterpretedBehavior(lib, lib.get("s-spawner"), []))
    system.send_to(pinger, ["start"])
    system.run()
    system.send_to(spawner, ["go", 3])
    system.run()

    ports = TextTable(
        ["actor", "invocation port", "behavior port", "rpc port"],
        title="E13b: Figure-2 port traffic",
    )
    for name, addr in (("pinger (5-rally)", pinger),
                       ("ponger", ponger),
                       ("spawner (3 creates)", spawner)):
        pc = system.actor_record(addr).behavior.ports
        ports.add_row([name, pc.invocation, pc.behavior, pc.rpc])
    emit("e13_interp", overhead, crunch, ports)
    benchmark(lambda: _counter_run(True, 200))
