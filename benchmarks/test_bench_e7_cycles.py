"""E7 — section 5.7: the cost of cycle prevention.

"In implementation terms, avoiding such cycles means that a visibility
relation graph must be constructed before an actorSpace is allowed to be
visible."  The experiment measures that cost — the DAG reachability check
at ``make_visible`` — against the space-graph size, and exercises the
message-tagging alternative the paper sketches.
"""

import time

from repro.core.actorspace import SpaceRecord
from repro.core.addresses import SpaceAddress
from repro.core.errors import VisibilityCycleError
from repro.core.manager import CyclePolicy, SpaceManager
from repro.core.visibility import Directory
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.util import TextTable

from .common import emit


def _random_dag_directory(n_spaces, edges_per_space, seed=0):
    import numpy as np

    rng = np.random.default_rng(seed)
    d = Directory()
    spaces = [SpaceAddress(0, i) for i in range(n_spaces)]
    for s in spaces:
        d.add_space(SpaceRecord(s))
    # Edges only from lower to higher index: guaranteed acyclic input.
    for i, s in enumerate(spaces[:-1]):
        for _ in range(edges_per_space):
            j = int(rng.integers(i + 1, n_spaces))
            d.make_visible(spaces[j], f"e{i}-{j}", s)
    return d, spaces


def _check_cost(n_spaces, edges_per_space, probes=200):
    """Wall time per make_visible including the DAG check."""
    d, spaces = _random_dag_directory(n_spaces, edges_per_space)
    import numpy as np

    rng = np.random.default_rng(1)
    t0 = time.perf_counter()
    rejected = 0
    for _ in range(probes):
        a = int(rng.integers(0, len(spaces)))
        b = int(rng.integers(0, len(spaces)))
        try:
            d.make_visible(spaces[a], "probe", spaces[b])
        except VisibilityCycleError:
            rejected += 1
    elapsed = time.perf_counter() - t0
    return elapsed / probes * 1e6, rejected  # microseconds, count


def test_bench_e7_cycles(benchmark):
    cost = TextTable(
        ["spaces", "edges/space", "us per make_visible", "cycle attempts rejected"],
        title="E7a: DAG-check cost vs visibility-graph size (200 probes)",
    )
    for n, e in ((10, 2), (100, 2), (500, 3), (2000, 3)):
        us, rejected = _check_cost(n, e)
        cost.add_row([n, e, us, rejected])

    # The adversarial column: every direct attempt to close a cycle must
    # be rejected, at any size.
    adversarial = TextTable(
        ["chain length", "closing edge rejected"],
        title="E7b: adversarial cycle attempts on a visibility chain",
    )
    for length in (2, 10, 100, 1000):
        d = Directory()
        spaces = [SpaceAddress(0, i) for i in range(length)]
        for s in spaces:
            d.add_space(SpaceRecord(s))
        for parent, child in zip(spaces, spaces[1:]):
            d.make_visible(child, "link", parent)
        try:
            d.make_visible(spaces[0], "close", spaces[-1])
            rejected = False
        except VisibilityCycleError:
            rejected = True
        adversarial.add_row([length, rejected])

    # Tagging alternative: a cycle is tolerated at make_visible, and the
    # routing layer drops messages whose traces exceed the hop budget.
    factory = lambda: SpaceManager(cycles=CyclePolicy.TAGGING,
                                   max_forward_hops=8)
    system = ActorSpaceSystem(topology=Topology.lan(2), seed=0,
                              root_manager_factory=factory)
    s = system.create_space(attributes="outer",
                            manager_factory=factory)
    system.run()
    system.make_visible(s, "inner", s)  # allowed under TAGGING
    system.run()
    tagging = TextTable(
        ["policy", "self-visibility allowed", "defence"],
        title="E7c: the section-5.7 alternative",
    )
    d0 = system.directory_of(0)
    tagging.add_row([
        "dag-check", False, "rejected at make_visible",
    ])
    tagging.add_row([
        "tagging", s in d0.space(s), "hop budget traps cycling messages",
    ])
    emit("e7_cycles", cost, adversarial, tagging)
    benchmark(lambda: _check_cost(500, 3, probes=50))
