"""E16 — section 5.3: the cost of ordering broadcasts.

"However, better performance may be obtained by not guaranteeing any
order on broadcast messages, when such an ordering is not necessary or
desirable, which is why we do not enforce any ordering of broadcasts."

The experiment quantifies that design decision: the same burst of group
messages delivered (a) as plain unordered broadcasts and (b) through the
paper's serializer-actor recipe (``core.ordering``).  Measured: mean and
p95 delivery latency, messages carried, and whether all members agree on
the order (they never do under (a) for bursts, always do under (b)).
"""

from repro.core.actor import Behavior
from repro.core.ordering import OrderedGroup
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.util import TextTable, summarize

from .common import emit

SEED = 21
BURST = 20


class Log(Behavior):
    def __init__(self):
        self.items = []

    def receive(self, ctx, message):
        self.items.append((ctx.now, message.payload))


def _members(system, group, n):
    logs = []
    for i in range(n):
        log = Log()
        behavior = group.member(log) if group is not None else log
        addr = system.create_actor(behavior, node=i % system.topology.node_count)
        system.make_visible(addr, f"team/m{i}")
        logs.append(log)
    system.run()
    return logs


def _delivery_latencies(logs, send_times):
    out = []
    for log in logs:
        for t, payload in log.items:
            out.append(t - send_times[payload])
    return out


def _unordered(n_members):
    system = ActorSpaceSystem(topology=Topology.lan(4), seed=SEED)
    logs = _members(system, None, n_members)
    start = system.clock.now
    send_times = {}
    for i in range(BURST):
        send_times[i] = system.clock.now
        system.broadcast("team/*", i)
    system.run()
    orders = {tuple(p for _t, p in log.items) for log in logs}
    return {
        "latency": _delivery_latencies(logs, send_times),
        "agree": len(orders) == 1,
        "messages": sum(system.tracer.delivered.values()),
        "makespan": system.clock.now - start,
    }


def _ordered(n_members):
    system = ActorSpaceSystem(topology=Topology.lan(4), seed=SEED)
    group = OrderedGroup(system, "team/*")
    logs = _members(system, group, n_members)
    start = system.clock.now
    send_times = {}
    for i in range(BURST):
        send_times[i] = system.clock.now
        group.post(i)
    system.run()
    orders = {tuple(p for _t, p in log.items) for log in logs}
    return {
        "latency": _delivery_latencies(logs, send_times),
        "agree": len(orders) == 1,
        "messages": sum(system.tracer.delivered.values()),
        "makespan": system.clock.now - start,
    }


def test_bench_e16_ordering(benchmark):
    table = TextTable(
        ["members", "mode", "mean latency", "p95 latency", "deliveries",
         "members agree on order"],
        title=f"E16: {BURST}-message burst to a group — unordered vs "
              "serializer-ordered",
    )
    for n in (4, 8, 16):
        for label, run in (("unordered broadcast", _unordered),
                           ("serializer-ordered", _ordered)):
            r = run(n)
            lat = summarize(r["latency"])
            table.add_row([
                n, label, lat["mean"], lat["p95"], lat["count"], r["agree"],
            ])
    emit("e16_ordering", table)
    benchmark(lambda: _ordered(8))
