"""Wire-transport benchmark: in-process simulator vs real TCP loopback.

Measures, for a 3-node topology:

* **send throughput** — point-to-point envelopes per second, one sender
  actor pumping messages at a receiver on another node;
* **broadcast throughput** — pattern-directed broadcasts per second,
  each fanning out to one visible receiver per node;
* **RTT** — request/reply round-trip latency through an echo actor on a
  remote node (median over many pings).

Run directly (not under pytest; process spawning and wall-time loops do
not fit the pytest-benchmark calibration model)::

    PYTHONPATH=src python benchmarks/bench_net.py [--quick]

Emits ``BENCH_net.json`` next to this file and a table on stdout.  The
point of the comparison: the simulator's numbers are *virtual-time*
throughput of the scheduling machinery, the TCP numbers are real bytes
through real sockets — the gap is the price of actual distribution.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.messages import Destination  # noqa: E402
from repro.net.cluster import LocalCluster, loopback_available  # noqa: E402
from repro.runtime.network import Topology  # noqa: E402
from repro.runtime.system import ActorSpaceSystem  # noqa: E402

HERE = pathlib.Path(__file__).resolve().parent
NODES = 3


# -- in-process (simulator) side -------------------------------------------------

def bench_sim(messages: int, pings: int) -> dict:
    """Drive the same three shapes through the single-process runtime."""
    system = ActorSpaceSystem(topology=Topology.lan(NODES), seed=0)
    received = [0]

    def sink(ctx, message):
        received[0] += 1

    target = system.create_actor(sink, node=1)
    wall0 = time.perf_counter()
    for index in range(messages):
        system.send_to(target, ("n", index))
    system.run()
    send_wall = time.perf_counter() - wall0
    assert received[0] == messages

    space = system.create_space(attributes="bench")
    for node in range(NODES):
        addr = system.create_actor(sink, node=node, space=space)
        system.make_visible(addr, f"bench/r{node}", space)
    system.run()
    received[0] = 0
    wall0 = time.perf_counter()
    for index in range(messages):
        system.broadcast(Destination("**", space), ("n", index))
    system.run()
    bcast_wall = time.perf_counter() - wall0
    assert received[0] == messages * NODES

    def echo(ctx, message):
        ctx.send_to(message.reply_to, message.payload)

    echoer = system.create_actor(echo, node=2)
    got = [0]

    def collect(ctx, message):
        got[0] += 1

    collector = system.create_actor(collect, node=0)
    wall0 = time.perf_counter()
    for index in range(pings):
        system.send_to(echoer, ("ping", index), reply_to=collector)
        system.run()
    ping_wall = time.perf_counter() - wall0
    assert got[0] == pings

    return {
        "transport": "sim",
        "send_msgs_per_s": round(messages / send_wall, 1),
        "broadcast_msgs_per_s": round(messages / bcast_wall, 1),
        "rtt_ms_median": round(ping_wall / pings * 1000, 4),
    }


# -- TCP loopback side -----------------------------------------------------------

def bench_tcp(messages: int, pings: int) -> dict:
    """The same shapes across three real node processes."""
    cluster = LocalCluster(NODES, seed=0)
    cluster.start()
    try:
        counter = cluster.call(
            1, "create_actor", behavior="counter", params={})["address"]

        def count_of() -> int:
            state = cluster.call(1, "actor_state", address=counter,
                                 attrs=["count"])
            return state["count"]

        wall0 = time.perf_counter()
        for index in range(messages):
            cluster.call(0, "send_to", target=counter, payload=("n", index))
        cluster.wait_until(lambda: count_of() >= messages,
                           timeout=120, what="sends counted")
        send_wall = time.perf_counter() - wall0

        space = cluster.call(0, "create_space", attributes="bench")["address"]
        cluster.wait_until(
            lambda: all(cluster.call(i, "has_space", address=space)
                        for i in range(NODES)),
            what="bench space replicated")
        replicas = []
        for node in range(NODES):
            replicas.append(cluster.call(
                node, "create_actor", behavior="counter", params={},
                space=space,
                visible={"attributes": f"bench/r{node}", "space": space},
            )["address"])
        cluster.wait_until(
            lambda: all(
                len(cluster.call(i, "resolve", pattern="**", space=space))
                == NODES for i in range(NODES)),
            what="replica visibility")

        def replica_total() -> int:
            total = 0
            for node, addr in enumerate(replicas):
                state = cluster.call(node, "actor_state", address=addr,
                                     attrs=["count"])
                total += state["count"]
            return total

        wall0 = time.perf_counter()
        for index in range(messages):
            cluster.call(0, "broadcast",
                         destination=Destination("**", space),
                         payload=("n", index))
        cluster.wait_until(lambda: replica_total() >= messages * NODES,
                           timeout=120, what="broadcasts counted")
        bcast_wall = time.perf_counter() - wall0

        # RTT: each control round trip is launcher -> node 0 -> (route to
        # node 2, count) -> observed via node 2; measure the full
        # send-until-visible latency per ping.
        echo_counter = cluster.call(
            2, "create_actor", behavior="counter", params={})["address"]
        samples = []
        for index in range(pings):
            before = cluster.call(2, "actor_state", address=echo_counter,
                                  attrs=["count"])["count"]
            t0 = time.perf_counter()
            cluster.call(0, "send_to", target=echo_counter,
                         payload=("ping", index))
            cluster.wait_until(
                lambda: cluster.call(2, "actor_state", address=echo_counter,
                                     attrs=["count"])["count"] > before,
                timeout=30, interval=0.0, what="ping observed")
            samples.append((time.perf_counter() - t0) * 1000)
        snapshot = cluster.call(0, "snapshot")
        return {
            "transport": "tcp-loopback",
            "send_msgs_per_s": round(messages / send_wall, 1),
            "broadcast_msgs_per_s": round(messages / bcast_wall, 1),
            "rtt_ms_median": round(statistics.median(samples), 4),
            "frames_out_node0": snapshot["hub"]["frames_out"],
            "bytes_out_node0": snapshot["hub"]["bytes_out"],
        }
    finally:
        cluster.shutdown()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--messages", type=int, default=2000,
                        help="messages per throughput loop (default 2000)")
    parser.add_argument("--pings", type=int, default=200,
                        help="RTT samples (default 200)")
    parser.add_argument("--quick", action="store_true",
                        help="small counts for smoke runs (200 msgs, 20 pings)")
    parser.add_argument("--out", default=str(HERE / "BENCH_net.json"),
                        help="output JSON path")
    args = parser.parse_args(argv)
    messages = 200 if args.quick else args.messages
    pings = 20 if args.quick else args.pings

    rows = [bench_sim(messages, pings)]
    if loopback_available():
        rows.append(bench_tcp(messages, pings))
    else:
        print("loopback TCP unavailable; emitting simulator row only")

    header = f"{'transport':<14} {'send msg/s':>12} {'bcast msg/s':>12} {'rtt ms':>9}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['transport']:<14} {row['send_msgs_per_s']:>12} "
              f"{row['broadcast_msgs_per_s']:>12} {row['rtt_ms_median']:>9}")

    report = {"nodes": NODES, "messages": messages, "pings": pings,
              "results": rows}
    pathlib.Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
