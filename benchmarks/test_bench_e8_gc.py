"""E8 — section 5.5: garbage collection of actors and actorSpaces.

Claims regenerated:
* visible actors are pinned by their container space; invisible,
  unreferenced, idle actors are collected;
* spaces need no inverse reachability — unreachable spaces simply go;
* collection scales to tens of thousands of actors (cost table).
"""

import time

from repro.core.actorspace import SpaceRecord
from repro.core.addresses import ActorAddress, SpaceAddress
from repro.core.gc import GarbageCollector
from repro.core.visibility import Directory
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.util import TextTable

from .common import emit


def _churn_world(n_actors, visible_fraction, acquaintance_degree, seed=0):
    import numpy as np

    rng = np.random.default_rng(seed)
    d = Directory()
    root = SpaceAddress(0, 0)
    d.add_space(SpaceRecord(root))
    actors = [ActorAddress(0, i + 1) for i in range(n_actors)]
    n_visible = int(n_actors * visible_fraction)
    for a in actors[:n_visible]:
        d.make_visible(a, f"a/{a.serial}", root)
    acquaintances = {}
    for a in actors:
        friends = rng.choice(n_actors, size=acquaintance_degree, replace=False)
        acquaintances[a] = {actors[int(f)] for f in friends}
    return d, root, actors, acquaintances


def _collect(n_actors, visible_fraction=0.2, degree=2, seed=0):
    d, root, actors, acq = _churn_world(n_actors, visible_fraction, degree,
                                        seed)
    gc = GarbageCollector(d, acq)
    t0 = time.perf_counter()
    report = gc.collect(roots=[root], all_actors=actors)
    elapsed = time.perf_counter() - t0
    return report, elapsed


def test_bench_e8_gc(benchmark):
    scale = TextTable(
        ["actors", "visible", "collected", "kept (reachable)", "ms"],
        title="E8a: collection over synthetic populations (20% visible)",
    )
    for n in (1_000, 5_000, 20_000, 50_000):
        report, elapsed = _collect(n)
        scale.add_row([
            n, int(n * 0.2), len(report.collected_actors),
            len(report.live_actors), elapsed * 1e3,
        ])

    # Live-system churn: spawn short-lived children, verify periodic GC
    # reclaims them while the visible service population survives.
    system = ActorSpaceSystem(topology=Topology.lan(2), seed=1)
    servers = []
    for i in range(10):
        addr = system.create_actor(lambda ctx, m: None)
        system.make_visible(addr, f"svc/s{i}")
        servers.append(addr)
    system.run()

    rounds = TextTable(
        ["round", "live actors before", "collected", "live after",
         "servers intact"],
        title="E8b: periodic GC on a running system (create-and-forget churn)",
    )

    def live_count():
        return sum(
            sum(1 for r in c.actors.values() if not r.terminated)
            for c in system.coordinators
        )

    for round_no in range(4):
        # A burst of short-lived actors the driver immediately forgets.
        transients = [
            system.create_actor(lambda ctx, m: None, node=i % 2)
            for i in range(10)
        ]
        system.run()
        before = live_count()
        for t in transients:
            system.release(t)
        report = system.collect_garbage()
        after = live_count()
        d0 = system.directory_of(0)
        intact = all(s in d0.space(system.root_space) for s in servers)
        rounds.add_row([round_no, before, report.collected_count, after,
                        intact])
    emit("e8_gc", scale, rounds)
    benchmark(lambda: _collect(5_000))
