"""E10 — sections 5.1 and 7.1: pattern-matching throughput at scale.

The prototype's patterns are regular expressions over atoms resolved
against per-space registries.  The experiment sweeps registry size and
pattern class (literal / one-level wildcard / glob / deep ``**`` with
nested spaces) and reports resolutions per second plus entries examined.
E10d adds the epoch-invalidated resolution cache: repeated resolutions
under stable visibility (a hot group re-resolved per send) cached vs
uncached, and E10e the churn scenarios distinguishing on-path
invalidation from unrelated-mutation revalidation.
"""

import time

from repro.core.actorspace import SpaceRecord
from repro.core.addresses import ActorAddress, SpaceAddress
from repro.core.matching import MatchStats, ResolutionCache, resolve_actors
from repro.core.visibility import Directory
from repro.util import TextTable

from .common import emit


def _registry(n_entries, nested=False):
    d = Directory()
    root = SpaceAddress(0, 0)
    d.add_space(SpaceRecord(root))
    if not nested:
        for i in range(n_entries):
            d.make_visible(
                ActorAddress(0, i + 1),
                f"services/kind{i % 50}/inst{i}",
                root,
            )
        return d, root
    # Nested: 10 sub-spaces, entries spread under them.
    subs = []
    for s in range(10):
        sub = SpaceAddress(1, s)
        d.add_space(SpaceRecord(sub))
        d.make_visible(sub, f"dept{s}", root)
        subs.append(sub)
    for i in range(n_entries):
        d.make_visible(
            ActorAddress(0, i + 1),
            f"kind{i % 50}/inst{i}",
            subs[i % 10],
        )
    return d, root


def _measure(d, root, pattern, repeats=30):
    stats = MatchStats()
    t0 = time.perf_counter()
    for _ in range(repeats):
        result = resolve_actors(d, pattern, root, stats)
    elapsed = (time.perf_counter() - t0) / repeats
    return len(result), elapsed * 1e3, stats.entries_examined // repeats


def _measure_cached(d, root, pattern, repeats=30):
    cache = ResolutionCache()
    resolve_actors(d, pattern, root, cache=cache)  # fill (one miss)
    t0 = time.perf_counter()
    for _ in range(repeats):
        result = resolve_actors(d, pattern, root, cache=cache)
    elapsed = (time.perf_counter() - t0) / repeats
    return len(result), elapsed * 1e3, cache


PATTERNS = [
    ("literal", "services/kind7/inst7"),
    ("one-star", "services/kind7/*"),
    ("glob", "services/kind?/inst1*"),
    ("deep", "**/inst42"),
]


def test_bench_e10_matching(benchmark):
    flat = TextTable(
        ["registry", "pattern class", "matches", "ms/resolve",
         "entries examined"],
        title="E10a: flat registry resolution",
    )
    for n in (100, 1_000, 10_000, 100_000):
        d, root = _registry(n)
        for label, pattern in PATTERNS:
            matches, ms, examined = _measure(
                d, root, pattern, repeats=5 if n >= 100_000 else 30)
            flat.add_row([n, label, matches, ms, examined])

    index = TextTable(
        ["registry", "pattern", "ms (indexed fast path)", "ms (full scan)",
         "speedup"],
        title="E10c: literal-prefix index ablation",
    )
    for n in (10_000, 100_000):
        d, root = _registry(n)
        # Indexed: first atom is the literal "services" -> narrow bucket?
        # All entries share "services" here, so use a per-kind registry
        # where the first atom discriminates.
        d2 = Directory()
        root2 = SpaceAddress(0, 0)
        d2.add_space(SpaceRecord(root2))
        for i in range(n):
            d2.make_visible(ActorAddress(0, i + 1),
                            f"kind{i % 50}/inst{i}", root2)
        _m, indexed_ms, _e = _measure(d2, root2, "kind7/inst7",
                                      repeats=5 if n >= 100_000 else 30)
        # Full scan: leading one-atom wildcard defeats the index while
        # matching the same single entry.
        _m, scan_ms, _e = _measure(d2, root2, "kind?/inst7",
                                   repeats=5 if n >= 100_000 else 30)
        index.add_row([n, "kind7/inst7 vs kind?/inst7", indexed_ms, scan_ms,
                       scan_ms / indexed_ms])

    nested = TextTable(
        ["registry", "pattern class", "matches", "ms/resolve"],
        title="E10b: nested registries (10 sub-spaces, structured attributes)",
    )
    for n in (1_000, 10_000):
        d, root = _registry(n, nested=True)
        for label, pattern in [
            ("structured literal", "dept3/kind13/inst13"),
            ("structured star", "dept3/kind13/*"),
            ("cross-space deep", "**/inst77"),
        ]:
            matches, ms, _ex = _measure(d, root, pattern)
            nested.add_row([n, label, matches, ms])

    cached_tbl = TextTable(
        ["registry", "pattern class", "ms uncached", "ms cached", "speedup",
         "hits", "misses"],
        title="E10d: resolution cache, repeated resolution, stable visibility",
    )
    for n in (1_000, 10_000, 100_000):
        d, root = _registry(n)
        repeats = 5 if n >= 100_000 else 30
        for label, pattern in PATTERNS:
            _m, uncached_ms, _e = _measure(d, root, pattern, repeats)
            _m, cached_ms, cache = _measure_cached(d, root, pattern, repeats)
            speedup = uncached_ms / cached_ms if cached_ms else float("inf")
            cached_tbl.add_row([n, label, uncached_ms, cached_ms, speedup,
                                cache.hits, cache.misses])
            if n >= 10_000:
                # Acceptance floor; in practice the hit path is a dict
                # probe and the speedup is orders of magnitude.
                assert speedup >= 2.0, (
                    f"cache speedup {speedup:.2f}x < 2x for {label} at n={n}"
                )

    churn = TextTable(
        ["registry", "churn kind", "ms/resolve", "hits", "misses",
         "invalidations"],
        title="E10e: one visibility op between resolutions "
              "(on-path invalidates; unrelated revalidates by epoch)",
    )
    for n in (10_000,):
        for kind in ("on-path", "unrelated"):
            d, root = _registry(n)
            other = SpaceAddress(3, 0)
            d.add_space(SpaceRecord(other))
            mutated = root if kind == "on-path" else other
            cache = ResolutionCache()
            resolve_actors(d, "services/kind7/*", root, cache=cache)
            repeats, toggle = 30, ActorAddress(2, 0)
            t0 = time.perf_counter()
            for i in range(repeats):
                if i % 2:
                    d.make_invisible(toggle, mutated)
                else:
                    d.make_visible(toggle, "churn/x", mutated)
                resolve_actors(d, "services/kind7/*", root, cache=cache)
            elapsed = (time.perf_counter() - t0) / repeats
            churn.add_row([n, kind, elapsed * 1e3, cache.hits, cache.misses,
                           cache.invalidations])
    emit("e10_matching", flat, index, nested, cached_tbl, churn)

    d, root = _registry(10_000)
    cache = ResolutionCache()
    resolve_actors(d, "services/kind7/*", root, cache=cache)
    benchmark(lambda: resolve_actors(d, "services/kind7/*", root, cache=cache))
