"""E17 — pattern addressing vs topic pub/sub (the modern approximation).

Not a claim from the 1993 paper, but the comparison a present-day reader
asks for: mainstream pub/sub topics are *exact strings*, so multi-facet
group addressing ("all sensors in building 2, on any floor") must choose
between topic explosion and client-side filtering.  One ActorSpace
pattern does it natively.  The table quantifies the three designs on the
same device fleet and the same query slice.
"""

from repro.baselines.pubsub import FilteringSubscriber, TopicBrokerBehavior
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.util import TextTable

from .common import emit

SEED = 19
TYPES = ["sensor", "camera", "lock", "light"]


def _fleet(buildings, floors):
    """Device descriptors: (building, floor, type)."""
    return [
        (b, f, t)
        for b in range(buildings)
        for f in range(floors)
        for t in TYPES
    ]


def _actorspace(buildings, floors):
    system = ActorSpaceSystem(topology=Topology.lan(4), seed=SEED)
    hits, misses = [], []
    for b, f, t in _fleet(buildings, floors):
        wanted = (b == 1 and t == "sensor")
        bucket = hits if wanted else misses
        addr = system.create_actor(
            lambda ctx, m, bk=bucket: bk.append(m.payload),
            node=(b + f) % 4)
        system.make_visible(addr, f"b{b}/f{f}/{t}")
    system.run()
    system.broadcast("b1/*/sensor", ("cmd", "recalibrate"))
    system.run()
    return {
        "client_msgs": 1,
        "topics": 0,
        "exact": len(hits),
        "wasted": len(misses),
    }


def _pubsub_fine(buildings, floors):
    """One topic per (building, floor, type) combination."""
    system = ActorSpaceSystem(topology=Topology.lan(4), seed=SEED)
    broker_behavior = TopicBrokerBehavior()
    broker = system.create_actor(broker_behavior, node=0)
    receivers = []
    for b, f, t in _fleet(buildings, floors):
        sub = FilteringSubscriber(lambda payload: True)
        addr = system.create_actor(sub, node=(b + f) % 4)
        system.send_to(broker, ("subscribe", f"b{b}.f{f}.{t}"), reply_to=addr)
        receivers.append(((b, f, t), sub))
    system.run()
    # The publisher must enumerate the slice itself: one publish per floor.
    for f in range(floors):
        system.send_to(broker, ("publish", f"b1.f{f}.sensor",
                                ("cmd", "recalibrate")))
    system.run()
    exact = sum(len(s.accepted) for (b, _f, t), s in receivers
                if b == 1 and t == "sensor")
    wasted = sum(len(s.accepted) for (b, _f, t), s in receivers
                 if not (b == 1 and t == "sensor"))
    return {
        "client_msgs": floors,
        "topics": broker_behavior.topic_count,
        "exact": exact,
        "wasted": wasted,
    }


def _pubsub_coarse(buildings, floors):
    """One topic per building; subscribers filter by type client-side."""
    system = ActorSpaceSystem(topology=Topology.lan(4), seed=SEED)
    broker_behavior = TopicBrokerBehavior()
    broker = system.create_actor(broker_behavior, node=0)
    subs = []
    for b, f, t in _fleet(buildings, floors):
        sub = FilteringSubscriber(
            lambda payload, t=t: payload[1] == t)  # want my own type
        addr = system.create_actor(sub, node=(b + f) % 4)
        system.send_to(broker, ("subscribe", f"b{b}"), reply_to=addr)
        subs.append(((b, f, t), sub))
    system.run()
    system.send_to(broker, ("publish", "b1", ("cmd", "sensor")))
    system.run()
    exact = sum(len(s.accepted) for (b, _f, t), s in subs
                if b == 1 and t == "sensor")
    wasted = sum(s.wasted for (_b, _f, _t), s in subs)
    return {
        "client_msgs": 1,
        "topics": broker_behavior.topic_count,
        "exact": exact,
        "wasted": wasted,
    }


def test_bench_e17_pubsub(benchmark):
    table = TextTable(
        ["fleet (BxFxT)", "addressing", "topics", "client msgs",
         "exact deliveries", "wasted deliveries"],
        title='E17: deliver "all sensors in building 1" — patterns vs topics',
    )
    for buildings, floors in ((4, 3), (6, 5)):
        fleet = f"{buildings}x{floors}x{len(TYPES)}"
        for label, run in (
            ("ActorSpace pattern", _actorspace),
            ("pub/sub fine topics", _pubsub_fine),
            ("pub/sub coarse + filter", _pubsub_coarse),
        ):
            r = run(buildings, floors)
            table.add_row([fleet, label, r["topics"], r["client_msgs"],
                           r["exact"], r["wasted"]])
    emit("e17_pubsub", table)
    benchmark(lambda: _actorspace(4, 3))
