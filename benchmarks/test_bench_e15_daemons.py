"""E15 — section 8 (future work): monitoring daemons steering coordination.

"More powerful managers could use daemons to monitor actors in an
actorSpace and update attributes in order to maintain specified
coordination constraints."

Scenario: a service has fast and slow replicas (10x service-time gap).
Clients address ``work/**`` blindly.  A daemon maintains a derived
``load/{low,high}`` attribute per replica from observed queue depth;
*aware* clients address ``load/low`` instead.  Regenerated claim: the
constraint ("prefer unloaded replicas") is maintained purely through
attribute updates — no client or replica code changes — and improves
both makespan and tail latency over blind random choice.
"""

from repro.core.actor import Behavior
from repro.core.daemons import (
    install_daemon,
    install_event_daemon,
    threshold_rule,
)
from repro.core.messages import Destination, Message
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.util import TextTable, summarize

from .common import emit

SEED = 13
REQUESTS = 150


class UnevenReplica(Behavior):
    def __init__(self, service_time):
        self.service_time = service_time
        self.busy_until = 0.0
        self.handled = 0

    def receive(self, ctx: object, message: Message) -> None:
        kind, *rest = message.payload
        if kind == "request":
            self.handled += 1
            start = max(ctx.now, self.busy_until)
            self.busy_until = start + self.service_time
            ctx.schedule(self.busy_until - ctx.now,
                         ("respond", rest[0], message.reply_to))
        elif kind == "respond":
            rid, reply_to = rest
            if reply_to is not None:
                ctx.send_to(reply_to, ("response", rid))


def _run(mode):
    """One E15 configuration: ``blind``, ``poll``, or ``event`` steering."""
    system = ActorSpaceSystem(topology=Topology.lan(5), seed=SEED,
                              trace=(mode == "event"))
    key = system.new_capability()
    space = system.create_space(capability=key)
    system.run()
    replicas = []
    for i in range(4):
        service_time = 0.02 if i < 2 else 0.2  # two fast, two slow
        behavior = UnevenReplica(service_time)
        addr = system.create_actor(behavior, node=1 + i)
        system.make_visible(addr, f"work/r{i}", space, capability=key)
        replicas.append(behavior)
    system.run()
    event_daemon = None
    if mode == "poll":
        install_daemon(system, space,
                       [threshold_rule("load", "queue", low_max=1)],
                       capability=key, period=0.1, max_sweeps=600)
        system.run(until=system.clock.now + 0.3)
    elif mode == "event":
        event_daemon = install_event_daemon(
            system, space, [threshold_rule("load", "queue", low_max=1)],
            capability=key)
        system.run(until=system.clock.now + 0.3)

    responses = {}
    send_times = {}
    last_response = [0.0]

    def client(ctx, message):
        kind, *rest = message.payload
        if kind == "response":
            rid = rest[0]
            responses[rid] = ctx.now - send_times[rid]
            last_response[0] = ctx.now

    client_addr = system.create_actor(client, node=0)
    start = system.clock.now
    pattern = "work/**" if mode == "blind" else "load/low"
    for rid in range(REQUESTS):
        send_times[rid] = start + rid * 0.01

        def fire(rid=rid):
            system.send(Destination(pattern, space), ("request", rid),
                        reply_to=client_addr)

        system.events.schedule(send_times[rid], fire)
    system.run()
    if event_daemon is not None:
        event_daemon.close()
    lat = summarize(responses.values())
    return {
        "answered": len(responses),
        "makespan": last_response[0] - start,
        "mean": lat["mean"],
        "p95": lat["p95"],
        "per_replica": [r.handled for r in replicas],
        "daemon_updates": system.metrics.counter("daemon_updates_total").value,
    }


def test_bench_e15_daemons(benchmark):
    table = TextTable(
        ["clients address", "answered", "makespan", "mean latency",
         "p95 latency", "per-replica (fast,fast,slow,slow)", "daemon updates"],
        title="E15: daemon-maintained load attributes vs blind choice — "
              "2 fast + 2 slow replicas, 150 requests",
    )
    for mode, label in (("blind", "work/** (blind random)"),
                        ("poll", "load/low (polling daemon)"),
                        ("event", "load/low (event-driven daemon)")):
        r = _run(mode)
        table.add_row([
            label, r["answered"], r["makespan"], r["mean"], r["p95"],
            str(r["per_replica"]), r["daemon_updates"],
        ])
    emit("e15_daemons", table)
    benchmark(lambda: _run("poll"))
