"""E2 — section 5.3: send() auto-load-balances replicated servers.

Claims regenerated:
* per-replica request counts are near-uniform (chi-square) although the
  clients never know the replica count;
* makespan and latency fall as replicas are added;
* arbitration ablation: random vs round-robin vs least-loaded (the
  customized managers of section 8).
"""

from repro.apps.replicated import run_replicated_service
from repro.core.manager import Arbitration
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.util import TextTable, chi_square_uniform, summarize

from .common import emit

REQUESTS = 400
SEED = 5


def _run(replicas, arbitration=Arbitration.RANDOM):
    system = ActorSpaceSystem(topology=Topology.lan(9), seed=SEED)
    return run_replicated_service(
        system, replicas=replicas, requests=REQUESTS,
        arbitration=arbitration,
    )


def test_bench_e2_load_balance(benchmark):
    scale = TextTable(
        ["replicas", "makespan", "speedup", "mean latency", "p95 latency",
         "chi2 uniform"],
        title="E2a: scaling a replicated service — 400 requests, 1 client",
    )
    base = None
    for replicas in (1, 2, 4, 8, 16):
        result = _run(replicas)
        if base is None:
            base = result.makespan
        stats = summarize(result.latencies)
        scale.add_row([
            replicas, result.makespan, base / result.makespan,
            stats["mean"], stats["p95"],
            chi_square_uniform(result.per_replica),
        ])

    ablation = TextTable(
        ["arbitration", "per-replica counts", "chi2", "makespan"],
        title="E2b: arbitration ablation — 8 replicas",
    )
    for arbitration in (Arbitration.RANDOM, Arbitration.ROUND_ROBIN,
                        Arbitration.LEAST_LOADED):
        result = _run(8, arbitration)
        ablation.add_row([
            arbitration.value, str(result.per_replica),
            chi_square_uniform(result.per_replica), result.makespan,
        ])
    emit("e2_load_balance", scale, ablation)
    benchmark(lambda: _run(8))
