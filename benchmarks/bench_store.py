"""Durable-store microbench: append/commit throughput, recovery, replay.

Four datapoints the durability work is judged by:

* **append+commit throughput** per fsync policy (``commit`` pays one
  fsync per group commit, ``batch`` amortises over a time window,
  ``never`` leaves durability to the OS) — ops/s and fsync counts, so
  the cost of the safety knob is a number, not a vibe;
* **recovery speed** — salvaging the log back off disk (ops/s), the
  startup cost a crashed node pays;
* **replay speed** — driving the recovered log through the offline
  debugger's replayer to a final directory;
* **snapshot install** — write + rotate + truncate, the periodic cost a
  serving node pays.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_store.py [--quick] [--out FILE]

Emits ``BENCH_store.json`` next to this file and a table on stdout.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.addresses import ActorAddress, SpaceAddress  # noqa: E402
from repro.runtime.bus import OpKind, VisibilityOp  # noqa: E402
from repro.store import NodeStore  # noqa: E402
from repro.store.node_store import load_data_dir  # noqa: E402
from repro.store.replay import replay_recovered  # noqa: E402

HERE = pathlib.Path(__file__).resolve().parent
ROOT = SpaceAddress(0, 0)
GROUP = 8  # appends per commit (group-commit batch size)


def synth_op(i: int) -> VisibilityOp:
    return VisibilityOp(
        OpKind.MAKE_VISIBLE,
        {"target": ActorAddress(0, i + 1), "attributes": f"bench/worker{i}",
         "space": ROOT, "capability": None},
        origin_node=0, origin_seq=i,
    )


def bench_append(n_ops: int, fsync: str) -> dict:
    with tempfile.TemporaryDirectory(prefix=f"bench-store-{fsync}-") as tmp:
        store = NodeStore(tmp, fsync=fsync)
        ops = [synth_op(i) for i in range(n_ops)]
        t0 = time.perf_counter()
        for i, op in enumerate(ops):
            store.append_op(i, op)
            if (i + 1) % GROUP == 0:
                store.commit()
        store.commit()
        elapsed = time.perf_counter() - t0
        metrics = store.metrics_snapshot()
        store.close()
        return {
            "fsync": fsync,
            "ops": n_ops,
            "seconds": round(elapsed, 4),
            "ops_per_s": round(n_ops / elapsed, 1),
            "fsyncs": metrics["fsyncs"],
            "bytes_written": metrics["bytes_written"],
        }


def bench_recover_and_replay(n_ops: int) -> tuple[dict, dict, dict]:
    with tempfile.TemporaryDirectory(prefix="bench-store-rec-") as tmp:
        store = NodeStore(tmp, fsync="never")
        for i in range(n_ops):
            store.append_op(i, synth_op(i))
            if (i + 1) % GROUP == 0:
                store.commit()
        store.commit()

        t0 = time.perf_counter()
        recovered = load_data_dir(tmp)
        recover_s = time.perf_counter() - t0
        assert len(recovered.ops) == n_ops and recovered.report.clean

        t0 = time.perf_counter()
        replayer, summary = replay_recovered(recovered)
        replay_s = time.perf_counter() - t0
        assert summary["ops_applied"] == n_ops

        from repro.store.replay import canonical_state

        state = {"version": 1, "applied_seq": n_ops, "origin_seq": n_ops,
                 "addr_serial": n_ops + 1, "spaces": [], "entries": [],
                 "caps": [], "dlq": [], "dlq_counters": {},
                 "directory": canonical_state(replayer.directory)}
        t0 = time.perf_counter()
        store.write_snapshot(n_ops, state)
        snapshot_s = time.perf_counter() - t0
        store.close()
        return (
            {"ops": n_ops, "seconds": round(recover_s, 4),
             "ops_per_s": round(n_ops / recover_s, 1)},
            {"ops": n_ops, "seconds": round(replay_s, 4),
             "ops_per_s": round(n_ops / replay_s, 1)},
            {"entries": n_ops, "seconds": round(snapshot_s, 4)},
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small op count (CI smoke)")
    parser.add_argument("--out", default=str(HERE / "BENCH_store.json"))
    args = parser.parse_args(argv)
    n_ops = 2_000 if args.quick else 20_000

    policies = [bench_append(n_ops, fsync) for fsync in
                ("commit", "batch", "never")]
    recovery, replay, snapshot = bench_recover_and_replay(n_ops)

    report = {
        "n_ops": n_ops,
        "group_commit": GROUP,
        "append": policies,
        "recovery": recovery,
        "replay": replay,
        "snapshot_install": snapshot,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(report, indent=1) + "\n")

    print(f"[store] {n_ops} ops, group commit x{GROUP}")
    for row in policies:
        print(f"  append fsync={row['fsync']:<7} {row['ops_per_s']:>10.0f}"
              f" ops/s  ({row['fsyncs']} fsyncs)")
    print(f"  recover              {recovery['ops_per_s']:>10.0f} ops/s")
    print(f"  replay               {replay['ops_per_s']:>10.0f} ops/s")
    print(f"  snapshot install     {snapshot['seconds'] * 1000:>9.1f} ms")
    print(f"  -> {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
