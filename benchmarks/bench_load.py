"""Closed-loop load benchmark: offered-load sweep, sim vs TCP loopback.

``bench_net.py`` measures the *control plane* as much as the wire: each
send there is a blocking launcher round trip, so its TCP throughput
number is really the control RTT in disguise.  This benchmark drives
the data plane the way an application would — a :class:`LoadPumpBehavior`
actor inside the runtime keeps ``W`` requests outstanding against a
``LoadSinkBehavior`` on another node and fires a replacement per ack —
and sweeps the window ``W`` to trace the throughput/latency curve:

* **throughput** — completed round trips per second at each window;
* **p50/p99** — per-message round-trip latency percentiles, measured
  inside the pump with ``time.monotonic`` (no control-plane overhead).

The launcher only polls a ``done`` flag, so the control plane is off the
measured path entirely.  Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_load.py [--quick]

Emits ``BENCH_load.json`` next to this file and a table on stdout.
``--min-tcp-send N`` exits non-zero if the best TCP window falls below
``N`` msg/s — CI uses it to hold the line against wire regressions.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.net.cluster import LocalCluster, loopback_available  # noqa: E402
from repro.net.registry import LoadPumpBehavior, LoadSinkBehavior  # noqa: E402
from repro.runtime.network import Topology  # noqa: E402
from repro.runtime.system import ActorSpaceSystem  # noqa: E402

HERE = pathlib.Path(__file__).resolve().parent
NODES = 3
WINDOWS = [1, 8, 64, 256]
STAT_ATTRS = ["done", "sent", "received", "throughput",
              "p50_ms", "p99_ms", "elapsed_s"]


def _row(transport: str, window: int, stats: dict) -> dict:
    return {
        "transport": transport,
        "window": window,
        "throughput_msgs_per_s": round(stats["throughput"], 1),
        "p50_ms": round(stats["p50_ms"], 4),
        "p99_ms": round(stats["p99_ms"], 4),
        "elapsed_s": round(stats["elapsed_s"], 3),
        "completed": stats["received"],
    }


# -- in-process (simulator) side -------------------------------------------------

def bench_sim(total: int, windows: list[int]) -> list[dict]:
    """The same closed loop through the single-process runtime."""
    rows = []
    for window in windows:
        system = ActorSpaceSystem(topology=Topology.lan(NODES), seed=0)
        sink = system.create_actor(LoadSinkBehavior(), node=1)
        pump = LoadPumpBehavior(sink, total=total, window=window)
        pump_addr = system.create_actor(pump, node=0)
        system.send_to(pump_addr, ("go",))
        system.run()
        assert pump.done and pump.received == total
        rows.append(_row("sim", window, {a: getattr(pump, a)
                                         for a in STAT_ATTRS}))
    return rows


# -- TCP loopback side -----------------------------------------------------------

def bench_tcp(total: int, windows: list[int]) -> tuple[list[dict], dict]:
    """The same closed loop across real node processes.

    Returns the sweep rows plus node 0's wire-path stage-latency
    histograms (enqueue→flush / decode / deliver) accumulated over the
    whole sweep — the breakdown that says *where* a throughput
    regression lives, not just that one happened.
    """
    cluster = LocalCluster(NODES, seed=0, trace=False)
    cluster.start()
    try:
        sink = cluster.call(
            1, "create_actor", behavior="load_sink", params={})["address"]
        rows = []
        for window in windows:
            pump = cluster.call(
                0, "create_actor", behavior="load_pump",
                params={"target": sink, "total": total, "window": window},
            )["address"]
            cluster.call(0, "send_to", target=pump, payload=("go",))
            cluster.wait_until(
                lambda: cluster.call(0, "actor_state", address=pump,
                                     attrs=["done"])["done"],
                timeout=180, interval=0.05,
                what=f"load window={window} drained")
            stats = cluster.call(0, "actor_state", address=pump,
                                 attrs=STAT_ATTRS)
            rows.append(_row("tcp-loopback", window, stats))
        snapshot = cluster.call(0, "snapshot", events=False)["hub"]
        rows[-1]["hub_writes_node0"] = snapshot["writes"]
        rows[-1]["hub_batches_out_node0"] = snapshot["batches_out"]
        rows[-1]["hub_frames_out_node0"] = snapshot["frames_out"]
        stage_latency = snapshot.get("stage_latency", {})
        return rows, stage_latency
    finally:
        cluster.shutdown()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--total", type=int, default=3000,
                        help="round trips per sweep point (default 3000)")
    parser.add_argument("--windows", type=int, nargs="+", default=WINDOWS,
                        help=f"outstanding-request windows (default {WINDOWS})")
    parser.add_argument("--quick", action="store_true",
                        help="small counts for smoke runs (600 round trips)")
    parser.add_argument("--min-tcp-send", type=float, default=None,
                        help="fail if peak TCP throughput is below this")
    parser.add_argument("--out", default=str(HERE / "BENCH_load.json"),
                        help="output JSON path")
    args = parser.parse_args(argv)
    total = 600 if args.quick else args.total

    rows = bench_sim(total, args.windows)
    stage_latency: dict = {}
    if loopback_available():
        tcp_rows, stage_latency = bench_tcp(total, args.windows)
        rows.extend(tcp_rows)
    else:
        print("loopback TCP unavailable; emitting simulator rows only")

    header = (f"{'transport':<14} {'window':>7} {'msg/s':>10} "
              f"{'p50 ms':>9} {'p99 ms':>9}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['transport']:<14} {row['window']:>7} "
              f"{row['throughput_msgs_per_s']:>10} {row['p50_ms']:>9} "
              f"{row['p99_ms']:>9}")

    if stage_latency:
        print("\nwire path stage latency, node 0 (full sweep):")
        print(f"{'stage':<12} {'count':>8} {'mean ms':>9} {'p50 ms':>9} "
              f"{'p95 ms':>9} {'max ms':>9}")
        for stage in ("send_queue", "decode", "deliver"):
            s = stage_latency.get(stage)
            if not s:
                continue
            print(f"{stage:<12} {s['count']:>8} {s['mean'] * 1e3:>9.3f} "
                  f"{s['p50'] * 1e3:>9.3f} {s['p95'] * 1e3:>9.3f} "
                  f"{s['max'] * 1e3:>9.3f}")

    tcp_rows = [r for r in rows if r["transport"] == "tcp-loopback"]
    peak_tcp = max((r["throughput_msgs_per_s"] for r in tcp_rows), default=None)
    report = {
        "nodes": NODES,
        "total_per_point": total,
        "windows": args.windows,
        "peak_tcp_send_msgs_per_s": peak_tcp,
        "stage_latency_node0": stage_latency,
        "results": rows,
    }
    pathlib.Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    if peak_tcp is not None:
        print(f"peak TCP closed-loop throughput: {peak_tcp} msg/s")
    if args.min_tcp_send is not None:
        if peak_tcp is None or peak_tcp < args.min_tcp_send:
            print(f"FAIL: peak TCP throughput {peak_tcp} below "
                  f"required {args.min_tcp_send} msg/s")
            return 1
        print(f"OK: peak TCP throughput meets the {args.min_tcp_send} "
              f"msg/s floor")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
