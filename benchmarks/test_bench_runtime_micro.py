"""Runtime microbenchmarks: host-time cost of the core primitives.

Not a paper experiment — engineering telemetry for the simulator itself,
so regressions in the hot paths (routing, resolution, bus application)
show up in CI.  Complements E10 (which measures *algorithmic* scaling).
"""

import pytest

from repro.core.manager import SpaceManager
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


def _system(nodes=4, seed=0, **kw):
    return ActorSpaceSystem(topology=Topology.lan(nodes), seed=seed, **kw)


def test_bench_direct_send_throughput(benchmark):
    """1000 point-to-point messages across a 4-node LAN."""

    def run():
        system = _system(keep_samples=False)
        sink = system.create_actor(lambda ctx, m: None, node=3)
        for i in range(1000):
            system.send_to(sink, i)
        system.run()
        return system.tracer.invocations

    assert benchmark(run) == 1000


def test_bench_pattern_send_throughput(benchmark):
    """1000 pattern sends resolved against a 100-actor registry."""

    def run():
        system = _system(keep_samples=False)
        for i in range(100):
            addr = system.create_actor(lambda ctx, m: None, node=i % 4)
            system.make_visible(addr, f"svc/kind{i % 10}/i{i}")
        system.run()
        for i in range(1000):
            system.send(f"svc/kind{i % 10}/*", i)
        system.run()
        return sum(system.tracer.delivered.values())

    assert benchmark(run) == 1000


def test_bench_broadcast_fanout(benchmark):
    """100 broadcasts, each fanning out to 100 receivers."""

    def run():
        system = _system(keep_samples=False)
        for i in range(100):
            addr = system.create_actor(lambda ctx, m: None, node=i % 4)
            system.make_visible(addr, f"grp/m{i}")
        system.run()
        for i in range(100):
            system.broadcast("grp/*", i)
        system.run()
        return sum(system.tracer.delivered.values())

    assert benchmark(run) == 10_000


def test_bench_visibility_op_throughput(benchmark):
    """500 visibility changes sequenced, fanned out, and applied on 4 replicas."""

    def run():
        system = _system(keep_samples=False)
        addrs = [
            system.create_actor(lambda ctx, m: None, node=i % 4)
            for i in range(50)
        ]
        for round_no in range(10):
            for addr in addrs:
                system.make_visible(addr, f"r{round_no}/a{addr.serial}",
                                    node=addr.node)
        system.run()
        return system.bus.ops_sequenced

    assert benchmark(run) == 500


def test_bench_actor_creation(benchmark):
    """2000 actor creations with acquaintance scanning."""

    def run():
        system = _system()
        for i in range(2000):
            system.create_actor(lambda ctx, m: None, node=i % 4)
        return sum(len(c.actors) for c in system.coordinators)

    assert benchmark(run) == 2000
