"""Runtime microbenchmarks: host-time cost of the core primitives.

Not a paper experiment — engineering telemetry for the simulator itself,
so regressions in the hot paths (routing, resolution, bus application)
show up in CI.  Complements E10 (which measures *algorithmic* scaling).
"""

import pytest

from repro.core.manager import SpaceManager
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


def _system(nodes=4, seed=0, **kw):
    return ActorSpaceSystem(topology=Topology.lan(nodes), seed=seed, **kw)


def test_bench_direct_send_throughput(benchmark):
    """1000 point-to-point messages across a 4-node LAN."""

    def run():
        system = _system(keep_samples=False)
        sink = system.create_actor(lambda ctx, m: None, node=3)
        for i in range(1000):
            system.send_to(sink, i)
        system.run()
        return system.tracer.invocations

    assert benchmark(run) == 1000


def test_bench_pattern_send_throughput(benchmark):
    """1000 pattern sends resolved against a 100-actor registry."""

    def run():
        system = _system(keep_samples=False)
        for i in range(100):
            addr = system.create_actor(lambda ctx, m: None, node=i % 4)
            system.make_visible(addr, f"svc/kind{i % 10}/i{i}")
        system.run()
        for i in range(1000):
            system.send(f"svc/kind{i % 10}/*", i)
        system.run()
        return sum(system.tracer.delivered.values())

    assert benchmark(run) == 1000


def test_bench_broadcast_fanout(benchmark):
    """100 broadcasts, each fanning out to 100 receivers."""

    def run():
        system = _system(keep_samples=False)
        for i in range(100):
            addr = system.create_actor(lambda ctx, m: None, node=i % 4)
            system.make_visible(addr, f"grp/m{i}")
        system.run()
        for i in range(100):
            system.broadcast("grp/*", i)
        system.run()
        return sum(system.tracer.delivered.values())

    assert benchmark(run) == 10_000


def test_bench_visibility_op_throughput(benchmark):
    """500 visibility changes sequenced, fanned out, and applied on 4 replicas."""

    def run():
        system = _system(keep_samples=False)
        addrs = [
            system.create_actor(lambda ctx, m: None, node=i % 4)
            for i in range(50)
        ]
        for round_no in range(10):
            for addr in addrs:
                system.make_visible(addr, f"r{round_no}/a{addr.serial}",
                                    node=addr.node)
        system.run()
        return system.bus.ops_sequenced

    assert benchmark(run) == 500


def _e10_style_workload(trace: bool) -> tuple[float, int]:
    """The E10 pattern-matching load; returns (host seconds, events emitted)."""
    import time

    start = time.perf_counter()
    system = _system(keep_samples=False, trace=trace)
    for i in range(100):
        addr = system.create_actor(lambda ctx, m: None, node=i % 4)
        system.make_visible(addr, f"svc/kind{i % 10}/i{i}")
    system.run()
    for i in range(1000):
        system.send(f"svc/kind{i % 10}/*", i)
    system.run()
    assert sum(system.tracer.delivered.values()) == 1000
    return time.perf_counter() - start, system.event_log.emitted_count


def test_tracing_disabled_overhead_guard():
    """The flight-recorder guard: tracing off must cost (nearly) nothing.

    With ``trace=False`` every hook pays one attribute check and emits no
    events; the median run time of the E10-style workload must stay
    within 5% of... nothing to compare against at runtime, so the guard
    asserts the two properties that bound the overhead: (1) the disabled
    path emits zero events, and (2) it is no slower than the fully
    instrumented path plus 5% slack — if disabled ever approaches or
    exceeds enabled cost, the cheap path has silently grown work.
    """
    import statistics

    # Warm-up (imports, caches), then interleave to decorrelate drift.
    _e10_style_workload(trace=False)
    disabled, enabled = [], []
    for _ in range(3):
        t_off, events_off = _e10_style_workload(trace=False)
        t_on, events_on = _e10_style_workload(trace=True)
        assert events_off == 0, "disabled tracing must emit no events"
        assert events_on > 1000, "enabled tracing should record the run"
        disabled.append(t_off)
        enabled.append(t_on)
    t_disabled = statistics.median(disabled)
    t_enabled = statistics.median(enabled)
    assert t_disabled <= t_enabled * 1.05, (
        f"tracing-off path too slow: {t_disabled:.4f}s vs "
        f"{t_enabled:.4f}s instrumented (limit: +5%)"
    )


def test_bench_token_ring_burst_drain(benchmark):
    """500 visibility ops drained through the token ring's deque queues.

    Guards the list→deque change in ``TokenRingBus``: the holder drains
    its whole pending queue per token visit, so ``pop(0)`` made a burst
    quadratic in its size.
    """

    def run():
        system = _system(keep_samples=False, bus="token-ring")
        addrs = [
            system.create_actor(lambda ctx, m: None, node=i % 4)
            for i in range(50)
        ]
        for round_no in range(10):
            for addr in addrs:
                system.make_visible(addr, f"r{round_no}/a{addr.serial}",
                                    node=addr.node)
        system.run()
        return system.bus.ops_sequenced

    assert benchmark(run) == 500


def test_bench_actor_creation(benchmark):
    """2000 actor creations with acquaintance scanning."""

    def run():
        system = _system()
        for i in range(2000):
            system.create_actor(lambda ctx, m: None, node=i % 4)
        return sum(len(c.actors) for c in system.coordinators)

    assert benchmark(run) == 2000


def test_atoms_are_interned_identities():
    """The interning guard behind the shard map's memo dict.

    ``check_atom`` routes every atom through ``sys.intern``, so atoms
    parsed from equal text at different times are the *same* object —
    the property ``ShardMap.owner_of``'s memo, the first-atom index, and
    every attribute dict rely on to hit the pointer-equality fast path.
    """
    from repro.core.atoms import as_paths, check_atom

    a = check_atom("tenant-" + "x" * 30)
    b = check_atom("tenant-" + "x" * 30)
    assert a is b, "check_atom must return the interned atom"
    p = sorted(as_paths("svc/db/primary"), key=str)[0]
    q = sorted(as_paths("svc" + "/db/primary"), key=str)[0]
    assert all(x is y for x, y in zip(p.atoms, q.atoms)), (
        "atoms parsed from equal text must be pointer-identical"
    )


def test_bench_shard_owner_lookup(benchmark):
    """100k shard-owner lookups over a 64-atom working set.

    The routing hot path: every visibility op resolves its space's home
    shard.  The memoized map must answer at dict-hit speed — this guard
    exists so a regression to re-hashing (or to un-interned atoms
    falling off the pointer-equality fast path) shows up in CI.
    """
    from repro.core.atoms import check_atom
    from repro.shard.map import ShardMap

    shard_map = ShardMap(8, nodes=[0, 1, 2, 3])
    atoms = [check_atom(f"tenant{i}") for i in range(64)]

    def run():
        owner_of = shard_map.owner_of
        total = 0
        for _ in range(100_000 // len(atoms)):
            for atom in atoms:
                total += owner_of(atom)
        return total

    first = run()
    assert benchmark(run) == first
