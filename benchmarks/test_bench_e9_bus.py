"""E9 — Figure 3 / section 7.3: coordinator-bus coherence and cost.

Claims regenerated:
* concurrent visibility updates from many nodes leave every replica with
  an identical view (the global order on visibility changes);
* actor-level broadcasts remain unordered (checked in the integration
  suite; here we report the ops/messages cost);
* protocol ablation: centralized sequencer vs token ring — messages per
  op and time-to-coherence.
"""

from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.util import TextTable

from .common import emit

SEED = 12


def _concurrent_updates(bus, nodes, ops_per_node):
    system = ActorSpaceSystem(topology=Topology.lan(nodes), seed=SEED,
                              bus=bus)
    # Every node concurrently registers its own actors under shifting
    # attributes — worst case for replica divergence.
    for i in range(ops_per_node):
        for node in range(nodes):
            addr = system.create_actor(lambda ctx, m: None, node=node)
            system.make_visible(addr, f"w/n{node}/g{i}", node=node)
    t_done = system.run()
    coherent = system.replicas_coherent()
    applied = set(system.tracer.visibility_ops_applied.values())
    return {
        "coherent": coherent,
        "one_count_everywhere": len(applied) == 1,
        "time": t_done,
        "protocol_messages": system.bus.protocol_messages,
        "ops": system.bus.ops_sequenced,
    }


def test_bench_e9_bus(benchmark):
    table = TextTable(
        ["bus", "nodes", "ops", "coherent", "identical op counts",
         "proto msgs", "msgs/op", "time to quiescence"],
        title="E9: concurrent visibility updates through the coordinator bus",
    )
    for bus in ("sequencer", "token-ring"):
        for nodes, per_node in ((2, 10), (4, 10), (8, 5), (16, 3)):
            r = _concurrent_updates(bus, nodes, per_node)
            table.add_row([
                bus, nodes, r["ops"], r["coherent"],
                r["one_count_everywhere"], r["protocol_messages"],
                r["protocol_messages"] / max(r["ops"], 1), r["time"],
            ])
    emit("e9_bus", table)
    benchmark(lambda: _concurrent_updates("sequencer", 4, 10))
