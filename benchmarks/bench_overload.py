"""Overload drill: open-loop flood at 2-10x capacity, sim and TCP.

``bench_load.py`` is closed-loop — offered load tracks service rate by
construction, so it can never overload anything.  This drill does the
opposite on purpose: an :class:`OverloadPumpBehavior` offers a *fixed*
rate at a sink whose capacity is known (``processing_delay`` in the
simulator, a ``busy_ms`` busy-wait on TCP), at multiples of that
capacity, and then checks that the overload-protection stack holds the
line:

* **bounded memory** — the sink's invocation port never exceeds its
  mailbox capacity, link send buffers stay under ``max_pending_bytes``,
  and process RSS stays under an explicit ceiling;
* **bounded latency for admitted traffic** — in the simulator the
  worst-case wait of an admitted envelope is ``peak_depth x service``
  by construction (reported); on TCP a concurrent closed-loop probe
  against an *unflooded* actor on the overloaded node measures the real
  p50/p99 an admitted message sees while the flood runs;
* **zero silent drops** — at quiescence every offered envelope is
  accounted for: ``delivered + expired == offered``.  Shed mail parks
  in the dead-letter queue and either re-levels into the sink or
  expires visibly; nothing vanishes.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_overload.py [--quick]

Emits ``BENCH_overload.json`` next to this file and a table on stdout.
``--max-rss-mb`` / ``--max-admitted-p99-ms`` exit non-zero on violation
— CI uses them to keep overload protection from regressing.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import resource
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.net.cluster import LocalCluster, loopback_available  # noqa: E402
from repro.net.registry import (  # noqa: E402
    OverloadPumpBehavior,
    OverloadSinkBehavior,
)
from repro.runtime.network import Topology  # noqa: E402
from repro.runtime.system import ActorSpaceSystem  # noqa: E402

HERE = pathlib.Path(__file__).resolve().parent
NODES = 3
MULTIPLIERS = [2, 4, 10]
#: Sink service rate in the simulator: 1 / processing_delay.
SIM_SERVICE_RATE = 500.0
#: TCP sink busy-wait per message; service rate is at most 1000/busy_ms.
TCP_BUSY_MS = 2.0
MAILBOX_CAPACITY = 64
PUMP_TICK = 0.01


def _self_rss_mb() -> float:
    """This process's peak RSS in MiB (ru_maxrss is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _proc_peak_rss_mb(pid: int) -> float | None:
    """Peak RSS of another live process via /proc (Linux only)."""
    try:
        with open(f"/proc/{pid}/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        pass
    return None


# -- simulator side ---------------------------------------------------------------

def bench_sim(multipliers: list[int], seconds: float) -> list[dict]:
    """Flood a bounded mailbox at ``m x`` capacity in virtual time.

    Runs with drop-oldest shedding plus the circuit breaker, stepping
    the clock in slices to probe the sink's queue depth — the bounded-
    memory claim is checked *during* the flood, not just after it.
    """
    rows = []
    for multiplier in multipliers:
        offered_rate = multiplier * SIM_SERVICE_RATE
        total = int(offered_rate * seconds)
        system = ActorSpaceSystem(
            topology=Topology.lan(NODES), seed=0,
            processing_delay=1.0 / SIM_SERVICE_RATE,
            mailbox_capacity=MAILBOX_CAPACITY,
            mailbox_policy="drop-oldest",
            breaker_threshold=MAILBOX_CAPACITY,
            breaker_window=0.25,
            breaker_cooldown=0.1,
        )
        sink = OverloadSinkBehavior()
        sink_addr = system.create_actor(sink, node=1)
        pump = OverloadPumpBehavior(
            sink_addr, total=total,
            burst=max(1, int(offered_rate * PUMP_TICK)), tick=PUMP_TICK)
        pump_addr = system.create_actor(pump, node=0)
        system.send_to(pump_addr, ("go",))

        record = system.actor_record(sink_addr)
        peak_invocation = peak_pending = 0
        horizon = 0.0
        while not system.idle:
            horizon += 0.05
            if horizon > 600.0:
                raise RuntimeError("sim overload drill failed to quiesce")
            system.run(until=horizon)
            peak_invocation = max(peak_invocation,
                                  len(record.mailbox._invocation))
            peak_pending = max(peak_pending, record.mailbox.pending)

        delivered = sink.count
        expired = system.dead_letters.expired_total
        assert pump.done and pump.sent == total
        # Zero silent drops: every offered envelope is accounted for.
        assert delivered + expired == total, \
            f"accounting leak: {delivered} + {expired} != {total}"
        # Bounded memory: the invocation port respected its bound and
        # nothing is still parked.
        assert peak_invocation <= MAILBOX_CAPACITY
        assert system.dead_letters.pending() == 0
        rows.append({
            "transport": "sim",
            "multiplier": multiplier,
            "offered_msgs_per_s": offered_rate,
            "offered_total": total,
            "delivered": delivered,
            "shed_mailbox": record.mailbox.shed_count,
            "expired": expired,
            "admission": system.admission.metrics(),
            "peak_invocation_depth": peak_invocation,
            "peak_mailbox_pending": peak_pending,
            # An admitted envelope waits at most depth x service time.
            "admitted_wait_bound_ms": round(
                peak_invocation * 1000.0 / SIM_SERVICE_RATE, 3),
            "goodput_fraction": round(delivered / total, 4),
        })
    return rows


# -- TCP loopback side ------------------------------------------------------------

def bench_tcp(multipliers: list[int], seconds: float,
              probe_total: int) -> list[dict]:
    """The same flood across real node processes, plus a latency probe.

    The flood runs pump(node 0) -> busy-wait sink(node 1); a concurrent
    closed-loop probe runs node 2 -> a second, unflooded actor on node 1
    and reports the p50/p99 an *admitted* message experiences while the
    node is saturated.  The probe targets its own actor so shedding at
    the flooded sink can never strand it waiting for an ack.
    """
    service_rate = 1000.0 / TCP_BUSY_MS
    # The breaker matters for the drill's own runtime, not just realism:
    # without it every drop-oldest victim re-levels out of the DLQ until
    # it finally lands, so the post-flood drain costs total x busy_ms.
    # With it, the destination node refuses redeliveries while saturated
    # and refused envelopes (attempts preserved) expire in bounded time.
    cluster = LocalCluster(
        NODES, seed=0, trace=False,
        node_args=["--mailbox-capacity", str(MAILBOX_CAPACITY),
                   "--mailbox-policy", "drop-oldest",
                   "--breaker-threshold", str(MAILBOX_CAPACITY)])
    cluster.start()
    rows = []
    try:
        expired_before = 0
        for multiplier in multipliers:
            offered_rate = multiplier * service_rate
            total = int(offered_rate * seconds)
            sink = cluster.call(
                1, "create_actor", behavior="overload_sink",
                params={"busy_ms": TCP_BUSY_MS})["address"]
            probe_sink = cluster.call(
                1, "create_actor", behavior="load_sink", params={})["address"]
            pump = cluster.call(
                0, "create_actor", behavior="overload_pump",
                params={"target": sink, "total": total, "tick": PUMP_TICK,
                        "burst": max(1, int(offered_rate * PUMP_TICK))},
            )["address"]
            probe = cluster.call(
                2, "create_actor", behavior="load_pump",
                params={"target": probe_sink, "total": probe_total,
                        "window": 1})["address"]
            cluster.call(0, "send_to", target=pump, payload=("go",))
            cluster.call(2, "send_to", target=probe, payload=("go",))
            cluster.wait_until(
                lambda: cluster.call(0, "actor_state", address=pump,
                                     attrs=["done"])["done"],
                timeout=180, interval=0.1,
                what=f"overload pump x{multiplier} finished offering")
            cluster.wait_until(
                lambda: cluster.call(2, "actor_state", address=probe,
                                     attrs=["done"])["done"],
                timeout=180, interval=0.1,
                what=f"admitted-latency probe x{multiplier} drained")

            def accounted() -> bool:
                if any(cluster.call(n, "status")["dlq_pending"]
                       for n in range(NODES)):
                    return False
                done = cluster.call(1, "actor_state", address=sink,
                                    attrs=["count"])["count"]
                late = sum(cluster.call(n, "dlq")["expired"]
                           for n in range(NODES)) - expired_before
                return done + late >= total

            cluster.wait_until(accounted, timeout=240, interval=0.2,
                               what=f"overload x{multiplier} accounting closed")

            delivered = cluster.call(1, "actor_state", address=sink,
                                     attrs=["count"])["count"]
            expired_total = sum(cluster.call(n, "dlq")["expired"]
                                for n in range(NODES))
            expired = expired_total - expired_before
            expired_before = expired_total
            assert delivered + expired == total, \
                f"accounting leak: {delivered} + {expired} != {total}"
            probe_stats = cluster.call(
                2, "actor_state", address=probe,
                attrs=["p50_ms", "p99_ms", "throughput"])
            status1 = cluster.call(1, "status")
            hub0 = cluster.call(0, "snapshot", events=False)["hub"]
            rss = [_proc_peak_rss_mb(p.pid) for p in cluster.procs.values()]
            rows.append({
                "transport": "tcp-loopback",
                "multiplier": multiplier,
                "offered_msgs_per_s": offered_rate,
                "offered_total": total,
                "delivered": delivered,
                "expired": expired,
                "mailbox_shed_node1": status1["mailbox_shed"],
                "admission_node1": status1["admission"],
                "wire_frames_shed_node0": hub0["frames_shed"],
                "credit": hub0["credit"],
                "send_buffer_peak_bytes_node0": hub0["queue_peak_bytes"],
                "admitted_p50_ms": round(probe_stats["p50_ms"], 3),
                "admitted_p99_ms": round(probe_stats["p99_ms"], 3),
                "goodput_fraction": round(delivered / total, 4),
                "node_peak_rss_mb": [round(r, 1) for r in rss
                                     if r is not None],
            })
    finally:
        cluster.shutdown()
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--multipliers", type=int, nargs="+",
                        default=MULTIPLIERS,
                        help=f"offered load as a multiple of sink capacity "
                             f"(default {MULTIPLIERS})")
    parser.add_argument("--seconds", type=float, default=2.0,
                        help="flood duration per sweep point (default 2.0)")
    parser.add_argument("--probe-total", type=int, default=300,
                        help="closed-loop probe round trips per TCP point")
    parser.add_argument("--quick", action="store_true",
                        help="small counts for smoke runs")
    parser.add_argument("--max-rss-mb", type=float, default=None,
                        help="fail if any process's peak RSS exceeds this")
    parser.add_argument("--max-admitted-p99-ms", type=float, default=None,
                        help="fail if the TCP admitted-traffic p99 "
                             "exceeds this at any multiplier")
    parser.add_argument("--out", default=str(HERE / "BENCH_overload.json"),
                        help="output JSON path")
    args = parser.parse_args(argv)
    seconds = 0.8 if args.quick else args.seconds
    probe_total = 100 if args.quick else args.probe_total

    rows = bench_sim(args.multipliers, seconds)
    if loopback_available():
        rows.extend(bench_tcp(args.multipliers, seconds, probe_total))
    else:
        print("loopback TCP unavailable; emitting simulator rows only")
    launcher_rss = _self_rss_mb()

    header = (f"{'transport':<14} {'xcap':>5} {'offered':>8} {'deliv':>7} "
              f"{'expired':>8} {'goodput':>8} {'p99 ms':>8}")
    print(header)
    print("-" * len(header))
    for row in rows:
        p99 = row.get("admitted_p99_ms", row.get("admitted_wait_bound_ms"))
        print(f"{row['transport']:<14} {row['multiplier']:>5} "
              f"{row['offered_total']:>8} {row['delivered']:>7} "
              f"{row['expired']:>8} {row['goodput_fraction']:>8} {p99:>8}")

    tcp_rows = [r for r in rows if r["transport"] == "tcp-loopback"]
    worst_p99 = max((r["admitted_p99_ms"] for r in tcp_rows), default=None)
    peak_rss = max([launcher_rss]
                   + [r for row in tcp_rows
                      for r in row.get("node_peak_rss_mb", [])])
    report = {
        "nodes": NODES,
        "multipliers": args.multipliers,
        "seconds_per_point": seconds,
        "mailbox_capacity": MAILBOX_CAPACITY,
        "sim_service_rate": SIM_SERVICE_RATE,
        "tcp_busy_ms": TCP_BUSY_MS,
        "worst_admitted_p99_ms": worst_p99,
        "launcher_peak_rss_mb": round(launcher_rss, 1),
        "peak_rss_mb": round(peak_rss, 1),
        "results": rows,
    }
    pathlib.Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    print(f"peak RSS (launcher+nodes): {peak_rss:.1f} MB"
          + (f"; worst admitted p99: {worst_p99} ms" if worst_p99 else ""))

    failed = False
    if args.max_rss_mb is not None and peak_rss > args.max_rss_mb:
        print(f"FAIL: peak RSS {peak_rss:.1f} MB exceeds "
              f"{args.max_rss_mb} MB")
        failed = True
    if args.max_admitted_p99_ms is not None and worst_p99 is not None \
            and worst_p99 > args.max_admitted_p99_ms:
        print(f"FAIL: admitted p99 {worst_p99} ms exceeds "
              f"{args.max_admitted_p99_ms} ms")
        failed = True
    if not failed and (args.max_rss_mb is not None
                       or args.max_admitted_p99_ms is not None):
        print("OK: overload gates hold (bounded memory, bounded admitted "
              "p99, zero silent drops)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
