"""E4 — section 6: nested actorSpaces localize traffic.

"The broadcast can happen to representatives of a WAN whereas the
subsequent distribution can be localized to be within a LAN."

Scenario: a client on cluster 0 scatters T tasks to workers spread over k
LAN clusters.

* **flat** — every worker is visible in one global space; each task is a
  ``send('workers/*')`` from the client, so most tasks cross the WAN.
* **nested** — each cluster has a local pool space plus one representative
  actor visible globally; the client broadcasts the batch to the
  representatives (k WAN messages) and each representative scatters its
  share inside its own LAN.

Regenerated claim: the nested structure replaces O(T) WAN messages with
O(k), cutting mean task latency accordingly.
"""

from repro.core.actor import Behavior
from repro.core.messages import Destination
from repro.runtime.network import LinkKind, Topology
from repro.runtime.system import ActorSpaceSystem
from repro.util import TextTable

from .common import emit

TASKS = 120
SEED = 9


class Worker(Behavior):
    def __init__(self):
        self.done = []

    def receive(self, ctx, message):
        self.done.append((ctx.now, message.payload))


class Representative(Behavior):
    """Receives a batch for its LAN and scatters it locally."""

    def __init__(self, local_pool):
        self.local_pool = local_pool

    def receive(self, ctx, message):
        kind, tasks = message.payload
        for task in tasks:
            ctx.send(Destination("**", self.local_pool), ("task", task))


def _topology(clusters, per_cluster):
    return Topology.wan(*([per_cluster] * clusters))


def _flat(clusters, per_cluster):
    system = ActorSpaceSystem(topology=_topology(clusters, per_cluster),
                              seed=SEED)
    workers = []
    for node in system.topology.nodes:
        w = Worker()
        addr = system.create_actor(w, node=node)
        system.make_visible(addr, f"workers/n{node}")
        workers.append(w)
    system.run()
    system.tracer.hops.clear()
    start = system.clock.now
    for task in range(TASKS):
        system.send("workers/*", ("task", task))
    system.run()
    return system, workers, start


def _nested(clusters, per_cluster):
    system = ActorSpaceSystem(topology=_topology(clusters, per_cluster),
                              seed=SEED)
    workers = []
    for cluster in range(clusters):
        nodes = system.topology.cluster_nodes(cluster)
        pool = system.create_space(node=nodes[0])
        system.run()
        for node in nodes:
            w = Worker()
            addr = system.create_actor(w, node=node, space=pool)
            system.make_visible(addr, f"w/n{node}", pool)
            workers.append(w)
        rep = system.create_actor(Representative(pool), node=nodes[0])
        system.make_visible(rep, f"reps/lan{cluster}")
    system.run()
    system.tracer.hops.clear()
    start = system.clock.now
    # One broadcast to the k representatives, each carrying its share.
    share = TASKS // clusters
    for cluster in range(clusters):
        tasks = list(range(cluster * share, (cluster + 1) * share))
        system.send(f"reps/lan{cluster}", ("batch", tasks))
    system.run()
    return system, workers, start


def _delivery_stats(workers, start):
    times = [t - start for w in workers for (t, _p) in w.done]
    count = len(times)
    mean = sum(times) / count if count else 0.0
    return count, mean


def test_bench_e4_nesting(benchmark):
    table = TextTable(
        ["clusters x nodes", "structure", "tasks delivered", "WAN hops",
         "LAN hops", "mean task latency"],
        title="E4: flat vs nested distribution of 120 tasks",
    )
    for clusters, per_cluster in ((2, 4), (4, 4), (6, 2)):
        for label, build in (("flat", _flat), ("nested", _nested)):
            system, workers, start = build(clusters, per_cluster)
            count, mean = _delivery_stats(workers, start)
            table.add_row([
                f"{clusters}x{per_cluster}", label, count,
                system.tracer.hops.get(LinkKind.WAN, 0),
                system.tracer.hops.get(LinkKind.LAN, 0),
                mean,
            ])
    emit("e4_nesting", table)
    benchmark(lambda: _nested(4, 4))
