"""Shared plumbing for the experiment benchmarks.

Every ``test_bench_eNN_*`` regenerates one experiment from DESIGN.md: it
sweeps the experiment's parameters, prints the paper-style table, saves it
under ``benchmarks/results/``, and hands one representative configuration
to pytest-benchmark for timing.  EXPERIMENTS.md quotes the saved tables.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, *tables) -> str:
    """Print and persist the rendered tables for experiment ``name``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n\n".join(str(t) for t in tables)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}")
    return text
