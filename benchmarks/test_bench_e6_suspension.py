"""E6 — section 5.6: the semantics of unmatched pattern messages.

The paper enumerates the options — suspend (its default), discard, raise
an error, or (for broadcasts) persist so future matches receive the
message exactly once.  The experiment drives a late-binding workload
under every policy and reports delivery counts, and sweeps the arrival
delay to show suspension cost is independent of how late the match is.
"""

import pytest

from repro.core.errors import NoMatchError
from repro.core.manager import SpaceManager, UnmatchedPolicy
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.util import TextTable

from .common import emit

SEED = 6


def _run_policy(policy, senders=10, waves=2):
    """Send before any receiver exists; receivers arrive in waves."""
    system = ActorSpaceSystem(
        topology=Topology.lan(2), seed=SEED,
        root_manager_factory=lambda: SpaceManager(unmatched=policy),
    )
    errors = 0
    for i in range(senders):
        try:
            system.broadcast("late/**", ("msg", i))
        except NoMatchError:
            errors += 1
    system.run()
    received = []
    for wave in range(waves):
        got = []
        addr = system.create_actor(lambda ctx, m, g=got: g.append(m.payload))
        system.make_visible(addr, f"late/w{wave}")
        system.run()
        received.append(len(got))
    return {
        "suspended": system.tracer.suspended_count,
        "released": system.tracer.released_count,
        "discarded": system.tracer.dropped.get("unmatched_discarded", 0),
        "errors": errors,
        "wave_deliveries": received,
        "persistent": system.tracer.persistent_deliveries,
    }


def test_bench_e6_suspension(benchmark):
    policies = TextTable(
        ["policy", "parked", "wave-1 got", "wave-2 got", "discarded",
         "errors", "late deliveries"],
        title="E6a: 10 broadcasts before any receiver; two receiver waves",
    )
    for policy in (UnmatchedPolicy.SUSPEND, UnmatchedPolicy.DISCARD,
                   UnmatchedPolicy.ERROR, UnmatchedPolicy.PERSISTENT):
        r = _run_policy(policy)
        policies.add_row([
            policy.value, r["suspended"], r["wave_deliveries"][0],
            r["wave_deliveries"][1], r["discarded"], r["errors"],
            r["persistent"],
        ])

    delay = TextTable(
        ["arrival delay", "messages parked", "delivered", "delivery time"],
        title="E6b: suspension cost vs receiver lateness (default policy)",
    )
    for arrival in (0.5, 5.0, 50.0):
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=SEED)
        got = []
        system.send("svc/late", "hello")
        system.run()

        def arrive():
            addr = system.create_actor(
                lambda ctx, m: got.append(ctx.now), node=1)
            system.make_visible(addr, "svc/late")

        system.events.schedule(arrival, arrive)
        system.run()
        delay.add_row([
            arrival, system.tracer.suspended_count, len(got),
            got[0] if got else "-",
        ])
    emit("e6_suspension", policies, delay)
    benchmark(lambda: _run_policy(UnmatchedPolicy.SUSPEND))
