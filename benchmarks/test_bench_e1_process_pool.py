"""E1 — Figure 1 / section 6: the dynamic process pool.

Claims regenerated:
* makespan falls as the pool grows, with unchanged client code;
* no master bottleneck: divisions are spread across workers;
* processors arriving mid-run (Figure 1's lighter circles) take load
  without a restart.
"""

from repro.apps.process_pool import run_process_pool
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.util import TextTable, gini

from .common import emit

JOB_SIZE = 4096
SEED = 42


def _run(workers, arrivals=None):
    system = ActorSpaceSystem(topology=Topology.lan(4), seed=SEED)
    return run_process_pool(system, workers=workers, job_size=JOB_SIZE,
                            grain=64, arrivals=arrivals)


def test_bench_e1_process_pool(benchmark):
    table = TextTable(
        ["pool", "arrivals", "makespan", "speedup", "jobs gini",
         "dividers", "correct"],
        title="E1: dynamic process pool (Fig. 1) — job=4096, grain=64",
    )
    base = None
    for workers in (1, 2, 4, 8, 16, 32):
        result = _run(workers)
        if base is None:
            base = result.makespan
        active = [j for j in result.worker_jobs if j > 0]
        table.add_row([
            workers, "-", result.makespan, base / result.makespan,
            gini(result.worker_jobs),
            sum(1 for _ in active), result.correct,
        ])
    # Mid-run arrivals: a small pool rescued dynamically.
    for start, arriving in ((2, 6), (4, 12)):
        result = _run(start, arrivals=[(0.3, arriving)])
        table.add_row([
            f"{start}+{arriving}", "t=0.3", result.makespan,
            base / result.makespan, gini(result.worker_jobs),
            len([j for j in result.worker_jobs if j > 0]), result.correct,
        ])
    emit("e1_process_pool", table)
    benchmark(lambda: _run(8))
