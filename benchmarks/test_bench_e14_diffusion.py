"""E14 — section 1: diffusion scheduling over neighbourhood actorSpaces.

Claims regenerated:
* a hot spot diffuses through overlapping neighbourhood spaces: load
  variance decays toward zero; without diffusion it stays concentrated;
* makespan improves because idle neighbours absorb surplus;
* the mechanism needs no central scheduler — only ``send('*@N_p')``.
"""

from repro.apps.diffusion import run_diffusion
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.util import TextTable, coefficient_of_variation

from .common import emit

SEED = 9


def _run(diffuse, rows=4, cols=4, hot=64):
    system = ActorSpaceSystem(topology=Topology.lan(4), seed=SEED)
    return run_diffusion(system, rows=rows, cols=cols, hot_units=hot,
                         diffuse=diffuse, max_time=60)


def test_bench_e14_diffusion(benchmark):
    headline = TextTable(
        ["grid", "hot units", "diffusion", "makespan", "transfers",
         "all work done"],
        title="E14a: hot spot at one corner of a processor grid",
    )
    for rows, cols, hot in ((4, 4, 64), (6, 6, 128)):
        for diffuse in (True, False):
            result = _run(diffuse, rows, cols, hot)
            headline.add_row([
                f"{rows}x{cols}", hot, "on" if diffuse else "off",
                result.makespan if result.makespan is not None else ">60",
                result.transfers, result.completed == result.injected,
            ])

    series = TextTable(
        ["t", "load CV (diffusion)", "load CV (none)"],
        title="E14b: load imbalance (coefficient of variation) over time — 4x4",
    )
    with_d = _run(True)
    without = _run(False)
    for i in range(0, 8):
        t_d, loads_d = with_d.load_series[i]
        _t_n, loads_n = without.load_series[i]
        cv_d = coefficient_of_variation(loads_d) if sum(loads_d) else 0.0
        cv_n = coefficient_of_variation(loads_n) if sum(loads_n) else 0.0
        series.add_row([t_d, cv_d, cv_n])
    emit("e14_diffusion", headline, series)
    benchmark(lambda: _run(True))
