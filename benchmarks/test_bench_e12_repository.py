"""E12 — section 1: pattern-directed access to a software repository.

Claims regenerated:
* interface-attribute queries retrieve classes with one pattern send
  (vs the register/lookup/send triple of a name server);
* broadcast enumerates a namespace without a registry scan API;
* classes published at run time become retrievable immediately (open
  interfaces), measured as query-to-answer latency for a late class.
"""

from repro.apps.repository import build_repository, query_all, query_one
from repro.baselines.nameserver import LookupThenSendClient, NameServerBehavior
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.util import TextTable

from .common import emit

SEED = 8


def _repo(count):
    system = ActorSpaceSystem(topology=Topology.lan(4), seed=SEED)
    handle = build_repository(system, class_count=count, seed=SEED)
    return system, handle


def test_bench_e12_repository(benchmark):
    retrieval = TextTable(
        ["library size", "query", "mode", "answers", "time to answer"],
        title="E12a: interface-pattern retrieval",
    )
    for count in (100, 500):
        for pattern, mode in [
            ("collections/list/*", "send"),
            ("collections/*/concurrent", "send"),
            ("math/**", "broadcast"),
        ]:
            system, handle = _repo(count)
            start = system.clock.now
            if mode == "send":
                query_one(system, handle, pattern)
            else:
                query_all(system, handle, pattern)
            system.run()
            answers = len(handle.client.instances) + len(handle.client.classes)
            retrieval.add_row([
                count, pattern, mode, answers, system.clock.now - start,
            ])

    # Access-cost comparison with the name-server baseline.
    system, handle = _repo(200)
    pattern_msgs = 1  # one send carries the request
    ns_system = ActorSpaceSystem(topology=Topology.lan(4), seed=SEED)
    ns = ns_system.create_actor(NameServerBehavior(), node=0)
    target_got = []
    target = ns_system.create_actor(
        lambda ctx, m: target_got.append(m.payload), node=1)
    ns_system.send_to(ns, ("register", "collections.list.x", target))
    ns_system.run()
    monitor_got = []
    monitor = ns_system.create_actor(
        lambda ctx, m: monitor_got.append(m.payload))
    ns_system.create_actor(
        LookupThenSendClient(ns, "collections.list.x", ("instantiate", None),
                             monitor=monitor), node=2)
    ns_system.run()
    comparison = TextTable(
        ["mechanism", "client messages per first contact", "needs exact name"],
        title="E12b: access cost — patterns vs global name server",
    )
    comparison.add_row(["ActorSpace pattern send", pattern_msgs, False])
    comparison.add_row([
        "name server (lookup+send)", monitor_got[0][2], True,
    ])

    # Run-time publication: a query waiting on a not-yet-published class.
    system, handle = _repo(50)
    query_one(system, handle, "brand-new/widget")
    system.run()
    from repro.apps.repository import ClassFactory

    publish_time = system.clock.now
    factory = ClassFactory("brand.new.widget", ["brand-new/widget"])
    addr = system.create_actor(factory, space=handle.space)
    system.make_visible(addr, "brand-new/widget", handle.space)
    system.run()
    late = TextTable(
        ["event", "t"],
        title="E12c: open repository — query answered on publication",
    )
    late.add_row(["class published", publish_time])
    late.add_row(["suspended query answered", system.clock.now])
    late.add_row(["instances returned", len(handle.client.instances)])
    emit("e12_repository", retrieval, comparison, late)

    system, handle = _repo(200)
    benchmark(lambda: (query_one(system, handle, "io/**"), system.run()))
