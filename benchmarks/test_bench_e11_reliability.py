"""E11 — sections 1 and 5.3: replication for reliability.

Claims regenerated:
* with replicas crashed mid-run, plain sends lose the requests routed to
  dead members, proportionally to the crashed fraction;
* clients that retransmit on timeout recover to ~100% success — without
  any change to how they address the service (the pattern hides
  membership);
* the latency cost of recovery is bounded by (retries x timeout).

Self-healing extension (same claim, server side): a heartbeat failure
detector quarantines confirmed-dead replicas so retransmissions stop
being routed to them, and a recovery schedule redelivers the dead
letters captured during the outage — under both bus protocols.
"""

from repro.apps.replicated import run_replicated_service
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.util import TextTable, summarize

from .common import emit

SEED = 11
REQUESTS = 200


def _run(crashed, timeout):
    system = ActorSpaceSystem(topology=Topology.lan(9), seed=SEED)
    return run_replicated_service(
        system, replicas=8, requests=REQUESTS,
        crash_replicas=crashed, crash_after=0.4, timeout=timeout,
    )


def _run_selfheal(crashed, detector=False, recover_after=None, bus="sequencer"):
    system = ActorSpaceSystem(topology=Topology.lan(9), seed=SEED, bus=bus)
    return run_replicated_service(
        system, replicas=8, requests=REQUESTS,
        crash_replicas=crashed, crash_after=0.4, timeout=0.5,
        detector=detector, recover_after=recover_after,
    )


def test_bench_e11_reliability(benchmark):
    table = TextTable(
        ["replicas crashed", "retry", "success rate", "retransmissions",
         "p95 latency", "makespan"],
        title="E11: crash a fraction of 8 replicas at t=0.4 — 200 requests",
    )
    for crashed in (0, 2, 4, 6):
        for timeout in (None, 0.5):
            result = _run(crashed, timeout)
            table.add_row([
                f"{crashed}/8", "on" if timeout else "off",
                f"{result.success_rate:.1%}", result.retries_used,
                summarize(result.latencies)["p95"], result.makespan,
            ])
    emit("e11_reliability", table)

    heal = TextTable(
        ["bus", "variant", "success rate", "retransmissions",
         "quarantined", "dead letters q/redelivered", "failovers"],
        title="E11b: self-healing — 4/8 crashed at t=0.4, retry on",
    )
    for bus in ("sequencer", "token-ring"):
        for variant, kwargs in (
            ("retry only", {}),
            ("+detector", {"detector": True}),
            ("+detector +recover@1.5", {"detector": True, "recover_after": 1.5}),
        ):
            result = _run_selfheal(4, bus=bus, **kwargs)
            heal.add_row([
                bus, variant, f"{result.success_rate:.1%}",
                result.retries_used, result.quarantined_entries,
                f"{result.dead_letters_queued}/{result.dead_letters_redelivered}",
                result.failovers,
            ])
    emit("e11_selfhealing", heal)
    benchmark(lambda: _run(2, 0.5))
