"""E3 — section 5.3: broadcasting lower bounds prunes TSP branch-and-bound.

Claims regenerated:
* with bound broadcasting, total nodes expanded drops substantially;
* the effect holds across instance sizes and worker counts;
* both variants still find the optimum (correctness not traded away).
"""

from repro.apps.tsp import run_tsp
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.util import TextTable

from .common import emit

SEED = 7
INSTANCE = 123


def _run(n, workers, share):
    system = ActorSpaceSystem(topology=Topology.lan(4), seed=SEED)
    return run_tsp(system, n_cities=n, workers=workers,
                   instance_seed=INSTANCE, share_bounds=share)


def test_bench_e3_tsp(benchmark):
    by_size = TextTable(
        ["cities", "nodes (shared)", "nodes (isolated)", "pruning",
         "broadcasts", "optimum found"],
        title="E3a: bound broadcasting vs isolated search — 4 workers",
    )
    for n in (9, 10, 11):
        shared = _run(n, 4, True)
        isolated = _run(n, 4, False)
        by_size.add_row([
            n, shared.nodes_expanded, isolated.nodes_expanded,
            f"{1 - shared.nodes_expanded / isolated.nodes_expanded:.1%}",
            shared.bound_broadcasts,
            shared.found_optimum and isolated.found_optimum,
        ])

    by_workers = TextTable(
        ["workers", "nodes (shared)", "nodes (isolated)", "pruning",
         "bounds heard"],
        title="E3b: effect across worker counts — 10 cities",
    )
    for workers in (1, 2, 4, 8):
        shared = _run(10, workers, True)
        isolated = _run(10, workers, False)
        by_workers.add_row([
            workers, shared.nodes_expanded, isolated.nodes_expanded,
            f"{1 - shared.nodes_expanded / isolated.nodes_expanded:.1%}",
            shared.bounds_heard,
        ])
    emit("e3_tsp", by_size, by_workers)
    benchmark(lambda: _run(9, 4, True))
