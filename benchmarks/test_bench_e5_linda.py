"""E5 — section 3: ActorSpace vs Linda on identical workloads.

Claims regenerated:
* late-binding delivery: suspension costs O(1) messages; Linda polling
  costs O(delay / poll-interval) round trips, or (blocking `in`) parks
  state in a central kernel;
* producer/consumer throughput through a central tuple space vs direct
  pattern-addressed delivery (the kernel serializes; patterns do not);
* the security gap is demonstrated (any Linda process can steal a tuple;
  in ActorSpace the *sender* chooses the receiver's attributes) — shown
  as a boolean column, since it is a property, not a rate.
"""

from repro.baselines.linda import ANY, PollingConsumer, TupleSpaceBehavior
from repro.core.messages import Mode
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.util import TextTable

from .common import emit

SEED = 4


def _actorspace_late(delay):
    system = ActorSpaceSystem(topology=Topology.lan(2), seed=SEED)
    delivered = []
    system.send("consumers/c1", ("result", 42))
    system.run()

    def arrive():
        addr = system.create_actor(lambda ctx, m: delivered.append(ctx.now),
                                   node=1)
        system.make_visible(addr, "consumers/c1")

    system.events.schedule(delay, arrive)
    system.run()
    assert delivered
    msgs = sum(system.tracer.sent.values())
    return msgs, delivered[0]


def _linda_late(delay, poll):
    system = ActorSpaceSystem(topology=Topology.lan(2), seed=SEED)
    space = system.create_actor(TupleSpaceBehavior(), node=0)
    consumer = PollingConsumer(space, ("result", ANY), poll)
    system.create_actor(consumer, node=1)
    system.events.schedule(
        delay, lambda: system.send_to(space, ("out", ("result", 42))))
    system.run()
    assert consumer.result is not None
    return consumer.polls * 2 + 1, None


def _producer_consumer_linda(items):
    system = ActorSpaceSystem(topology=Topology.lan(3), seed=SEED)
    space = system.create_actor(TupleSpaceBehavior(), node=0)
    got = []
    done_at = []

    def consume(ctx, message):
        tag, *rest = message.payload
        if tag == "tuple":
            got.append(rest[0])
            done_at.append(ctx.now)
            if len(got) < items:
                ctx.send_to(space, ("in", ("item", ANY)),
                            reply_to=ctx.self_address)

    consumer = system.create_actor(consume, node=2)
    system.send_to(space, ("in", ("item", ANY)), reply_to=consumer)
    for i in range(items):
        system.send_to(space, ("out", ("item", i)))
    system.run()
    return len(got), system.clock.now


def _producer_consumer_actorspace(items):
    system = ActorSpaceSystem(topology=Topology.lan(3), seed=SEED)
    got = []
    addr = system.create_actor(lambda ctx, m: got.append(m.payload), node=2)
    system.make_visible(addr, "consumers/c1")
    system.run()
    for i in range(items):
        system.send("consumers/c1", ("item", i))
    system.run()
    return len(got), system.clock.now


def test_bench_e5_linda(benchmark):
    late = TextTable(
        ["receiver delay", "mechanism", "messages", "sender picks receiver"],
        title="E5a: late-binding delivery — suspension vs polling",
    )
    for delay in (1.0, 5.0, 20.0):
        msgs, _t = _actorspace_late(delay)
        late.add_row([delay, "ActorSpace suspend", msgs, True])
        for poll in (0.2, 1.0):
            msgs, _t = _linda_late(delay, poll)
            late.add_row([delay, f"Linda inp poll={poll}", msgs, False])

    tput = TextTable(
        ["items", "substrate", "delivered", "finish time"],
        title="E5b: producer/consumer stream — central kernel vs patterns",
    )
    for items in (50, 200):
        n, t = _producer_consumer_linda(items)
        tput.add_row([items, "Linda (in/out)", n, t])
        n, t = _producer_consumer_actorspace(items)
        tput.add_row([items, "ActorSpace send", n, t])
    emit("e5_linda", late, tput)
    benchmark(lambda: _producer_consumer_actorspace(100))
