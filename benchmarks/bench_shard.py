"""Sharded visibility-plane benchmark: throughput scaling 1/2/4/8 shards.

The visibility plane's single sequencer is a serialization point: every
``make_visible``/``change_attributes`` in the cluster funnels through one
total order, however many spaces it touches.  Partitioning the plane
(``src/repro/shard``) keeps one total order *per space family* — which is
all §5 of the paper ever required — so independent spaces sequence
concurrently.  This benchmark measures exactly that claim, twice:

* **sim** — the single-process runtime with a modeled per-op sequencer
  service time (``sequencer_service_time``, standing in for the durable
  append + fan-out a real seat performs).  Virtual time is the
  yardstick: seats on different nodes overlap their service intervals,
  so K shards divide the sequencing makespan by ~K for a workload
  spread over K independent space families.
* **tcp-loopback** — real node processes on one machine.  One machine
  means one CPU budget: sharding *redistributes* sequencing work, it
  cannot add cores, so wall-clock throughput on loopback understates
  the win.  The honest scaling metric here is **bottleneck-node
  capacity**: total ops divided by the *largest* per-node CPU time
  consumed (utime+stime from ``/proc/<pid>/stat``).  On a multi-core
  or multi-host deployment — where each seat really does run on its
  own silicon — wall-clock throughput tracks this capacity figure,
  because the slowest (busiest) node gates the pipeline.  Wall ops/s
  is reported alongside for transparency; the ``--min-speedup`` gate
  reads capacity.

Both sweeps drive the same shape: eight spaces whose root attribute
atoms are probed to spread perfectly across 1/2/4/8 shards, one target
actor per space pinned round-robin across the nodes, and a fixed number
of visibility ops per space submitted from the actor's own node.  A
second measurement holds the *single-shard* case honest: a one-space
workload on the sharded plane must keep its per-op latency within ~10%
of the unsharded baseline (the sim ratio is deterministic and gated;
the TCP ratio shares a core with the cluster and is reported, not
gated).

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_shard.py [--quick]

Emits ``BENCH_shard.json`` next to this file and a table on stdout.
``--min-speedup R`` exits non-zero if 4-shard throughput scaling is
below ``R x`` (sim virtual throughput and TCP bottleneck capacity) or
the sim single-shard latency ratio exceeds 1.10 — CI runs it at
reduced scale with ``--min-speedup 1.5``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
import zlib

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.net.cluster import LocalCluster, loopback_available  # noqa: E402
from repro.runtime.network import Topology  # noqa: E402
from repro.runtime.system import ActorSpaceSystem  # noqa: E402
from repro.shard.map import ShardMap  # noqa: E402

HERE = pathlib.Path(__file__).resolve().parent
SHARD_COUNTS = [1, 2, 4, 8]
SPACES = 8
SIM_NODES = 8       # one sim node per potential seat
TCP_NODES = 6       # throughput sweep: seats spread over six processes
TCP_LATENCY_NODES = 2
SERVICE_TIME = 0.002  # modeled per-op sequencer service time (sim)


def _affine_atoms(buckets: int = SPACES) -> list[str]:
    """Root atoms whose crc32 buckets cover 0..buckets-1 exactly.

    Because the shard of an atom is ``crc32 % n_shards`` and the bucket
    count is a multiple of every swept shard count, these atoms spread
    *perfectly* evenly across 1, 2, 4, and 8 shards — the sweep measures
    the plane, not hash luck.
    """
    atoms: dict[int, str] = {}
    index = 0
    while len(atoms) < buckets:
        atom = f"shard{index}"
        atoms.setdefault(zlib.crc32(atom.encode("utf-8")) % buckets, atom)
        index += 1
    return [atoms[i] for i in range(buckets)]


def _noop_behavior(ctx, message):  # pragma: no cover - never messaged
    return None


# -- simulator side --------------------------------------------------------------


def _sim_system(shards: int, nodes: int) -> ActorSpaceSystem:
    kw = {"shards": shards} if shards > 1 else {}
    return ActorSpaceSystem(topology=Topology.lan(nodes), seed=0,
                            sequencer_service_time=SERVICE_TIME, **kw)


def bench_sim(ops_per_space: int, shard_counts: list[int]) -> list[dict]:
    """Virtual-time sweep: K independent space families, K shard streams."""
    atoms = _affine_atoms()
    rows = []
    for k in shard_counts:
        system = _sim_system(k, SIM_NODES)
        spaces, actors, homes = [], [], []
        for i, atom in enumerate(atoms):
            home = i % SIM_NODES
            space = system.create_space(node=home, attributes=atom)
            actor = system.create_actor(_noop_behavior, node=home)
            system.make_visible(actor, f"{atom}/seed", space, node=home)
            spaces.append(space)
            actors.append(actor)
            homes.append(home)
        system.run()
        t0 = system.clock.now
        total = ops_per_space * len(atoms)
        for i in range(total):
            j = i % len(spaces)
            system.make_visible(actors[j], f"{atoms[j]}/v{i & 7}",
                                spaces[j], node=homes[j])
        system.run()
        makespan = system.clock.now - t0
        rows.append({
            "transport": "sim",
            "shards": k,
            "ops": total,
            "makespan_virtual_s": round(makespan, 6),
            "throughput_ops_per_s": round(total / makespan, 1),
        })
    return rows


def bench_sim_latency(ops: int) -> dict:
    """Single-space per-op virtual latency: sharded plane vs baseline.

    The probe atom's 4-shard seat is node 0 — the same node the single
    global sequencer lives on — so both sides pay identical modeled
    wire and service costs and the ratio isolates the sharded plane's
    bookkeeping.  Deterministic (virtual time), hence gated.
    """
    atom = _seat_zero_atom(TCP_LATENCY_NODES)
    out = {}
    for label, shards in (("unsharded", 1), ("sharded_4", 4)):
        system = _sim_system(shards, TCP_LATENCY_NODES)
        space = system.create_space(node=0, attributes=atom)
        actor = system.create_actor(_noop_behavior, node=0)
        system.make_visible(actor, f"{atom}/seed", space, node=0)
        system.run()
        t0 = system.clock.now
        for i in range(ops):
            system.make_visible(actor, f"{atom}/v{i & 7}", space, node=0)
        system.run()
        out[label] = (system.clock.now - t0) / ops
    return {
        "ops": ops,
        "unsharded_ms_per_op": round(out["unsharded"] * 1e3, 4),
        "sharded_4_ms_per_op": round(out["sharded_4"] * 1e3, 4),
        "ratio": round(out["sharded_4"] / out["unsharded"], 4),
    }


# -- TCP loopback side -----------------------------------------------------------


def _seat_zero_atom(nodes: int) -> str:
    """An affine atom whose 4-shard sequencer seat is node 0."""
    return next(a for a in _affine_atoms()
                if ShardMap(4, list(range(nodes))).sequencer_for(
                    ShardMap(4).owner_of(a)) == 0)


def _tcp_applied(cluster: LocalCluster, node: int) -> int:
    return cluster.call(node, "status")["applied_seq"]


def _cpu_seconds(cluster: LocalCluster) -> dict[int, float]:
    """Per-node process CPU time (utime+stime) from ``/proc/<pid>/stat``.

    Returns ``{}`` when /proc accounting is unavailable (non-Linux) —
    callers fall back to wall-clock-only reporting.
    """
    try:
        tck = os.sysconf("SC_CLK_TCK")
    except (AttributeError, ValueError, OSError):
        return {}
    out: dict[int, float] = {}
    for node, proc in cluster.procs.items():
        try:
            stat = pathlib.Path(f"/proc/{proc.pid}/stat").read_text()
            # Field 2 (comm) may contain spaces; split after its ")".
            parts = stat.rsplit(") ", 1)[1].split()
            out[node] = (int(parts[11]) + int(parts[12])) / tck
        except (OSError, IndexError, ValueError):
            return {}
    return out


def _tcp_workload(cluster: LocalCluster,
                  ops_per_space: int) -> tuple[float, "float | None"]:
    """One sweep point: build the spaces, burst every one, time to quiesce.

    Application placement is *fixed* across the sweep — space ``i``'s
    target actor and submitter live on node ``i % nodes`` — so the
    1-shard baseline pays the real price of a single global seat (every
    remote submitter round-trips each op through it) and the sharded
    runs win exactly what seat locality buys.  Returns ``(wall seconds,
    max per-node CPU seconds)``; the latter is ``None`` without /proc.
    """
    atoms = _affine_atoms()
    n = cluster.n
    spaces, targets, submitters = [], [], []
    for i, atom in enumerate(atoms):
        submitter = i % n
        space = cluster.call(0, "create_space", attributes=atom)["address"]
        target = cluster.call(
            submitter, "create_actor", behavior="counter",
            visible={"attributes": f"{atom}/seed", "space": space},
        )["address"]
        spaces.append(space)
        targets.append(target)
        submitters.append(submitter)
    cluster.wait_until(
        lambda: all(cluster.call(node, "has_space", address=space)
                    for node in range(n) for space in spaces),
        what="bench spaces replicated")

    base = {node: _tcp_applied(cluster, node) for node in range(n)}
    cpu0 = _cpu_seconds(cluster)
    total = ops_per_space * len(atoms)
    t0 = time.monotonic()
    for i, (space, target, submitter) in enumerate(
            zip(spaces, targets, submitters)):
        cluster.call(submitter, "vis_burst", target=target, space=space,
                     count=ops_per_space, prefix=f"b{i}")
    cluster.wait_until(
        lambda: all(_tcp_applied(cluster, node) >= base[node] + total
                    for node in range(n)),
        timeout=180, interval=0.05, what=f"{total} vis ops applied everywhere")
    elapsed = time.monotonic() - t0
    cpu1 = _cpu_seconds(cluster)
    if not cpu0 or not cpu1:
        return elapsed, None
    busiest = max(cpu1[node] - cpu0[node] for node in cpu0)
    return elapsed, (busiest if busiest > 0 else None)


def bench_tcp(ops_per_space: int, shard_counts: list[int]) -> list[dict]:
    rows = []
    for k in shard_counts:
        cluster = LocalCluster(TCP_NODES, seed=0, trace=False,
                               shards=k if k > 1 else 1)
        cluster.start()
        try:
            elapsed, busiest_cpu = _tcp_workload(cluster, ops_per_space)
        finally:
            cluster.shutdown()
        total = ops_per_space * SPACES
        row = {
            "transport": "tcp-loopback",
            "shards": k,
            "ops": total,
            "elapsed_s": round(elapsed, 4),
            "wall_ops_per_s": round(total / elapsed, 1),
        }
        if busiest_cpu is not None:
            row["busiest_node_cpu_s"] = round(busiest_cpu, 4)
            row["capacity_ops_per_s"] = round(total / busiest_cpu, 1)
        # The gate metric: bottleneck-node capacity when /proc gives it
        # to us, wall throughput otherwise (non-Linux fallback).
        row["throughput_ops_per_s"] = row.get("capacity_ops_per_s",
                                              row["wall_ops_per_s"])
        rows.append(row)
    return rows


def bench_tcp_latency(ops: int, repeats: int = 3) -> dict:
    """Single-space per-op wall latency: sharded plane vs baseline.

    Both sides submit from the space's seat node (the probe atom's
    4-shard seat is node 0, matching the unsharded global seat), so the
    comparison isolates the sharded plane's bookkeeping — router,
    per-shard cursors, SHARD_FWD framing — rather than placement.
    Best-of-``repeats`` bounds scheduler noise on a shared core.
    """
    atom = _seat_zero_atom(TCP_LATENCY_NODES)
    out = {}
    for label, shards in (("unsharded", 1), ("sharded_4", 4)):
        cluster = LocalCluster(TCP_LATENCY_NODES, seed=0, trace=False,
                               shards=shards)
        cluster.start()
        try:
            space = cluster.call(0, "create_space",
                                 attributes=atom)["address"]
            target = cluster.call(
                0, "create_actor", behavior="counter",
                visible={"attributes": f"{atom}/seed", "space": space},
            )["address"]
            cluster.wait_until(
                lambda: all(cluster.call(node, "has_space", address=space)
                            for node in range(TCP_LATENCY_NODES)),
                what="latency space replicated")
            best = None
            for attempt in range(repeats):
                base = {node: _tcp_applied(cluster, node)
                        for node in range(TCP_LATENCY_NODES)}
                t0 = time.monotonic()
                cluster.call(0, "vis_burst", target=target, space=space,
                             count=ops, prefix=f"lat{attempt}")
                cluster.wait_until(
                    lambda: all(
                        _tcp_applied(cluster, node) >= base[node] + ops
                        for node in range(TCP_LATENCY_NODES)),
                    timeout=120, interval=0.02, what="latency burst applied")
                elapsed = time.monotonic() - t0
                best = elapsed if best is None else min(best, elapsed)
        finally:
            cluster.shutdown()
        out[label] = best / ops
    return {
        "ops": ops,
        "repeats": repeats,
        "unsharded_ms_per_op": round(out["unsharded"] * 1e3, 4),
        "sharded_4_ms_per_op": round(out["sharded_4"] * 1e3, 4),
        "ratio": round(out["sharded_4"] / out["unsharded"], 4),
    }


# -- driver ----------------------------------------------------------------------


def _speedup(rows: list[dict], transport: str,
             shards: int = 4) -> "float | None":
    by_shards = {r["shards"]: r["throughput_ops_per_s"]
                 for r in rows if r["transport"] == transport}
    if 1 not in by_shards or shards not in by_shards:
        return None
    return round(by_shards[shards] / by_shards[1], 3)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops-per-space", type=int, default=None,
                        help="visibility ops per space per sweep point "
                             "(default: sim 50, tcp 300)")
    parser.add_argument("--latency-ops", type=int, default=None,
                        help="ops in each single-space latency burst "
                             "(default: sim 400, tcp 2000)")
    parser.add_argument("--shards", type=int, nargs="+", default=SHARD_COUNTS,
                        help=f"shard counts to sweep (default {SHARD_COUNTS})")
    parser.add_argument("--quick", action="store_true",
                        help="small counts for smoke/CI runs")
    parser.add_argument("--skip-tcp", action="store_true",
                        help="simulator sweep only")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless 4-shard scaling >= this x (sim "
                             "virtual throughput + TCP bottleneck capacity) "
                             "and the sim latency ratio stays <= 1.10")
    parser.add_argument("--out", default=str(HERE / "BENCH_shard.json"),
                        help="output JSON path")
    args = parser.parse_args(argv)
    sim_ops = args.ops_per_space or (25 if args.quick else 50)
    tcp_ops = args.ops_per_space or (200 if args.quick else 300)
    sim_latency_ops = args.latency_ops or (100 if args.quick else 400)
    tcp_latency_ops = args.latency_ops or (500 if args.quick else 2000)

    rows = bench_sim(sim_ops, args.shards)
    latency = {"sim": bench_sim_latency(sim_latency_ops)}
    tcp_available = loopback_available() and not args.skip_tcp
    if tcp_available:
        rows.extend(bench_tcp(tcp_ops, args.shards))
        latency["tcp"] = bench_tcp_latency(tcp_latency_ops)
    else:
        print("loopback TCP unavailable or skipped; simulator rows only")

    header = (f"{'transport':<14} {'shards':>7} {'ops':>7} "
              f"{'wall ops/s':>12} {'capacity/s':>12}")
    print(header)
    print("-" * len(header))
    for row in rows:
        wall = row.get("wall_ops_per_s", row["throughput_ops_per_s"])
        cap = row.get("capacity_ops_per_s", "-")
        print(f"{row['transport']:<14} {row['shards']:>7} {row['ops']:>7} "
              f"{wall:>12} {cap:>12}")
    speedups = {t: _speedup(rows, t)
                for t in ("sim", "tcp-loopback")
                if any(r["transport"] == t for r in rows)}
    for transport, speedup in speedups.items():
        metric = ("bottleneck-node capacity"
                  if transport == "tcp-loopback" else "virtual throughput")
        print(f"{transport}: 4-shard {metric} speedup over 1 shard "
              f"= {speedup}x")
    for transport, info in latency.items():
        print(f"{transport}: single-shard latency {info['sharded_4_ms_per_op']}"
              f" ms/op sharded vs {info['unsharded_ms_per_op']} ms/op "
              f"unsharded (ratio {info['ratio']})")

    report = {
        "spaces": SPACES,
        "sim_ops_per_space": sim_ops,
        "tcp_ops_per_space": tcp_ops,
        "shard_counts": args.shards,
        "sim_nodes": SIM_NODES,
        "tcp_nodes": TCP_NODES,
        "sim_service_time_s": SERVICE_TIME,
        "tcp_metric": "capacity_ops_per_s = ops / busiest node CPU-seconds "
                      "(/proc utime+stime); wall ops/s reported alongside — "
                      "one shared core cannot show wall scaling",
        "speedup_4_shards": speedups,
        "single_shard_latency": latency,
        "results": rows,
    }
    pathlib.Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if args.min_speedup is not None:
        failed = [t for t, s in speedups.items()
                  if s is None or s < args.min_speedup]
        if latency["sim"]["ratio"] > 1.10:
            failed.append("sim-latency")
        if failed:
            print(f"FAIL: gate misses for {failed}: speedups={speedups} "
                  f"sim latency ratio={latency['sim']['ratio']}")
            return 1
        print(f"OK: 4-shard scaling meets the {args.min_speedup}x floor "
              f"on {sorted(speedups)} and the sim latency ratio "
              f"{latency['sim']['ratio']} is within 1.10")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
