"""Smoke tests: the example scripts keep running and telling their story.

Each fast example is executed in a subprocess; the test asserts a clean
exit and a signature line of its expected output.  (The slow sweeps —
process_pool, tsp_search, replicated_service — are exercised through
their underlying app modules in tests/apps/ instead.)
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    ("quickstart.py", "replicas coherent across nodes: True"),
    ("script_actors.py", "count = 15"),
    ("contract_net.py", "Expert load"),
    ("linda_vs_actorspace.py", "ActorSpace suspend"),
    ("software_repository.py", "class factories"),
    ("diffusion_grid.py", "makespan"),
]


@pytest.mark.parametrize("script,signature", FAST_EXAMPLES)
def test_example_runs_clean(script, signature):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert signature in result.stdout


def test_cli_demo_runs_clean():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "demo"],
        capture_output=True, text=True, timeout=60,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "replicas coherent: True" in result.stdout


def test_cli_listings():
    for command, needle in (("examples", "quickstart.py"),
                            ("experiments", "E9"),
                            ("version", ".")):
        result = subprocess.run(
            [sys.executable, "-m", "repro", command],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0
        assert needle in result.stdout

    bad = subprocess.run(
        [sys.executable, "-m", "repro", "frobnicate"],
        capture_output=True, text=True, timeout=60,
    )
    assert bad.returncode == 1
