"""Integration: self-healing delivery under randomized crash/recover churn.

The acceptance property of the fault-tolerance subsystem: crashing any
single node — including the sequencer and the current token holder —
never raises out of the event loop, and once every crashed node has
recovered, all replicas converge to identical directory snapshots.
"""

import random

import pytest

from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem

NODES = 5


def _churn_run(seed: int, bus: str) -> ActorSpaceSystem:
    """Random visibility churn interleaved with crash/recover events."""
    rng = random.Random(seed)
    system = ActorSpaceSystem(topology=Topology.lan(NODES), seed=seed, bus=bus)
    crashed: set[int] = set()
    serial = 0
    for _round in range(12):
        action = rng.random()
        if action < 0.25 and len(crashed) < NODES - 1:
            victim = rng.choice([n for n in range(NODES) if n not in crashed])
            system.crash_node(victim)  # may be the sequencer / token holder
            crashed.add(victim)
        elif action < 0.45 and crashed:
            back = rng.choice(sorted(crashed))
            system.recover_node(back)
            crashed.discard(back)
        # Visibility churn from a random *live* origin.
        live = [n for n in range(NODES) if n not in crashed]
        origin = rng.choice(live)
        addr = system.create_actor(lambda ctx, m: None, node=origin)
        system.make_visible(addr, f"churn/a{serial}", node=origin)
        serial += 1
        system.run(until=system.clock.now + rng.uniform(0.1, 1.5))
    for back in sorted(crashed):
        system.recover_node(back)
    system.run()  # quiescence: every replica caught up
    return system


@pytest.mark.parametrize("bus", ["sequencer", "token-ring"])
@pytest.mark.parametrize("seed", range(6))
def test_randomized_crash_recover_convergence(seed, bus):
    system = _churn_run(seed, bus)
    assert system.idle
    snapshots = [c.directory.snapshot() for c in system.coordinators]
    for node in range(1, NODES):
        assert snapshots[node] == snapshots[0], (
            f"replica {node} diverged after churn (seed={seed}, bus={bus})"
        )
    # No replica is left quarantining a live node.
    for coordinator in system.coordinators:
        assert coordinator.directory.quarantined_nodes == frozenset()


@pytest.mark.parametrize("bus", ["sequencer", "token-ring"])
def test_crashing_every_single_node_is_survivable(bus):
    """Crash each node in turn (fresh system each time): nothing escapes."""
    for victim in range(4):
        system = ActorSpaceSystem(topology=Topology.lan(4), seed=victim, bus=bus)
        a = system.create_actor(lambda ctx, m: None, node=(victim + 1) % 4)
        system.make_visible(a, "svc/a", node=(victim + 1) % 4)
        system.run()
        system.crash_node(victim)
        b = system.create_actor(lambda ctx, m: None, node=(victim + 2) % 4)
        system.make_visible(b, "svc/b", node=(victim + 2) % 4)
        system.send("svc/*", "hello", node=(victim + 1) % 4)
        system.run()  # no NodeDownError may escape
        system.recover_node(victim)
        system.run()
        assert system.replicas_coherent(), f"bus={bus} victim={victim}"


def test_detector_dlq_end_to_end_selfhealing():
    """Detector confirms → quarantine reroutes; recovery redelivers."""
    system = ActorSpaceSystem(topology=Topology.lan(4), seed=7)
    received: dict[int, list] = {1: [], 2: []}

    def server(node):
        return lambda ctx, m: received[node].append(m.payload)

    for node in (1, 2):
        addr = system.create_actor(server(node), node=node)
        system.make_visible(addr, f"svc/r{node}")
    system.run()
    system.crash_node(2)
    system.start_failure_detector(6.0, interval=0.25, confirm_after=3)
    system.run(until=system.clock.now + 2.0)  # detector confirms node 2
    assert 2 in system.failure_detector.confirmed_down
    # Quarantine: pattern sends now resolve only to the live replica.
    for i in range(10):
        system.send("svc/*", ("job", i))
    system.run(until=system.clock.now + 1.0)
    assert len(received[1]) == 10
    assert received[2] == []
    # Direct sends to the dead node were captured, and redeliver on recovery.
    dead_addr = system.resolve("svc/r2", node=0)  # masked: resolves empty
    assert dead_addr == []
    system.recover_node(2)
    system.run()
    assert system.resolve("svc/*") != []
    assert 2 not in system.directory_of(0).quarantined_nodes


def test_quarantine_preserves_snapshot_coherence():
    """Masks are an overlay: snapshots (and coherence) ignore them."""
    system = ActorSpaceSystem(topology=Topology.lan(3), seed=0)
    addr = system.create_actor(lambda ctx, m: None, node=2)
    system.make_visible(addr, "svc/a")
    system.run()
    system.crash_node(2)
    system.start_failure_detector(3.0, interval=0.5, confirm_after=2)
    system.run()
    # Replicas 0 and 1 mask node 2's entries but their snapshots still
    # carry them — recovery only has to lift the mask, not re-replicate.
    assert system.replicas_coherent()
    assert system.resolve("svc/*", node=0) == []
    snapshots = [c.directory.snapshot() for c in system.coordinators[:2]]
    assert all(
        any(addr in entries for entries in snap.values()) for snap in snapshots
    )
