"""Conservation laws: no message is silently lost.

Every envelope entering the system must be accounted for at quiescence:
delivered, still parked (suspended/persistent), or dropped with a counted
reason.  The property test drives random workloads — including pattern
traffic with partial registration, terminations, and crashes — and
checks the books balance.  This is the strongest statement of "delivery
is guaranteed to eventually happen" (section 5.6) the tracer can make.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import Mode
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem

N_NODES = 3


def _parked(system):
    suspended = sum(len(c.suspended) for c in system.coordinators)
    persistent = sum(len(c.persistent) for c in system.coordinators)
    return suspended, persistent


actions = st.lists(
    st.tuples(
        st.sampled_from(
            ["spawn", "show", "direct", "send", "broadcast", "kill", "run"]
        ),
        st.integers(0, 9),
        st.integers(0, N_NODES - 1),
    ),
    min_size=5,
    max_size=50,
)


@given(actions, st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_direct_sends_fully_accounted(schedule, seed):
    system = ActorSpaceSystem(topology=Topology.lan(N_NODES), seed=seed)
    actors = []
    for kind, idx, node in schedule:
        if kind == "spawn":
            actors.append(system.create_actor(lambda ctx, m: None, node=node))
        elif kind == "show" and actors:
            system.make_visible(actors[idx % len(actors)], f"g/a{idx}")
        elif kind == "direct" and actors:
            system.send_to(actors[idx % len(actors)], ("m", idx))
        elif kind == "send":
            system.send(f"g/a{idx}", ("p", idx))
        elif kind == "broadcast":
            system.broadcast("g/**", ("b", idx))
        elif kind == "kill" and actors:
            target = actors[idx % len(actors)]
            system.coordinators[target.node].terminate_actor(target)
        elif kind == "run":
            system.run(max_events=40)
    system.run()
    tracer = system.tracer

    # DIRECT conservation: every direct send was delivered or dropped for
    # a counted reason (dead letter; no crashes in this workload).
    direct_out = tracer.delivered[Mode.DIRECT] + tracer.dropped["dead_letter"]
    assert tracer.sent[Mode.DIRECT] <= direct_out + tracer.dropped["node_down"]

    # SEND conservation: one delivery per send, except those still parked.
    suspended_now, _persistent_now = _parked(system)
    sends_settled = tracer.sent[Mode.SEND] + tracer.sent[Mode.BROADCAST]
    # Parked messages were counted suspended exactly once each.
    assert tracer.suspended_count >= suspended_now
    # Every released suspension ended in >= 1 delivery or a drop.
    assert tracer.released_count <= tracer.suspended_count

    # Global sanity: nothing remains in flight at quiescence.
    assert not system.in_flight
    assert system.idle


@given(st.integers(1, 30), st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_broadcast_delivers_to_every_visible_member(n_messages, seed):
    """With a fully registered group and no failures, broadcast delivery
    count is exactly members x messages."""
    system = ActorSpaceSystem(topology=Topology.lan(N_NODES), seed=seed)
    members = 4
    for i in range(members):
        addr = system.create_actor(lambda ctx, m: None, node=i % N_NODES)
        system.make_visible(addr, f"grp/m{i}")
    system.run()
    for i in range(n_messages):
        system.broadcast("grp/*", i)
    system.run()
    assert system.tracer.delivered[Mode.BROADCAST] == members * n_messages
    assert system.tracer.dropped.total() == 0


@given(st.integers(1, 40), st.floats(0.0, 0.6), st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_lossy_transport_still_delivers_everything(n, loss, seed):
    """Eventual delivery survives any sub-unity loss rate."""
    system = ActorSpaceSystem(topology=Topology.lan(2), seed=seed, loss=loss)
    got = []
    addr = system.create_actor(lambda ctx, m: got.append(m.payload), node=1)
    for i in range(n):
        system.send_to(addr, i)
    system.run()
    assert sorted(got) == list(range(n))
