"""Integration: full multi-node scenarios exercising the whole stack."""

from repro.core.actor import Behavior
from repro.core.messages import Destination
from repro.runtime.network import LinkKind, Topology
from repro.runtime.system import ActorSpaceSystem


class Collector(Behavior):
    def __init__(self):
        self.items = []

    def receive(self, ctx, message):
        self.items.append(message.payload)


class TestRequestReplyPipeline:
    def test_three_stage_pipeline_across_nodes(self):
        """client -> parser -> worker -> client, all pattern-addressed."""
        system = ActorSpaceSystem(topology=Topology.lan(3), seed=1)
        results = Collector()
        results_addr = system.create_actor(results, node=0)

        def worker(ctx, message):
            op, value, reply = message.payload
            ctx.send_to(reply, ("result", value * 2))

        def parser(ctx, message):
            text, reply = message.payload
            ctx.send("stage/worker", ("compute", int(text), reply))

        w = system.create_actor(worker, node=2)
        p = system.create_actor(parser, node=1)
        system.make_visible(w, "stage/worker")
        system.make_visible(p, "stage/parser")
        system.run()
        system.send("stage/parser", ("21", results_addr))
        system.run()
        assert results.items == [("result", 42)]


class TestNestedSpacesScenario:
    def _build_wan(self):
        """Two LANs; each has a local pool inside a global 'regions' space."""
        system = ActorSpaceSystem(topology=Topology.wan(2, 2), seed=3)
        regions = system.create_space(attributes="regions")
        east = system.create_space()
        west = system.create_space()
        system.run()
        system.make_visible(east, "east", regions)
        system.make_visible(west, "west", regions)
        pools = {"east": east, "west": west}
        workers = {"east": [], "west": []}
        for region, base in (("east", 0), ("west", 2)):
            for i in range(2):
                c = Collector()
                addr = system.create_actor(c, node=base + i, space=pools[region])
                system.make_visible(addr, f"w{i}", pools[region])
                workers[region].append(c)
        system.run()
        return system, regions, workers

    def test_structured_pattern_reaches_nested_actor(self):
        system, regions, workers = self._build_wan()
        system.broadcast(Destination("east/**", regions), "east-only")
        system.run()
        assert all(c.items == ["east-only"] for c in workers["east"])
        assert all(c.items == [] for c in workers["west"])

    def test_global_broadcast_reaches_both_regions(self):
        system, regions, workers = self._build_wan()
        system.broadcast(Destination("*/w0", regions), "leaders")
        system.run()
        assert workers["east"][0].items == ["leaders"]
        assert workers["west"][0].items == ["leaders"]
        assert workers["east"][1].items == []

    def test_localized_traffic_avoids_wan(self):
        """Section 6: distribution localized within a LAN stays off WAN links."""
        system, regions, workers = self._build_wan()
        system.run()
        system.tracer.hops.clear()
        # A node-0 actor sends within its own LAN's pool only.
        east_space = None
        d = system.directory_of(0)
        for entry in d.space(regions).space_entries():
            if "east" in {str(a) for a in entry.attributes}:
                east_space = entry.target
        sender_done = []

        def sender(ctx, message):
            ctx.send(Destination("w0", east_space), "local-job")
            sender_done.append(True)

        s = system.create_actor(sender, node=0)
        system.send_to(s, "go")
        system.run()
        assert system.tracer.hops.get(LinkKind.WAN, 0) == 0


class TestChurn:
    def test_workers_join_and_leave_under_load(self):
        system = ActorSpaceSystem(topology=Topology.lan(4), seed=5)
        collectors = []

        def add_worker(i):
            c = Collector()
            addr = system.create_actor(c, node=i % 4)
            system.make_visible(addr, f"pool/w{i}")
            collectors.append((addr, c))

        for i in range(3):
            add_worker(i)
        system.run()
        for i in range(30):
            system.send("pool/*", ("req", i))
        # Mid-stream: drop one worker, add two more.
        system.events.schedule(0.05, lambda: system.make_invisible(
            collectors[0][0], system.root_space))
        system.events.schedule(0.06, lambda: add_worker(3))
        system.events.schedule(0.06, lambda: add_worker(4))
        system.run()
        for i in range(30, 60):
            system.send("pool/*", ("req", i))
        system.run()
        received = sum(len(c.items) for _a, c in collectors)
        assert received == 60  # nothing lost across the churn
        late = sum(len(c.items) for _a, c in collectors[3:])
        assert late > 0  # newcomers actually served


class TestOpenSystemRoles:
    def test_manager_reconfigures_service_without_client_changes(self):
        """Section 2's manager role: swap the backing server behind a
        pattern while clients keep sending."""
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=8)
        old, new = Collector(), Collector()
        old_addr = system.create_actor(old, node=0)
        new_addr = system.create_actor(new, node=1)
        system.make_visible(old_addr, "api/v1")
        system.run()
        system.send("api/*", "first")
        system.run()
        # Manager swaps implementations.
        system.make_invisible(old_addr, system.root_space)
        system.make_visible(new_addr, "api/v1")
        system.run()
        system.send("api/*", "second")
        system.run()
        assert old.items == ["first"]
        assert new.items == ["second"]
