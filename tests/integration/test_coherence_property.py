"""Property test: replica coherence under random operation schedules.

Hypothesis generates arbitrary interleavings of visibility operations
issued from arbitrary nodes (with crashes and recoveries thrown in), runs
the system to quiescence, and asserts the paper's section-7.3 guarantee:
all live replicas hold the same view — and a recovered replica catches
back up.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ActorSpaceError
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem

N_NODES = 4
N_ACTORS = 6

# An op is (kind, actor_idx, node_idx, attr_salt)
ops = st.lists(
    st.tuples(
        st.sampled_from(["show", "hide", "change", "run", "crash", "recover"]),
        st.integers(0, N_ACTORS - 1),
        st.integers(0, N_NODES - 1),
        st.integers(0, 3),
    ),
    min_size=1,
    max_size=40,
)


@given(ops, st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_replicas_coherent_under_random_schedules(schedule, seed):
    system = ActorSpaceSystem(topology=Topology.lan(N_NODES), seed=seed)
    actors = [
        system.create_actor(lambda ctx, m: None, node=i % N_NODES)
        for i in range(N_ACTORS)
    ]
    crashed: set[int] = set()
    for kind, actor_i, node_i, salt in schedule:
        # Never crash node 0: it hosts the sequencer and the replay source.
        node_i_safe = node_i if node_i != 0 else 1
        try:
            if kind == "show" and node_i not in crashed:
                system.make_visible(actors[actor_i], f"a/x{salt}", node=node_i)
            elif kind == "hide" and node_i not in crashed:
                system.make_invisible(actors[actor_i], node=node_i)
            elif kind == "change" and node_i not in crashed:
                system.change_attributes(
                    actors[actor_i], [f"a/y{salt}", "b"], node=node_i)
            elif kind == "run":
                system.run(max_events=50)
            elif kind == "crash":
                crashed.add(node_i_safe)
                system.crash_node(node_i_safe)
            elif kind == "recover" and node_i_safe in crashed:
                crashed.discard(node_i_safe)
                system.recover_node(node_i_safe)
        except ActorSpaceError:
            # change_attributes on a not-visible target etc.: legal rejections.
            pass
    # Recover everyone, drain, and demand convergence.
    for node in sorted(crashed):
        system.recover_node(node)
    system.run()
    assert system.replicas_coherent(), "replicas diverged"
    # Apply-counts may legitimately differ (ops fanned out while a node was
    # down are replayed exactly once; never twice): check no replica saw a
    # given sequence number twice by re-checking snapshots under a second
    # quiescent run.
    system.run()
    assert system.replicas_coherent()
