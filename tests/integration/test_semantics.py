"""Integration: paradigm semantics the paper specifies, end to end.

Covers: eventual delivery under loss, unordered broadcasts + the
sequenced-send recipe (section 5.3), suspension interplay (5.6), cycle
defences (5.7), and GC across a running system (5.5).
"""

import pytest

from repro.core.actor import Behavior
from repro.core.manager import CyclePolicy, SpaceManager
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


class Collector(Behavior):
    def __init__(self):
        self.items = []

    def receive(self, ctx, message):
        self.items.append(message.payload)


class TestEventualDelivery:
    def test_all_messages_arrive_despite_loss(self):
        """Guaranteed eventual delivery (section 4) under 40% loss."""
        system = ActorSpaceSystem(topology=Topology.lan(3), seed=2, loss=0.4)
        c = Collector()
        addr = system.create_actor(c, node=2)
        for i in range(50):
            system.send_to(addr, i)
        system.run()
        assert sorted(c.items) == list(range(50))

    def test_loss_costs_latency_not_messages(self):
        def mean_latency(loss):
            system = ActorSpaceSystem(topology=Topology.lan(2), seed=2,
                                      loss=loss)
            c = Collector()
            addr = system.create_actor(c, node=1)
            for i in range(50):
                system.send_to(addr, i)
            system.run()
            return system.tracer.latency_stats()["mean"]

        assert mean_latency(0.5) > mean_latency(0.0)


class TestOrdering:
    def test_broadcast_order_not_guaranteed(self):
        """Two broadcasts may be seen in different orders by different
        receivers (section 5.3) — with jittered links this occurs."""
        orders = set()
        for seed in range(25):
            system = ActorSpaceSystem(topology=Topology.lan(4), seed=seed)
            receivers = [Collector() for _ in range(3)]
            for i, c in enumerate(receivers):
                addr = system.create_actor(c, node=i + 1)
                system.make_visible(addr, f"grp/m{i}")
            system.run()
            system.broadcast("grp/*", "A")
            system.broadcast("grp/*", "B")
            system.run()
            for c in receivers:
                orders.add(tuple(c.items))
        assert ("A", "B") in orders and ("B", "A") in orders

    def test_sequencer_actor_restores_total_order(self):
        """The paper's recipe: route broadcasts through one serializer
        actor to impose a global order on a group."""
        for seed in range(25):
            system = ActorSpaceSystem(topology=Topology.lan(4), seed=seed)
            receivers = [Collector() for _ in range(3)]
            for i, c in enumerate(receivers):
                addr = system.create_actor(c, node=i + 1)
                system.make_visible(addr, f"grp/m{i}")
            system.run()

            class Serializer(Behavior):
                def __init__(self):
                    self.seq = 0

                def receive(self, ctx, message):
                    ctx.broadcast("grp/*", (self.seq, message.payload))
                    self.seq += 1

            ser = system.create_actor(Serializer(), node=0)
            system.send_to(ser, "A")
            system.run()  # serialize: second submission after the first fan-out
            system.send_to(ser, "B")
            system.run()
            for c in receivers:
                assert [p for p in c.items] == [(0, "A"), (1, "B")]


class TestCycleDefences:
    def test_dag_policy_prevents_broadcast_storm(self):
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)
        s = system.create_space(attributes="outer")
        system.run()
        from repro.core.errors import VisibilityCycleError

        with pytest.raises(VisibilityCycleError):
            system.make_visible(s, "inner", s)

    def test_tagging_policy_drops_runaway_traces(self):
        factory = lambda: SpaceManager(cycles=CyclePolicy.TAGGING,
                                       max_forward_hops=2)
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=0,
                                  root_manager_factory=factory)
        c = Collector()
        addr = system.create_actor(c)
        system.make_visible(addr, "svc/x")
        system.run()
        # A normal send passes (trace short)...
        system.send("svc/*", "ok")
        system.run()
        assert c.items == ["ok"]

    def test_forwarding_loop_between_actors_trapped_by_hop_budget(self):
        """Two actors forwarding to each other's pattern forever: each
        resend is a fresh envelope, so the defence here is the fuel the
        driver controls — run() with max_events bounds the storm."""
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)

        def forwarder(other):
            def behavior(ctx, message):
                ctx.send(other, message.payload)
            return behavior

        a = system.create_actor(forwarder("loop/b"), node=0)
        b = system.create_actor(forwarder("loop/a"), node=1)
        system.make_visible(a, "loop/a")
        system.make_visible(b, "loop/b")
        system.run()
        system.send("loop/a", "hot-potato")
        system.run(max_events=500)
        assert not system.idle  # the loop is still alive — by design
        assert system.tracer.invocations <= 501


class TestGcDuringExecution:
    def test_completed_workers_are_collected_with_their_parent(self):
        """The acquaintance graph is conservative: a creator is assumed to
        remember its children, so they die together once the driver drops
        the parent."""
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)
        spawned = []

        def parent(ctx, message):
            for _ in range(5):
                child = ctx.create(lambda ctx2, m2: None)
                spawned.append(child)

        p = system.create_actor(parent)
        system.send_to(p, "spawn")
        system.run()
        # While the driver holds the parent, the children are pinned
        # through the (conservative) creator edge.
        pinned = system.collect_garbage(delete=False)
        assert not (set(spawned) & pinned.collected_actors)
        # Dropping the parent unpins the whole family.
        system.release(p)
        report = system.collect_garbage()
        assert p in report.collected_actors
        assert set(spawned) <= report.collected_actors

    def test_acquaintance_via_message_keeps_alive(self):
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)

        class Keeper(Behavior):
            def __init__(self):
                self.friend = None

            def receive(self, ctx, message):
                self.friend = message.payload  # stores the address

        keeper = Keeper()
        keeper_addr = system.create_actor(keeper)
        hidden = system.create_actor(lambda ctx, m: None)
        system.run()
        system.send_to(keeper_addr, hidden)  # address travels in a message
        system.run()
        system.release(hidden)
        report = system.collect_garbage()
        assert hidden not in report.collected_actors  # keeper knows it
