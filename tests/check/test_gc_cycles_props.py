"""Property tests: §5.7 acyclicity and §5.5 GC safety.

Randomized op sequences (seeded, so failures replay) against two
invariants the paper states flatly:

* no sequence of visibility operations ever creates a containment cycle
  (§5.7 — checked with :meth:`Directory.find_cycle`, an independent
  audit, not the ``would_cycle`` guard the runtime itself uses);
* garbage collection never collects an actor whose address is carried by
  a pending message — suspended, persistent, or dead-lettered (§5.5).
"""

import numpy as np
import pytest

from repro.core.errors import ActorSpaceError
from repro.core.gc import scan_addresses
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


def lan(nodes=3, seed=0, **kw):
    return ActorSpaceSystem(topology=Topology.lan(nodes), seed=seed, **kw)


ATOMS = ["svc", "db", "web", "img", "job"]


class TestNoVisibilityCycles:
    """§5.7: the visibility relation stays a DAG under arbitrary churn."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_op_sequences_stay_acyclic(self, seed):
        rng = np.random.default_rng(seed)
        system = lan(seed=seed)
        spaces = [system.root_space]
        for _ in range(4):
            spaces.append(system.create_space(node=int(rng.integers(0, 3))))
        system.run()
        for _ in range(60):
            kind = rng.choice(["vis", "invis", "chattr"])
            target = spaces[int(rng.integers(0, len(spaces)))]
            parent = spaces[int(rng.integers(0, len(spaces)))]
            attrs = "/".join(rng.choice(ATOMS)
                             for _ in range(int(rng.integers(1, 3))))
            try:
                if kind == "vis":
                    system.make_visible(target, attrs, parent)
                elif kind == "invis":
                    system.make_invisible(target, parent)
                else:
                    system.change_attributes(target, attrs, parent)
            except ActorSpaceError:
                pass  # rejected ops (cycles, unknown entries) are the point
            system.run()
            for coordinator in system.coordinators:
                cycle = coordinator.directory.find_cycle()
                assert cycle is None, (
                    f"seed {seed}: replica {coordinator.node_id} holds a "
                    f"containment cycle {cycle}")

    def test_find_cycle_detects_a_planted_cycle(self):
        """The auditor itself must not be vacuous: plant a cycle by
        bypassing the guard and confirm it is reported."""
        system = lan()
        s1 = system.create_space()
        s2 = system.create_space()
        system.make_visible(s1, "outer")          # root -> s1
        system.make_visible(s2, "inner", s1)      # s1 -> s2
        system.run()
        directory = system.coordinators[0].directory
        # Forge s2 -> s1 directly in the registry, dodging would_cycle.
        record = directory.space(s2)
        record.register(s1, ["forged"])
        cycle = directory.find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert s1 in cycle and s2 in cycle


class TestGcNeverCollectsPinnedActors:
    """§5.5: pending messages pin every address they carry."""

    @pytest.mark.parametrize("seed", range(6))
    def test_parked_message_refs_survive_random_gc(self, seed):
        rng = np.random.default_rng(100 + seed)
        system = lan(seed=seed)
        actors = []
        for i in range(6):
            addr = system.create_actor(lambda ctx, m: None,
                                       node=int(rng.integers(0, 3)))
            system.release(addr)  # collectible unless §5.5 pins it
            actors.append(addr)
        # A couple of visible actors so some sends match and some park.
        for addr in actors[:2]:
            system.make_visible(addr, "svc/" + str(addr.node))
        system.run()
        for _ in range(10):
            ref = actors[int(rng.integers(0, len(actors)))]
            pattern = rng.choice(["svc/*", "void/*"])
            system.send(str(pattern), {"ref": ref},
                        node=int(rng.integers(0, 3)))
        system.run()
        pinned = set()
        for coordinator in system.coordinators:
            for envelope in coordinator.suspended:
                pinned.update(scan_addresses(envelope.message.payload))
            for envelope, _done in coordinator.persistent:
                pinned.update(scan_addresses(envelope.message.payload))
        report = system.collect_garbage(delete=False)
        collected = set(report.collected_actors)
        assert not pinned & collected, (
            f"seed {seed}: GC would collect actors referenced from parked "
            f"messages: {pinned & collected}")

    def test_dead_letter_refs_survive_gc(self):
        """Addresses inside dead letters pin their referents too."""
        system = lan()
        target = system.create_actor(lambda ctx, m: None, node=2)
        ref = system.create_actor(lambda ctx, m: None, node=1)
        system.release(target)
        system.release(ref)
        system.run()
        system.crash_node(2)
        system.send_to(target, {"ref": ref})
        system.run()
        assert len(system.dead_letters) == 1
        report = system.collect_garbage(delete=False)
        collected = set(report.collected_actors)
        assert target not in collected  # the letter's destination
        assert ref not in collected     # the address in its payload

    def test_unpinned_actor_is_still_collectible(self):
        """The invariant must not be satisfied vacuously."""
        system = lan()
        addr = system.create_actor(lambda ctx, m: None)
        system.release(addr)
        system.run()
        report = system.collect_garbage(delete=False)
        assert addr in set(report.collected_actors)
