"""Regression tests: shrunk traces for divergences the oracle found.

Each trace here is the minimal command sequence that exercised a real
runtime bug (fixed in the self-healing-delivery work); the conformance
oracle replays them on every run, so reintroducing any of the bugs
diverges again immediately.
"""

from repro.check import Scenario, check_scenario
from repro.runtime.network import LatencyModel, Topology
from repro.runtime.system import ActorSpaceSystem


def conforms(scenario: Scenario) -> None:
    report = check_scenario(scenario)
    assert report.ok, report.summary() + "".join(
        f"\n  {d}" for d in report.divergences)


class TestShrunkTraces:
    def test_recovery_unmask_releases_parked_send(self):
        """Lifting a quarantine mask at recovery must recheck parked mail.

        Shrunk from the divergence that motivated the recheck in
        ``recover_node``: a send parks because its only match sits on a
        confirmed-down node; without the recheck it stays parked forever
        after the node returns.
        """
        conforms(Scenario(
            nodes=2, bus="sequencer", seed=1, unmatched="suspend",
            commands=[
                {"op": "actor", "name": "a0", "node": 1},
                {"op": "vis", "target": "a0", "attrs": ["svc"],
                 "space": "ROOT", "node": 0},
                {"op": "detector", "duration": 4.0},
                {"op": "crash", "node": 1},
                {"op": "send", "pattern": "svc", "space": None,
                 "space_pattern": None, "node": 0, "msg": 0, "ref": None},
                {"op": "recover", "node": 1},
                {"op": "settle"},
            ]))

    def test_gc_keeps_actor_referenced_by_parked_message(self):
        """GC must pin actors referenced from suspended messages (§5.5).

        Shrunk from the divergence behind the suspended/persistent pin
        scan in ``collect_garbage``: the parked message's ``ref`` payload
        is the only thing keeping ``a0`` reachable.
        """
        conforms(Scenario(
            nodes=1, bus="sequencer", seed=2, unmatched="suspend",
            commands=[
                {"op": "actor", "name": "a0", "node": 0},
                {"op": "release", "target": "a0"},
                {"op": "send", "pattern": "nomatch", "space": None,
                 "space_pattern": None, "node": 0, "msg": 0, "ref": "a0"},
                {"op": "gc"},
            ]))

    def test_crashed_origin_park_set_is_frozen(self):
        """A crashed coordinator must not release its park set (§5.6).

        Shrunk from generated seed 23: a visibility op lands while the
        parked send's origin node is down; the release must wait for the
        origin's recovery replay, not happen at op-apply time.
        """
        conforms(Scenario(
            nodes=2, bus="sequencer", seed=23, unmatched="suspend",
            commands=[
                {"op": "actor", "name": "a0", "node": 0},
                {"op": "send", "pattern": "late", "space": None,
                 "space_pattern": None, "node": 1, "msg": 0, "ref": None},
                {"op": "detector", "duration": 4.0},
                {"op": "crash", "node": 1},
                {"op": "vis", "target": "a0", "attrs": ["late"],
                 "space": "ROOT", "node": 0},
                {"op": "recover", "node": 1},
                {"op": "settle"},
            ]))


class TestRecoveryResume:
    def test_recovery_then_resume_stays_conformant(self):
        """A recovered replica must *resume* the order, not restart it.

        Shrunk from the durability drill: churn lands while node 1 is
        down, node 1 recovers via state transfer, then continues issuing
        its own ops — the resumed origin numbering has to extend the
        pre-crash sequence or the oracle sees a ghost re-registration.
        """
        conforms(Scenario(
            nodes=2, bus="sequencer", seed=9, unmatched="suspend",
            commands=[
                {"op": "actor", "name": "a0", "node": 1},
                {"op": "vis", "target": "a0", "attrs": ["pre"],
                 "space": "ROOT", "node": 1},
                {"op": "detector", "duration": 4.0},
                {"op": "crash", "node": 1},
                {"op": "actor", "name": "a1", "node": 0},
                {"op": "vis", "target": "a1", "attrs": ["during"],
                 "space": "ROOT", "node": 0},
                {"op": "recover", "node": 1},
                {"op": "actor", "name": "a2", "node": 1},
                {"op": "vis", "target": "a2", "attrs": ["post"],
                 "space": "ROOT", "node": 1},
                {"op": "settle"},
            ]))

    def test_crash_cycle_log_passes_offline_oracle(self, tmp_path):
        """What a crash/recover cycle persists must replay as history.

        Bridges the live harness and the durability layer: the same
        churn as above runs with a store attached, and the bytes left on
        disk are handed to the *offline* oracle (``check_recovered``) —
        so recovery-then-resume is checked twice, once live and once
        from its own persisted log.
        """
        from repro.check.logcheck import check_recovered
        from repro.store import NodeStore
        from repro.store.node_store import load_data_dir

        system = ActorSpaceSystem(topology=Topology.lan(2), seed=9)
        store = NodeStore(str(tmp_path))
        system.bus.store = store
        pre = system.create_actor(lambda ctx, m: None, node=1)
        system.make_visible(pre, "pre", node=1)
        system.run()
        system.crash_node(1)
        during = system.create_actor(lambda ctx, m: None, node=0)
        system.make_visible(during, "during", node=0)
        system.run()
        system.recover_node(1)
        post = system.create_actor(lambda ctx, m: None, node=1)
        system.make_visible(post, "post", node=1)
        system.run()
        assert system.replicas_coherent()
        store.close()

        recovered = load_data_dir(str(tmp_path))
        assert recovered.report.clean
        assert len(recovered.ops) == len(system.bus.log)
        assert check_recovered(recovered) == []


class TestMailboxPumpRestart:
    def test_backlog_accepted_before_crash_is_processed_after_recovery(self):
        """Processing events swallowed during a crash must restart.

        Direct runtime check for the pump-restart loop at the end of
        ``recover_node``: mail delivered before the crash sits in the
        mailbox; the scheduled processing event fires while ``crashed``
        is set and is dropped, so recovery must reschedule it.
        """
        system = ActorSpaceSystem(
            topology=Topology.lan(2), seed=0, processing_delay=0.5,
            latency_model=LatencyModel(local=0.1, lan=0.1, wan=0.1,
                                       jitter=0.0))
        got = []
        addr = system.create_actor(lambda ctx, m: got.append(m.payload),
                                   node=1)
        system.run()
        system.send_to(addr, "work")
        # Delivery lands at +0.1; processing is scheduled for +0.6.
        system.run(until=system.clock.now + 0.3)
        assert got == []
        system.crash_node(1)
        system.run()  # the processing event fires into a crashed node
        assert got == []
        system.recover_node(1)
        system.run()
        assert got == ["work"]
