"""Tests: the executable §5 reference model (`repro.check.model`).

The model is deliberately naive; these tests pin it against the core
implementation (pattern matching, residuals) and against the paper's
clauses directly (arbitration §5.3, GC §5.5, suspension §5.6, cycle
prevention §5.7), so a bug in the *oracle's* semantics cannot silently
absorb a bug in the runtime's.
"""

import numpy as np
import pytest

from repro.check.model import (
    ReferenceModel,
    naive_match,
    naive_residuals,
)
from repro.core.patterns import parse_pattern

ATOMS = ["svc", "db", "web", "img", "job", "aux"]
PATTERN_ATOMS = ATOMS + ["*", "**", "s*", "~d.*"]


def random_pattern(rng) -> str:
    n = int(rng.integers(1, 5))
    return "/".join(rng.choice(PATTERN_ATOMS) for _ in range(n))


def random_path(rng) -> tuple[str, ...]:
    n = int(rng.integers(1, 5))
    return tuple(rng.choice(ATOMS) for _ in range(n))


class TestNaiveMatchEquivalence:
    """The model's plain-recursion matcher must agree with the core."""

    def test_random_patterns_agree_with_core(self):
        rng = np.random.default_rng(7)
        for _ in range(500):
            pattern = parse_pattern(random_pattern(rng))
            path = random_path(rng)
            expected = pattern.matches("/".join(path))
            assert naive_match(pattern.matchers, path) == expected, (
                f"{pattern!r} vs {path}")

    def test_multi_wildcard_edges(self):
        cases = [
            ("**", ("svc",), True),
            ("**", ("svc", "db", "web"), True),
            ("**/db", ("db",), True),
            ("**/db", ("svc", "db"), True),
            ("**/db", ("db", "svc"), False),
            ("svc/**/db", ("svc", "db"), True),
            ("svc/**/db", ("svc", "x", "y", "db"), True),
            ("**/**", ("svc",), True),
            ("s*/*", ("svc", "db"), True),
            ("s*/*", ("db", "svc"), False),
            ("~d.*", ("db",), True),
            ("~d.*", ("svc",), False),
        ]
        for text, path, expected in cases:
            pattern = parse_pattern(text)
            assert naive_match(pattern.matchers, path) == expected, text

    def test_residuals_agree_with_core_after_prefix(self):
        rng = np.random.default_rng(11)
        for _ in range(300):
            pattern = parse_pattern(random_pattern(rng))
            prefix = random_path(rng)[: int(rng.integers(1, 3))]
            core = {r.matchers for r in pattern.after_prefix("/".join(prefix))}
            naive = set(naive_residuals(pattern.matchers, prefix))
            assert naive == core, f"{pattern!r} after {prefix}"


def model(nodes=2, unmatched="suspend"):
    return ReferenceModel(nodes=nodes, unmatched=unmatched, addr_key=lambda n: n)


class TestVisibilityOps:
    def test_add_space_and_resolution(self):
        m = model()
        m.add_actor("a0", 0)
        m.apply_ops([("make_visible", {"space": "ROOT", "target": "a0",
                                       "attrs": ["svc/db"]})],
                    choice_for=lambda msg: None)
        pattern = parse_pattern("svc/*")
        assert m.resolve_actors(pattern, "ROOT", origin_node=0) == {"a0"}
        assert m.resolve_actors(parse_pattern("web"), "ROOT", 0) == set()

    def test_cycle_rejected(self):
        m = model()
        m.note_space("s1", 0)
        m.note_space("s2", 0)
        ops = [
            ("add_space", {"name": "s1"}),
            ("add_space", {"name": "s2"}),
            ("make_visible", {"space": "s1", "target": "s2",
                              "attrs": ["inner"]}),
            # s1 inside s2 would close the loop: must be rejected (§5.7).
            ("make_visible", {"space": "s2", "target": "s1",
                              "attrs": ["outer"]}),
        ]
        m.apply_ops(ops, choice_for=lambda msg: None)
        assert m.reaches("s1", "s2")
        assert not m.reaches("s2", "s1")
        assert "s1" not in m.registries["s2"]

    def test_destroy_removes_entries_everywhere(self):
        m = model()
        m.note_space("s1", 0)
        m.add_actor("a0", 0)
        m.apply_ops([
            ("add_space", {"name": "s1"}),
            ("make_visible", {"space": "ROOT", "target": "s1",
                              "attrs": ["sub"]}),
            ("make_visible", {"space": "s1", "target": "a0",
                              "attrs": ["svc"]}),
            ("destroy_space", {"name": "s1"}),
        ], choice_for=lambda msg: None)
        assert "s1" not in m.registries
        assert "s1" not in m.registries["ROOT"]
        assert m.resolve_actors(parse_pattern("sub/svc"), "ROOT", 0) == set()


class TestDispatchAndSuspension:
    def test_send_arbitration_validates_membership(self):
        m = model()
        for name in ("a0", "a1"):
            m.add_actor(name, 0)
            m.apply_ops([("make_visible", {"space": "ROOT", "target": name,
                                           "attrs": ["svc"]})],
                        choice_for=lambda msg: None)
        cmd = {"op": "send", "pattern": "svc", "space": None,
               "space_pattern": None, "node": 0, "msg": 1, "ref": None}
        m.dispatch(cmd, choice_for=lambda msg: "a1")
        assert m.divergences == []
        assert m.delivered[(1, "a1")] == 1
        # A receiver outside the legal group is a §5.3 violation.
        m.dispatch(dict(cmd, msg=2), choice_for=lambda msg: "ghost")
        assert any("5.3" in d for d in m.divergences)

    def test_unmatched_send_parks_then_releases(self):
        m = model()
        m.add_actor("a0", 0)
        cmd = {"op": "send", "pattern": "late", "space": None,
               "space_pattern": None, "node": 0, "msg": 5, "ref": None}
        m.dispatch(cmd, choice_for=lambda msg: None)
        assert len(m.parked) == 1
        m.apply_ops([("make_visible", {"space": "ROOT", "target": "a0",
                                       "attrs": ["late"]})],
                    choice_for=lambda msg: "a0")
        assert m.parked == []
        assert m.delivered[(5, "a0")] == 1

    def test_discard_policy_drops(self):
        m = model(unmatched="discard")
        m.dispatch({"op": "send", "pattern": "none", "space": None,
                    "space_pattern": None, "node": 0, "msg": 9, "ref": None},
                   choice_for=lambda msg: None)
        assert m.parked == [] and not m.persistent

    def test_crashed_origin_parked_entries_freeze(self):
        """A crashed origin's park set is frozen until it recovers (§5.6)."""
        m = model()
        m.add_actor("a0", 0)
        m.dispatch({"op": "send", "pattern": "late", "space": None,
                    "space_pattern": None, "node": 1, "msg": 3, "ref": None},
                   choice_for=lambda msg: None)
        m.crash(1)
        m.apply_ops([("make_visible", {"space": "ROOT", "target": "a0",
                                       "attrs": ["late"]})],
                    choice_for=lambda msg: "a0")
        assert len(m.parked) == 1  # origin down: not released
        m.recover(1, choice_for=lambda msg: "a0")
        assert m.parked == []
        assert m.delivered[(3, "a0")] == 1


class TestGarbageCollection:
    def test_parked_ref_pins_actor(self):
        m = model()
        m.add_actor("a0", 0)
        m.release("a0")
        m.dispatch({"op": "send", "pattern": "none", "space": None,
                    "space_pattern": None, "node": 0, "msg": 1, "ref": "a0"},
                   choice_for=lambda msg: None)
        dead_actors, dead_spaces = m.gc_report()
        assert "a0" not in dead_actors

    def test_unreferenced_invisible_actor_collected(self):
        m = model()
        m.add_actor("a0", 0)
        m.release("a0")
        dead_actors, _ = m.gc_report()
        assert "a0" in dead_actors

    def test_visible_actor_survives(self):
        m = model()
        m.add_actor("a0", 0)
        m.release("a0")
        m.apply_ops([("make_visible", {"space": "ROOT", "target": "a0",
                                       "attrs": ["svc"]})],
                    choice_for=lambda msg: None)
        dead_actors, _ = m.gc_report()
        assert "a0" not in dead_actors
