"""Tests: schedule control — conflict pruning, tiebreakers, exploration."""

from repro.check.schedule import (
    Explorer,
    RandomTieBreaker,
    ScriptedTieBreaker,
    conflicting,
)
from repro.runtime.events import EventQueue


class TestConflictClassifier:
    def test_untagged_assumed_conflicting(self):
        assert conflicting([None, ("deliver", "a")])
        assert conflicting([None, None])

    def test_deliveries_to_same_target_conflict(self):
        assert conflicting([("deliver", "a"), ("process", "a")])
        assert conflicting([("deliver", "a"), ("deliver", "a")])

    def test_deliveries_to_different_targets_commute(self):
        assert not conflicting([("deliver", "a"), ("deliver", "b")])
        assert not conflicting([("process", "a"), ("deliver", "b")])

    def test_bus_arrival_races_conflict(self):
        assert conflicting([("bus_seq",), ("bus_seq",)])
        assert conflicting([("bus_token",), ("bus_token",)])

    def test_detector_vs_bus_conflicts(self):
        assert conflicting([("detector",), ("bus", 1)])

    def test_unrelated_tags_commute(self):
        assert not conflicting([("bus", 0), ("bus", 1)])
        assert not conflicting([("deliver", "a"), ("bus_ctl",)])


class TestScriptedTieBreaker:
    def test_records_trail_and_defaults_fifo(self):
        breaker = ScriptedTieBreaker([1])
        tags = [("deliver", "a"), ("deliver", "a"), ("deliver", "a")]
        assert breaker.choose(tags) == 1  # scripted
        assert breaker.choose(tags) == 0  # prefix exhausted: FIFO
        assert breaker.trail == [(3, 1), (3, 0)]

    def test_out_of_range_decision_clamps(self):
        breaker = ScriptedTieBreaker([99])
        assert breaker.choose([None, None]) == 0

    def test_commuting_sites_skip_the_script(self):
        breaker = ScriptedTieBreaker([1])
        assert breaker.choose([("deliver", "a"), ("deliver", "b")]) == 0
        assert breaker.trail == []  # never consumed the decision


class TestRandomTieBreaker:
    def test_deterministic_per_seed(self):
        tags = [None, None, None]
        a = [RandomTieBreaker(5).choose(tags) for _ in range(20)]
        b = [RandomTieBreaker(5).choose(tags) for _ in range(20)]
        assert a == b

    def test_counts_decisions_only_at_conflicts(self):
        breaker = RandomTieBreaker(0)
        breaker.choose([("deliver", "a"), ("deliver", "b")])
        assert breaker.decisions == 0
        breaker.choose([None, None])
        assert breaker.decisions == 1


class FakeReport:
    def __init__(self, ok):
        self.ok = ok


class TestExplorer:
    def test_explores_all_orders_of_one_site(self):
        schedules = []

        def run(breaker):
            # One conflict site with 3 options.
            chosen = breaker.choose([None, None, None])
            schedules.append(chosen)
            return FakeReport(ok=True)

        explorer = Explorer(run, max_schedules=10)
        failing, ran = explorer.explore()
        assert failing is None
        assert sorted(schedules) == [0, 1, 2]
        assert ran == 3

    def test_finds_the_buggy_order(self):
        def run(breaker):
            first = breaker.choose([None, None])
            second = breaker.choose([None, None])
            return FakeReport(ok=not (first == 1 and second == 1))

        explorer = Explorer(run, max_schedules=16)
        failing, _ran = explorer.explore()
        assert failing is not None
        assert failing.schedule_decisions == [1, 1]
        # The recorded decisions replay the failure exactly.
        replay = ScriptedTieBreaker(failing.schedule_decisions)
        assert run(replay).ok is False

    def test_respects_budget(self):
        def run(breaker):
            for _ in range(4):
                breaker.choose([None, None])
            return FakeReport(ok=True)

        explorer = Explorer(run, max_schedules=5)
        failing, ran = explorer.explore()
        assert failing is None
        assert ran == 5

    def test_deadline_stops_early(self):
        calls = []

        def run(breaker):
            calls.append(1)
            breaker.choose([None, None])
            return FakeReport(ok=True)

        explorer = Explorer(run, max_schedules=50,
                            deadline=lambda: len(calls) >= 2)
        explorer.explore()
        assert len(calls) <= 3


class TestEventQueueTiebreaker:
    def test_fifo_without_tiebreaker(self):
        queue = EventQueue()
        order = []
        for i in range(3):
            queue.schedule(1.0, lambda i=i: order.append(i), tag=None)
        while (entry := queue.pop()) is not None:
            entry[1]()
        assert order == [0, 1, 2]

    def test_tiebreaker_reorders_tied_events(self):
        queue = EventQueue()
        order = []
        for i in range(3):
            queue.schedule(1.0, lambda i=i: order.append(i), tag=None)
        queue.tiebreaker = ScriptedTieBreaker([2, 1])
        while (entry := queue.pop()) is not None:
            entry[1]()
        assert order == [2, 1, 0]

    def test_tiebreaker_never_crosses_time_or_priority(self):
        queue = EventQueue()
        order = []
        queue.schedule(2.0, lambda: order.append("late"), tag=None)
        queue.schedule(1.0, lambda: order.append("hi"), priority=0, tag=None)
        queue.schedule(1.0, lambda: order.append("lo"), priority=1, tag=None)
        queue.tiebreaker = ScriptedTieBreaker([1, 1, 1])
        while (entry := queue.pop()) is not None:
            entry[1]()
        assert order == ["hi", "lo", "late"]
