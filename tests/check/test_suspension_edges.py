"""Tests: §5.6 suspension edge cases.

The awkward corners of unmatched-message handling: releases driven by
``change_attributes`` (not just new registrations), ordering guarantees
when several parked messages release at once, persistent broadcasts
reaching late joiners, and park sets surviving a crash/recover cycle.
"""

from repro.check import Scenario, check_scenario
from repro.core.manager import SpaceManager, UnmatchedPolicy
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


def lan(nodes=2, seed=0, **kw):
    return ActorSpaceSystem(topology=Topology.lan(nodes), seed=seed, **kw)


def conforms(scenario: Scenario) -> None:
    report = check_scenario(scenario)
    assert report.ok, report.summary() + "".join(
        f"\n  {d}" for d in report.divergences)


class TestChangeAttributesRelease:
    def test_parked_message_matchable_only_via_change_attributes(self):
        """The only route to a match is renaming an existing entry."""
        system = lan()
        got = []
        addr = system.create_actor(lambda ctx, m: got.append(m.payload))
        system.make_visible(addr, "old/name")
        system.run()
        system.send("new/*", "finally")
        system.run()
        assert got == []  # parked: nothing matches new/*
        assert system.coordinators[0].suspended
        system.change_attributes(addr, "new/name", system.root_space)
        system.run()
        assert got == ["finally"]
        assert not system.coordinators[0].suspended

    def test_change_attributes_release_conforms(self):
        conforms(Scenario(
            nodes=1, bus="sequencer", seed=0, unmatched="suspend",
            commands=[
                {"op": "actor", "name": "a0", "node": 0},
                {"op": "vis", "target": "a0", "attrs": ["old"],
                 "space": "ROOT", "node": 0},
                {"op": "send", "pattern": "new", "space": None,
                 "space_pattern": None, "node": 0, "msg": 0, "ref": None},
                {"op": "chattr", "target": "a0", "attrs": ["new"],
                 "space": "ROOT", "node": 0},
                {"op": "settle"},
            ]))

    def test_change_attributes_can_also_unmatch_future_sends(self):
        """Renaming away from the pattern parks subsequent sends."""
        system = lan()
        got = []
        addr = system.create_actor(lambda ctx, m: got.append(m.payload))
        system.make_visible(addr, "svc")
        system.run()
        system.change_attributes(addr, "other", system.root_space)
        system.run()
        system.send("svc", "late")
        system.run()
        assert got == []
        assert system.coordinators[0].suspended


class TestBroadcastReleaseOrdering:
    def test_parked_sends_release_in_park_order(self):
        """Two parked messages for the same future match keep FIFO order."""
        system = lan()
        got = []
        addr = system.create_actor(lambda ctx, m: got.append(m.payload))
        system.run()
        system.send("late/*", "first")
        system.send("late/*", "second")
        system.run()
        assert got == []
        system.make_visible(addr, "late/svc")
        system.run()
        assert got == ["first", "second"]

    def test_persistent_broadcast_reaches_late_joiners_once(self):
        """A persistent broadcast delivers to each matcher exactly once."""
        system = lan(root_manager_factory=lambda: SpaceManager(
            unmatched=UnmatchedPolicy.PERSISTENT))
        got = []

        def listener(tag):
            return lambda ctx, m: got.append((tag, m.payload))

        system.broadcast("room/**", "announce")
        system.run()
        assert got == []
        early = system.create_actor(listener("early"))
        system.make_visible(early, "room/early")
        system.run()
        assert got == [("early", "announce")]
        late = system.create_actor(listener("late"), node=1)
        system.make_visible(late, "room/late")
        system.run()
        # The early listener must not hear the broadcast again.
        assert got == [("early", "announce"), ("late", "announce")]

    def test_persistent_broadcast_conforms(self):
        conforms(Scenario(
            nodes=2, bus="sequencer", seed=0, unmatched="persistent",
            commands=[
                {"op": "bcast", "pattern": "room/**", "space": None,
                 "space_pattern": None, "node": 0, "msg": 0, "ref": None},
                {"op": "actor", "name": "a0", "node": 0},
                {"op": "vis", "target": "a0", "attrs": ["room/one"],
                 "space": "ROOT", "node": 0},
                {"op": "actor", "name": "a1", "node": 1},
                {"op": "vis", "target": "a1", "attrs": ["room/two"],
                 "space": "ROOT", "node": 1},
                {"op": "settle"},
            ]))


class TestParkSetAcrossCrashRecover:
    def test_park_set_survives_origin_crash(self):
        """Messages parked at a coordinator outlive its crash (§5.6).

        The park set is durable state: after the origin crashes and
        recovers, a registration that matches must still release the
        message it parked before the failure.
        """
        system = lan(nodes=3)
        got = []
        addr = system.create_actor(lambda ctx, m: got.append(m.payload),
                                   node=0)
        system.run()
        system.send("svc/*", "kept", node=2)  # parks at coordinator 2
        system.run()
        assert system.coordinators[2].suspended
        system.crash_node(2)
        system.run()
        system.recover_node(2)
        system.run()
        assert system.coordinators[2].suspended  # still parked
        system.make_visible(addr, "svc/a")
        system.run()
        assert got == ["kept"]

    def test_registration_during_crash_releases_at_recovery_replay(self):
        """A match registered while the origin is down releases on replay."""
        system = lan(nodes=3)
        got = []
        addr = system.create_actor(lambda ctx, m: got.append(m.payload),
                                   node=0)
        system.run()
        system.send("svc/*", "replayed", node=2)
        system.run()
        system.crash_node(2)
        system.make_visible(addr, "svc/a")  # applied everywhere but node 2
        system.run()
        assert got == []  # only node 2 holds the parked message
        system.recover_node(2)  # bus replay re-applies the registration
        system.run()
        assert got == ["replayed"]

    def test_park_set_across_crash_recover_conforms(self):
        conforms(Scenario(
            nodes=3, bus="token-ring", seed=0, unmatched="suspend",
            commands=[
                {"op": "actor", "name": "a0", "node": 0},
                {"op": "send", "pattern": "svc", "space": None,
                 "space_pattern": None, "node": 2, "msg": 0, "ref": None},
                {"op": "detector", "duration": 4.0},
                {"op": "crash", "node": 2},
                {"op": "vis", "target": "a0", "attrs": ["svc"],
                 "space": "ROOT", "node": 0},
                {"op": "recover", "node": 2},
                {"op": "settle"},
            ]))
