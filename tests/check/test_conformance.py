"""Tests: the conformance oracle end-to-end.

Clean sweeps must stay clean; injected bugs must be caught AND shrunk to
small replayable traces — the harness's own acceptance test (a checker
that can't catch a planted bug proves nothing).
"""

import json

import pytest

from repro.check import check_scenario, generate_scenario
from repro.check.cli import run_check
from repro.check.inject import INJECTIONS
from repro.check.schedule import RandomTieBreaker
from repro.check.shrink import shrink_scenario


class TestCleanSweep:
    @pytest.mark.parametrize("seed", [0, 1, 2, 4, 7])
    def test_generated_scenarios_conform(self, seed):
        report = check_scenario(generate_scenario(seed))
        assert report.ok, report.summary() + "".join(
            f"\n  {d}" for d in report.divergences)

    @pytest.mark.parametrize("seed", [3, 23])
    def test_crash_recover_scenarios_conform(self, seed):
        scenario = generate_scenario(seed)
        assert any(c["op"] == "crash" for c in scenario.commands)
        report = check_scenario(scenario)
        assert report.ok, report.summary() + "".join(
            f"\n  {d}" for d in report.divergences)
        assert report.crashes >= 1

    def test_random_walk_schedules_conform(self):
        scenario = generate_scenario(3)
        for walk in range(3):
            report = check_scenario(scenario,
                                    tiebreaker=RandomTieBreaker(walk))
            assert report.ok, report.summary()


def first_divergence(inject, seeds):
    """The first generated scenario the injected bug diverges on."""
    for seed in seeds:
        scenario = generate_scenario(seed)
        report = check_scenario(scenario, inject=inject)
        if not report.ok:
            return scenario, report
    raise AssertionError("injected bug never caught")


class TestInjectedBugs:
    def test_arbitration_bug_caught_and_shrunk(self):
        inject = INJECTIONS["arbitration-stale"]
        scenario, report = first_divergence(inject, range(30, 40))
        assert any("5.3" in d or "arbitration" in d
                   for d in map(str, report.divergences))
        shrunk, _checks = shrink_scenario(
            scenario, lambda s: check_scenario(s, inject=inject))
        assert len(shrunk) <= 10
        assert not check_scenario(shrunk, inject=inject).ok
        # The shrunk trace is clean on the unbroken runtime.
        assert check_scenario(shrunk).ok

    def test_stale_resolution_bug_caught_and_shrunk(self):
        inject = INJECTIONS["stale-resolution"]
        scenario, report = first_divergence(inject, range(0, 10))
        shrunk, _checks = shrink_scenario(
            scenario, lambda s: check_scenario(s, inject=inject))
        assert len(shrunk) <= 10
        assert not check_scenario(shrunk, inject=inject).ok
        assert check_scenario(shrunk).ok

    def test_injection_teardown_restores_runtime(self):
        inject = INJECTIONS["arbitration-stale"]
        scenario, _report = first_divergence(inject, range(30, 40))
        # After the injected run tears down, the same scenario is clean.
        assert check_scenario(scenario).ok


class TestCheckCommand:
    def test_clean_sweep_exits_zero(self, capsys):
        assert run_check(["--seeds", "4"]) == 0
        out = capsys.readouterr().out
        assert "0 divergences" in out

    def test_injected_sweep_exits_one_and_writes_artifact(self, tmp_path,
                                                          capsys):
        code = run_check(["--seeds", "10", "--seed", "30",
                          "--inject", "arbitration-stale",
                          "--out", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "DIVERGENCE" in out and "shrunk" in out
        artifacts = list(tmp_path.glob("conformance-*.repro.json"))
        assert len(artifacts) == 1
        artifact = json.loads(artifacts[0].read_text())
        assert artifact["inject"] == "arbitration-stale"
        assert len(artifact["scenario"]["commands"]) <= 10
        assert artifact["divergences"]

        # Replay reproduces the failure (the artifact records the injection).
        assert run_check(["--replay", str(artifacts[0])]) == 1
        # Without the recorded injection the trace is clean.
        artifact["inject"] = None
        clean = tmp_path / "clean.repro.json"
        clean.write_text(json.dumps(artifact))
        assert run_check(["--replay", str(clean)]) == 0

    def test_budget_bounds_the_sweep(self, capsys):
        assert run_check(["--seeds", "500", "--budget", "2"]) in (0, 1)
        out = capsys.readouterr().out
        assert "budget exhausted" in out or "0 divergences" in out

    def test_bad_replay_path_exits_two(self, capsys):
        assert run_check(["--replay", "/no/such/file.json"]) == 2

    def test_main_module_wires_check(self, capsys):
        from repro.__main__ import main
        assert main(["check", "--seeds", "1"]) == 0
        assert "conformance" in capsys.readouterr().out
