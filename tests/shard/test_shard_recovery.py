"""Regression: per-shard disk replay, scoped corruption, offline merge.

Satellite of the sharding PR: ``Bus.replay_to``'s disk fallback (grown
in the durability PR for the single global log) must work *per shard
namespace* — each shard replays from its own ``shard-K`` store, and a
corrupted shard store degrades only that shard's replay instead of
blocking the whole recovery.
"""

import zlib

from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.shard.merge import merge_shard_logs, shard_dirs
from repro.store import NodeStore

N_SHARDS = 4


def atoms_spread():
    found = {}
    i = 0
    while len(found) < N_SHARDS:
        atom = f"fam{i}"
        found.setdefault(zlib.crc32(atom.encode()) % N_SHARDS, atom)
        i += 1
    return [found[k] for k in range(N_SHARDS)]


def noop(ctx, message):
    return None


def build(tmp_path, seed=0):
    system = ActorSpaceSystem(topology=Topology.lan(2), seed=seed,
                              shards=N_SHARDS)
    system.bus.attach_store(lambda k: NodeStore(str(tmp_path / f"shard-{k}")))
    return system


def close_stores(system):
    for inner in system.bus.shards.values():
        inner.store.close()


def workload(system, atoms, ops_per_space=5):
    spaces, actors = [], []
    for atom in atoms:
        spaces.append(system.create_space(node=0, attributes=atom))
        actors.append(system.create_actor(noop, node=0))
    system.run()
    for space, actor, atom in zip(spaces, actors, atoms):
        for j in range(ops_per_space):
            system.make_visible(actor, f"{atom}/v{j}", space, node=0)
    system.run()
    return spaces, actors


class TestPerShardDiskReplay:
    def test_fresh_process_replays_every_shard_from_disk(self, tmp_path):
        atoms = atoms_spread()
        system = build(tmp_path)
        workload(system, atoms)
        expected = system.directory_of(1).snapshot()
        per_shard_ops = {k: len(b.log) for k, b in system.bus.shards.items()}
        assert all(n > 0 for n in per_shard_ops.values()), per_shard_ops
        close_stores(system)

        # A fresh incarnation with empty in-memory logs and a total
        # outage: every shard must come back from its own namespace.
        system2 = build(tmp_path)
        system2.crash_node(0)
        system2.crash_node(1)
        count = system2.bus.replay_to(1, {k: 0 for k in range(N_SHARDS)})
        assert count == sum(per_shard_ops.values())
        assert system2.bus.disk_replays == N_SHARDS
        system2.coordinators[1].crashed = False
        system2.run()
        assert system2.directory_of(1).snapshot() == expected
        close_stores(system2)

    def test_cursors_scope_the_replay_per_shard(self, tmp_path):
        atoms = atoms_spread()
        system = build(tmp_path)
        workload(system, atoms)
        per_shard_ops = {k: len(b.log) for k, b in system.bus.shards.items()}
        system.crash_node(0)
        system.crash_node(1)
        # Pretend the replica already applied everything except the last
        # op of shard 2: only that one op replays.
        cursors = dict(per_shard_ops)
        cursors[2] -= 1
        assert system.bus.replay_to(1, cursors) == 1
        close_stores(system)

    def test_corrupted_shard_store_degrades_only_that_shard(self, tmp_path):
        atoms = atoms_spread()
        system = build(tmp_path)
        workload(system, atoms)
        per_shard_ops = {k: len(b.log) for k, b in system.bus.shards.items()}
        close_stores(system)

        # Trash shard 2's persisted log: overwrite every segment with
        # garbage that parses as no record at all.
        corrupted = 0
        for seg in (tmp_path / "shard-2" / "log").glob("seg-*.log"):
            seg.write_bytes(b"\xde\xad\xbe\xef" * 64)
            corrupted += 1
        assert corrupted > 0

        system2 = build(tmp_path)
        system2.crash_node(0)
        system2.crash_node(1)
        # No exception: the corrupted namespace yields nothing, the other
        # shards replay in full.
        count = system2.bus.replay_to(1, {k: 0 for k in range(N_SHARDS)})
        healthy = sum(n for k, n in per_shard_ops.items() if k != 2)
        assert count == healthy
        system2.coordinators[1].crashed = False
        system2.run()
        # One disk replay per shard still ran — the corrupted namespace
        # contributed zero ops but did not abort the others.
        assert system2.bus.disk_replays == N_SHARDS
        close_stores(system2)


class TestOfflineMerge:
    def test_shard_dirs_discovers_namespaces(self, tmp_path):
        atoms = atoms_spread()
        system = build(tmp_path)
        workload(system, atoms)
        close_stores(system)
        found = shard_dirs(str(tmp_path))
        assert sorted(found) == list(range(N_SHARDS))

    def test_unsharded_dir_maps_to_shard_zero(self, tmp_path):
        assert shard_dirs(str(tmp_path)) == {0: str(tmp_path)}

    def test_merge_is_a_linear_extension_of_every_shard(self, tmp_path):
        atoms = atoms_spread()
        system = build(tmp_path)
        workload(system, atoms)
        total = sum(len(b.log) for b in system.bus.shards.values())
        close_stores(system)
        merged = merge_shard_logs(str(tmp_path))
        assert len(merged) == total
        # Ticks are globally unique (one shared counter) and the merge
        # preserves each shard's internal seq order.
        ticks = [tick for _shard, _seq, tick, _op in merged]
        assert ticks == sorted(ticks)
        per_shard_seqs = {}
        for shard, seq, _tick, _op in merged:
            per_shard_seqs.setdefault(shard, []).append(seq)
        for shard, seqs in per_shard_seqs.items():
            assert seqs == sorted(seqs), (shard, seqs)
