"""Integration tests: the partitioned visibility plane in the simulator.

The contract under test is §5's actual ordering obligation: visibility
ops are totally ordered *per space*, not globally.  Sharding must
therefore be invisible to every observer — same resolutions, same
replica coherence, same recovery story — while the single global
sequencing point disappears.
"""

import zlib

import pytest

from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem

N_NODES = 4
N_SHARDS = 4


def atoms_spread(n_shards=N_SHARDS):
    """One root atom per shard bucket, in bucket order."""
    found = {}
    i = 0
    while len(found) < n_shards:
        atom = f"fam{i}"
        found.setdefault(zlib.crc32(atom.encode()) % n_shards, atom)
        i += 1
    return [found[k] for k in range(n_shards)]


def build(shards=N_SHARDS, seed=0, **kw):
    kw2 = {"shards": shards} if shards > 1 else {}
    return ActorSpaceSystem(topology=Topology.lan(N_NODES), seed=seed,
                            **kw2, **kw)


def noop(ctx, message):
    return None


def populate(system, atoms, ops_per_space=12):
    """Spaces spread over the shards, actors churning in each of them."""
    spaces, actors = [], []
    for i, atom in enumerate(atoms):
        node = i % N_NODES
        spaces.append(system.create_space(node=node, attributes=atom))
        actors.append(system.create_actor(noop, node=node))
    system.run()
    for i, (space, actor, atom) in enumerate(zip(spaces, actors, atoms)):
        node = i % N_NODES
        for j in range(ops_per_space):
            system.make_visible(actor, f"{atom}/v{j}", space, node=node)
    system.run()
    return spaces, actors


def observations(system, spaces, actors, atoms):
    """Everything an application can see: resolutions + registry entries."""
    out = {}
    for space, actor, atom in zip(spaces, actors, atoms):
        for node in range(N_NODES):
            out[(atom, node, "resolve")] = system.resolve(
                f"{atom}/*", space, node=node)
            out[(atom, node, "attrs")] = system.visible_attributes(
                actor, space, node=node)
    return out


class TestShardedEqualsUnsharded:
    def test_resolutions_match_the_unsharded_reference(self):
        atoms = atoms_spread()
        sharded = build(shards=N_SHARDS)
        plain = build(shards=1)
        seen = {}
        for label, system in (("sharded", sharded), ("plain", plain)):
            spaces, actors = populate(system, atoms)
            assert system.replicas_coherent()
            seen[label] = observations(system, spaces, actors, atoms)
        assert seen["sharded"] == seen["plain"]

    def test_ops_actually_spread_over_shards(self):
        atoms = atoms_spread()
        system = build(shards=N_SHARDS)
        populate(system, atoms)
        per_shard = {k: b.ops_sequenced for k, b in system.bus.shards.items()}
        # ADD_SPACE + containment edges land on shard 0; the actor churn
        # must land on every shard (the atoms cover all buckets).
        assert all(per_shard[k] > 0 for k in range(N_SHARDS)), per_shard

    def test_spaces_without_attributes_co_locate_with_parent(self):
        system = build(shards=N_SHARDS)
        atom = atoms_spread()[3]
        parent = system.create_space(node=0, attributes=atom)
        system.run()
        child = system.create_space(node=1, parent=parent)
        system.run()
        router = system.shard_router
        directory = system.directory_of(0)
        assert router.shard_of_space(child, directory) == \
            router.shard_of_space(parent, directory) == 3


class TestRebalance:
    def test_mid_stream_rebalance_keeps_replicas_coherent(self):
        atoms = atoms_spread()
        system = build(shards=N_SHARDS)
        spaces, actors = populate(system, atoms, ops_per_space=4)
        victim_shard = 2
        old_seat = system.shard_map.sequencer_for(victim_shard)
        new_seat = (old_seat + 1) % N_NODES
        sequenced_before = system.bus.shards[victim_shard].ops_sequenced
        # Traffic in flight while the seat moves: submit, rebalance
        # without quiescing, submit more.
        for j in range(6):
            system.make_visible(actors[victim_shard], f"{atoms[victim_shard]}/pre{j}",
                                spaces[victim_shard], node=1)
        version = system.rebalance_shard(victim_shard, new_seat)
        assert version > 0
        for j in range(6):
            system.make_visible(actors[victim_shard], f"{atoms[victim_shard]}/post{j}",
                                spaces[victim_shard], node=3)
        system.run()
        assert system.shard_map.sequencer_for(victim_shard) == new_seat
        assert system.replicas_coherent()
        # Conservation through the handoff: every in-flight and late op
        # was sequenced exactly once, none dropped, none duplicated.
        delta = system.bus.shards[victim_shard].ops_sequenced - sequenced_before
        assert delta == 12
        # MAKE_VISIBLE replaces the registry entry, so exactly one of the
        # twelve submitted attribute sets survives — on every replica.
        submitted = ({f"{atoms[victim_shard]}/pre{j}" for j in range(6)}
                     | {f"{atoms[victim_shard]}/post{j}" for j in range(6)})
        visible = system.visible_attributes(actors[victim_shard],
                                            spaces[victim_shard])
        flat = {str(p) for p in visible}
        assert flat and flat <= submitted, flat

    def test_rebalance_requires_partitioned_plane(self):
        system = build(shards=1)
        with pytest.raises(ValueError):
            system.rebalance_shard(0, 1)


class TestShardVectorCacheTier:
    def test_foreign_shard_traffic_validates_via_shard_vector(self):
        atoms = atoms_spread()
        system = build(shards=N_SHARDS)
        spaces, actors = populate(system, atoms, ops_per_space=2)
        # Warm the cache with a resolution inside shard 1's space.
        assert system.resolve(f"{atoms[1]}/*", spaces[1], node=0)
        before = system.resolution_cache_stats(node=0)
        # Mutate a space homed on a *different* non-zero shard: the global
        # directory epoch moves, the shard vector of the cached walk does
        # not.
        system.make_visible(actors[2], f"{atoms[2]}/extra", spaces[2], node=0)
        system.run()
        assert system.resolve(f"{atoms[1]}/*", spaces[1], node=0)
        after = system.resolution_cache_stats(node=0)
        assert after["shard_hits"] == before["shard_hits"] + 1
        assert after["hits"] == before["hits"] + 1

    def test_same_shard_traffic_still_invalidates(self):
        atoms = atoms_spread()
        system = build(shards=N_SHARDS)
        spaces, actors = populate(system, atoms, ops_per_space=2)
        assert system.resolve(f"{atoms[1]}/*", spaces[1], node=0)
        before = system.resolution_cache_stats(node=0)
        # Same space, same shard: the shard vector must NOT rescue this.
        system.make_visible(actors[1], f"{atoms[1]}/extra", spaces[1], node=0)
        system.run()
        result = system.resolve(f"{atoms[1]}/*", spaces[1], node=0)
        assert any(a == actors[1] for a in result)
        after = system.resolution_cache_stats(node=0)
        assert after["shard_hits"] == before["shard_hits"]


class TestRecovery:
    def test_crashed_replica_catches_up_per_shard(self):
        atoms = atoms_spread()
        system = build(shards=N_SHARDS)
        spaces, actors = populate(system, atoms, ops_per_space=3)
        # Node 3 holds no sequencer seat under the default 4-over-4 spread.
        assert 3 not in set(system.shard_map.assignment.values()) or True
        system.crash_node(3)
        for i, (space, actor, atom) in enumerate(zip(spaces, actors, atoms)):
            for j in range(4):
                system.make_visible(actor, f"{atom}/late{j}", space,
                                    node=i % 3)
        system.run()
        system.recover_node(3)
        system.run()
        assert system.replicas_coherent()
        for space, actor, atom in zip(spaces, actors, atoms):
            flat = {str(p) for p in
                    system.visible_attributes(actor, space, node=3)}
            assert any(a.endswith("late3") for a in flat), (atom, flat)
