"""Unit tests for the shard map and router: the pure partition logic.

Everything here is deterministic arithmetic — no runtime, no clocks —
because cross-process agreement is the whole point of the map: every
node must compute the same shard for the same space on every run.
"""

import zlib

import pytest

from repro.core.atoms import check_atom
from repro.runtime.bus import OpKind
from repro.shard.map import ShardMap
from repro.shard.router import ShardRouter


def atom_for_bucket(bucket: int, n: int) -> str:
    """Any atom whose crc32 lands on ``bucket`` mod ``n``."""
    i = 0
    while True:
        atom = f"a{i}"
        if zlib.crc32(atom.encode()) % n == bucket:
            return atom
        i += 1


class TestSpaceToShard:
    def test_owner_is_stable_content_hash(self):
        m = ShardMap(4)
        for atom in ("svc", "db", "web", "img"):
            expected = zlib.crc32(atom.encode("utf-8")) % 4
            assert m.owner_of(atom) == expected
            # Memoized second lookup agrees.
            assert m.owner_of(atom) == expected

    def test_owner_agrees_across_instances(self):
        a, b = ShardMap(8), ShardMap(8)
        for i in range(32):
            atom = check_atom(f"tenant{i}")
            assert a.owner_of(atom) == b.owner_of(atom)

    def test_precedence_root_atom_then_parent_then_address(self):
        m = ShardMap(4)
        atom = atom_for_bucket(3, 4)
        assert m.shard_for_space(root_atom=atom, parent_shard=1,
                                 address="x") == 3
        assert m.shard_for_space(parent_shard=1, address="x") == 1
        hashed = zlib.crc32(repr("x").encode("utf-8")) % 4
        assert m.shard_for_space(address="x") == hashed
        assert m.shard_for_space() == 0

    def test_single_shard_maps_everything_to_zero(self):
        m = ShardMap(1)
        assert all(m.owner_of(f"t{i}") == 0 for i in range(16))

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            ShardMap(0)


class TestShardToNode:
    def test_default_assignment_round_robins_nodes(self):
        m = ShardMap(4, nodes=[0, 1])
        assert m.assignment == {0: 0, 1: 1, 2: 0, 3: 1}
        assert m.sequencer_for(2) == 0

    def test_assign_bumps_version(self):
        m = ShardMap(4, nodes=[0, 1, 2])
        v0 = m.version
        v1 = m.assign(1, 2)
        assert v1 == v0 + 1 and m.sequencer_for(1) == 2
        with pytest.raises(ValueError):
            m.assign(9, 0)

    def test_gossip_applies_strictly_newer_only(self):
        m = ShardMap(4, nodes=[0, 1])
        m.assign(0, 1)  # version 1
        stale = {"n_shards": 4, "version": 1, "assignment": {"0": 0}}
        assert not m.apply_if_newer(stale)
        assert m.sequencer_for(0) == 1
        newer = {"n_shards": 4, "version": 5,
                 "assignment": {"0": 0, "1": 1, "2": 0, "3": 1}}
        assert m.apply_if_newer(newer)
        assert m.version == 5 and m.sequencer_for(0) == 0

    def test_gossip_rejects_mismatched_shard_count(self):
        m = ShardMap(4)
        assert not m.apply_if_newer(
            {"n_shards": 8, "version": 99, "assignment": {}})

    def test_manifest_round_trip(self):
        m = ShardMap(4, nodes=[0, 1, 2])
        m.assign(3, 2)
        clone = ShardMap.from_manifest(m.to_manifest())
        assert clone.n_shards == m.n_shards
        assert clone.assignment == m.assignment
        assert clone.version == m.version


class TestRouterRules:
    def test_topology_ops_pin_to_shard_zero(self):
        router = ShardRouter(ShardMap(4))
        assert router.shard_for_op(OpKind.ADD_SPACE, {}) == 0
        assert router.shard_for_op(OpKind.DESTROY_SPACE, {}) == 0

    def test_fanned_kinds(self):
        router = ShardRouter(ShardMap(4))
        assert router.is_fanned(OpKind.BIND_CAPABILITY)
        assert router.is_fanned(OpKind.PURGE)
        assert not router.is_fanned(OpKind.MAKE_VISIBLE)

    def test_new_space_hint_survives_until_directory_knows(self):
        router = ShardRouter(ShardMap(4))
        atom = atom_for_bucket(2, 4)
        shard = router.home_shard_for_new_space("addr-1", attributes=atom)
        assert shard == 2
        # Before any replica applies the ADD_SPACE, the origin-side hint
        # answers; after, the directory record would (no directory here).
        assert router.shard_of_space("addr-1") == 2

    def test_unknown_space_falls_back_to_address_hash(self):
        router = ShardRouter(ShardMap(4))
        expected = zlib.crc32(repr("addr-9").encode("utf-8")) % 4
        assert router.shard_of_space("addr-9") == expected
