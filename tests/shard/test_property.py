"""Property test: sharded resolution ≡ the unsharded reference.

Hypothesis drives the same randomized visibility schedule — shows,
hides, attribute changes, from arbitrary nodes, in windows that
interleave freely across spaces, with shard rebalances thrown mid-
sequence — through a 4-shard system and an unsharded reference system.
After quiescing, every observation an application could make (pattern
resolutions and registry entries, at every replica) must be identical:
sharding is an ordering refactor, not a semantic change.

Window discipline: within one window each space receives at most one
op.  Ops on *different* spaces commute (§5 orders per space only), so
the two systems may interleave a window's ops differently across their
different sequencer layouts and still converge to the same state —
which is exactly the equivalence being claimed.  Between windows the
systems quiesce, pinning the per-space op order itself.
"""

import zlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem

N_NODES = 4
N_SHARDS = 4
N_SPACES = 4
N_ACTORS = 4


def atoms_spread():
    found = {}
    i = 0
    while len(found) < N_SHARDS:
        atom = f"fam{i}"
        found.setdefault(zlib.crc32(atom.encode()) % N_SHARDS, atom)
        i += 1
    return [found[k] for k in range(N_SHARDS)]


ATOMS = atoms_spread()

# One op: (kind, actor, salt, node) targeted at the window's space.
op = st.tuples(
    st.sampled_from(["show", "hide", "change"]),
    st.integers(0, N_ACTORS - 1),
    st.integers(0, 3),
    st.integers(0, N_NODES - 1),
)

# A window maps space index -> op: at most one op per space, any spaces.
window = st.dictionaries(st.integers(0, N_SPACES - 1), op, min_size=1)

# A rebalance event moves one shard's seat to some node (4-shard side
# only; the reference has no seats to move).
rebalance = st.tuples(st.just("rebalance"),
                      st.integers(0, N_SHARDS - 1),
                      st.integers(0, N_NODES - 1))

schedule = st.lists(st.one_of(window, rebalance), min_size=1, max_size=12)


def run_schedule(system, plan, actors, spaces, sharded: bool):
    for step in plan:
        if isinstance(step, tuple) and step[0] == "rebalance":
            if sharded:
                _tag, shard, node = step
                system.rebalance_shard(shard, node)
            continue
        for space_i, (kind, actor_i, salt, node) in sorted(step.items()):
            actor, space, atom = actors[actor_i], spaces[space_i], ATOMS[space_i]
            if kind == "show":
                system.make_visible(actor, f"{atom}/x{salt}", space, node=node)
            elif kind == "hide":
                system.make_invisible(actor, space, node=node)
            else:
                system.change_attributes(actor, f"{atom}/y{salt}", space,
                                         node=node)
        system.run()
    system.run()


def observe(system, actors, spaces):
    out = {}
    for space_i, (space, atom) in enumerate(zip(spaces, ATOMS)):
        for node in range(N_NODES):
            out[(space_i, node, "resolve")] = system.resolve(
                f"{atom}/*", space, node=node)
            for actor_i, actor in enumerate(actors):
                out[(space_i, node, actor_i)] = system.visible_attributes(
                    actor, space, node=node)
    return out


def build(shards: int, seed: int):
    kw = {"shards": shards} if shards > 1 else {}
    system = ActorSpaceSystem(topology=Topology.lan(N_NODES), seed=seed, **kw)
    actors = [system.create_actor(lambda ctx, m: None, node=i % N_NODES)
              for i in range(N_ACTORS)]
    spaces = [system.create_space(node=i % N_NODES, attributes=atom)
              for i, atom in enumerate(ATOMS[:N_SPACES])]
    system.run()
    return system, actors, spaces


@given(schedule, st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_sharded_observations_equal_unsharded(plan, seed):
    results = {}
    for shards in (N_SHARDS, 1):
        system, actors, spaces = build(shards, seed)
        run_schedule(system, plan, actors, spaces, sharded=shards > 1)
        assert system.replicas_coherent()
        results[shards] = observe(system, actors, spaces)
    assert results[N_SHARDS] == results[1]


@given(schedule, st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_change_attributes_rejections_match(plan, seed):
    """Apply-time rejections (change on a hidden target) are part of the
    observable semantics too: both systems must reject the same ops.
    The per-window one-op-per-space discipline plus quiescing makes the
    registry state at each apply identical, so the rejection sets must
    coincide — tracked here through the op counters."""
    counts = {}
    for shards in (N_SHARDS, 1):
        system, actors, spaces = build(shards, seed)
        run_schedule(system, plan, actors, spaces, sharded=shards > 1)
        counts[shards] = system.bus.ops_sequenced
    assert counts[N_SHARDS] == counts[1]
