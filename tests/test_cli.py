"""Tests: the ``python -m repro`` command line, incl. the trace exporter."""

import json

from repro.__main__ import (
    EXAMPLES,
    EXPERIMENTS,
    examples_dir,
    experiments_drift,
    main,
)
from repro.runtime.eventlog import validate_chrome_trace


class TestBasicCommands:
    def test_help_exit_codes(self, capsys):
        assert main(["help"]) == 0
        assert main(["no-such-command"]) == 1

    def test_examples_listing(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        for name, _ in EXAMPLES:
            assert name in out

    def test_experiments_listing(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "E10" in out and "E17" in out

    def test_version(self, capsys):
        assert main(["version"]) == 0
        assert capsys.readouterr().out.strip()


class TestExperimentsDrift:
    def test_table_matches_benchmarks_on_disk(self):
        """CI drift check: EXPERIMENTS must mirror benchmarks/ exactly."""
        missing, untracked = experiments_drift()
        assert missing == [], f"EXPERIMENTS lists absent benchmarks: {missing}"
        assert untracked == [], (
            f"benchmark files not listed in EXPERIMENTS: {untracked}"
        )

    def test_table_shape(self):
        assert len(EXPERIMENTS) == 17
        assert all(len(row) == 4 for row in EXPERIMENTS)


class TestTraceCommand:
    def test_trace_resolves_bare_example_name(self, tmp_path, capsys):
        out_file = tmp_path / "quickstart.trace.json"
        assert main(["trace", "quickstart.py", "--out", str(out_file)]) == 0
        trace = json.loads(out_file.read_text())
        assert validate_chrome_trace(trace) == []
        phases = {r["ph"] for r in trace["traceEvents"]}
        assert {"M", "i", "X", "s", "f"} <= phases

    def test_trace_missing_example(self, capsys):
        assert main(["trace", "definitely-not-here.py"]) == 2

    def test_trace_needs_argument(self, capsys):
        assert main(["trace"]) == 2
        assert main(["trace", "--out"]) == 2

    def test_examples_dir_exists_and_lists_shipped_scripts(self):
        names = {p.name for p in examples_dir().glob("*.py")}
        for name, _ in EXAMPLES:
            assert name in names


class TestFaultInjectionFlags:
    def test_trace_with_crash_and_recover_schedule(self, tmp_path, capsys):
        out_file = tmp_path / "faulty.trace.json"
        assert main([
            "trace", "quickstart.py", "--out", str(out_file),
            "--crash", "0.5:1", "--recover", "2.0:1",
        ]) == 0
        trace = json.loads(out_file.read_text())
        assert validate_chrome_trace(trace) == []

    def test_crash_spec_must_be_time_colon_node(self, capsys):
        assert main(["trace", "quickstart.py", "--crash", "nonsense"]) == 2
        assert main(["trace", "quickstart.py", "--crash", "0.5"]) == 2
        assert main(["trace", "quickstart.py", "--crash", "x:1"]) == 2
        assert main(["trace", "quickstart.py", "--recover", "1:y"]) == 2

    def test_fault_flag_needs_value(self, capsys):
        assert main(["trace", "quickstart.py", "--crash"]) == 2
