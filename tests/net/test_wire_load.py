"""Hot-path wire tests: flush policy, bounded send queues, piggybacked
liveness, and the broadcast encode-once guarantee.

The flush-policy tests drive ``PeerHub._flush_loop`` against an
in-memory writer — no sockets — so each trigger (queue-empty, size
watermark, linger expiry) is exercised deterministically.  The liveness
and broadcast tests run real loopback hubs like the rest of the link
layer suite.
"""

import asyncio
import time

import pytest

import repro.net.peer as peer_module
from repro.net.cluster import _free_ports, loopback_available
from repro.net.codec import FrameDecoder, FrameKind, encode_frame
from repro.net.peer import PeerHub, PeerLink
from repro.net.runtime import maybe_install_uvloop

pytestmark = pytest.mark.skipif(
    not loopback_available(), reason="loopback TCP unavailable")


async def _poll(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        await asyncio.sleep(0.02)
    return False


class _FakeWriter:
    """Captures writes; quacks enough like a StreamWriter for the flusher."""

    def __init__(self):
        self.writes: list[bytes] = []
        self.closed = False

    def write(self, data):
        self.writes.append(bytes(data))

    async def drain(self):
        await asyncio.sleep(0)

    def is_closing(self):
        return self.closed


def _bench_link(hub):
    link = PeerLink(1, "node", None, _FakeWriter())
    hub.links[1] = link
    return link


def _frames(writer):
    """Flatten everything written (batched or bare) back to frames."""
    decoder = FrameDecoder()
    out = []
    for data in writer.writes:
        out.extend(decoder.feed(data))
    return out


def _quiet_hub(**kw):
    return PeerHub(0, {0: 1, 1: 2}, lambda *a: None, **kw)


# -- flush policy ----------------------------------------------------------------


def test_flush_on_queue_empty_writes_single_frame_bare():
    """One queued frame flushes immediately and without batch framing."""
    async def scenario():
        hub = _quiet_hub()
        link = _bench_link(hub)
        flusher = asyncio.ensure_future(hub._flush_loop(link))
        frame = encode_frame(FrameKind.HEARTBEAT, {"n": 1})
        assert hub.send(1, FrameKind.HEARTBEAT, {"n": 1})
        assert await _poll(lambda: link.writer.writes)
        assert link.writer.writes == [frame]
        assert hub.batches_out == 0 and link.queue_bytes == 0
        flusher.cancel()

    asyncio.run(scenario())


def test_backlog_coalesces_into_one_batch_write():
    """Frames queued while the flusher is busy leave in one BATCH frame."""
    async def scenario():
        hub = _quiet_hub()
        link = _bench_link(hub)
        payloads = [{"n": index} for index in range(5)]
        for payload in payloads:
            assert hub.send(1, FrameKind.HEARTBEAT, payload)
        # Flusher starts with a 5-frame backlog: one coalesced write.
        flusher = asyncio.ensure_future(hub._flush_loop(link))
        assert await _poll(lambda: link.writer.writes)
        assert len(link.writer.writes) == 1
        assert hub.batches_out == 1
        decoded = _frames(link.writer)
        assert [p for _k, p in decoded] == payloads  # FIFO preserved
        flusher.cancel()

    asyncio.run(scenario())


def test_size_watermark_splits_writes():
    """A backlog larger than batch_max_bytes flushes as multiple writes."""
    async def scenario():
        frame = encode_frame(FrameKind.HEARTBEAT, {"fill": "x" * 64})
        hub = _quiet_hub(batch_max_bytes=len(frame) * 2)
        link = _bench_link(hub)
        for index in range(6):
            assert hub.send(1, FrameKind.HEARTBEAT, {"fill": "x" * 64})
        flusher = asyncio.ensure_future(hub._flush_loop(link))
        assert await _poll(lambda: len(_frames(link.writer)) == 6)
        assert len(link.writer.writes) >= 3  # capped at ~2 frames per write
        flusher.cancel()

    asyncio.run(scenario())


def test_linger_delays_then_flushes():
    """With flush_delay set, a lone frame still leaves after the linger."""
    async def scenario():
        hub = _quiet_hub(flush_delay=0.05)
        link = _bench_link(hub)
        flusher = asyncio.ensure_future(hub._flush_loop(link))
        start = time.monotonic()
        assert hub.send(1, FrameKind.HEARTBEAT, {"n": 1})
        assert await _poll(lambda: link.writer.writes)
        assert time.monotonic() - start >= 0.04
        flusher.cancel()

    asyncio.run(scenario())


# -- bounded memory ---------------------------------------------------------------


def test_stalled_link_sheds_instead_of_growing():
    """With no flusher draining, the data queue is capped and sheds beyond it."""
    async def scenario():
        frame = encode_frame(FrameKind.ENVELOPE, {"fill": "x" * 256})
        hub = _quiet_hub(max_pending_bytes=len(frame) * 4)
        link = _bench_link(hub)
        results = [hub.send(1, FrameKind.ENVELOPE, {"fill": "x" * 256})
                   for _ in range(10)]
        assert results.count(True) == 4 and results.count(False) == 6
        assert link.queue_bytes <= hub.max_pending_bytes
        assert link.frames_shed == 6 and hub.frames_shed == 6
        snapshot = hub.metrics_snapshot()
        assert snapshot["frames_shed"] == 6
        assert snapshot["send_buffer_bytes"] == link.queue_bytes

    asyncio.run(scenario())


def test_saturated_data_queue_does_not_shed_liveness():
    """Regression: data saturation used to shed heartbeats too, so a
    live-but-stalled peer went silent and got falsely suspected.
    Control frames now ride a separate shed-exempt budget."""
    async def scenario():
        frame = encode_frame(FrameKind.ENVELOPE, {"fill": "x" * 256})
        hub = _quiet_hub(max_pending_bytes=len(frame) * 2)
        link = _bench_link(hub)
        # Saturate the data queue: further data frames shed...
        for _ in range(8):
            hub.send(1, FrameKind.ENVELOPE, {"fill": "x" * 256})
        assert link.frames_shed == 6
        # ...yet heartbeats are still accepted, on their own queue.
        assert hub.send(1, FrameKind.HEARTBEAT, {"n": 1})
        assert link.ctrl_queue and link.ctrl_bytes > 0
        assert link.frames_shed == 6  # unchanged by the heartbeat
        # The control budget itself is bounded too: a wedged socket
        # must not grow the control queue without limit.
        beacon = encode_frame(FrameKind.HEARTBEAT, {"n": 1})
        limit = hub.ctrl_pending_bytes // len(beacon) + 2
        results = [hub.send(1, FrameKind.HEARTBEAT, {"n": 1})
                   for _ in range(limit)]
        assert False in results
        assert link.ctrl_bytes <= hub.ctrl_pending_bytes
        snapshot = hub.metrics_snapshot()
        assert snapshot["ctrl_buffer_bytes"] == link.ctrl_bytes
        assert snapshot["send_buffer_bytes"] == link.queue_bytes

    asyncio.run(scenario())


# -- credit flow control ----------------------------------------------------------


def test_credit_window_pauses_data_and_control_still_flows():
    """An exhausted credit window pauses the flusher's data path —
    frames wait in the bounded queue instead of being shed — while
    control frames keep flowing; a CREDIT grant resumes data."""
    async def scenario():
        hub = _quiet_hub(credit_window=4)
        link = _bench_link(hub)
        flusher = asyncio.ensure_future(hub._flush_loop(link))
        for n in range(10):
            assert hub.send(1, FrameKind.ENVELOPE, {"n": n})

        def envelopes_out():
            return [p for k, p in _frames(link.writer)
                    if k == FrameKind.ENVELOPE]

        assert await _poll(lambda: len(envelopes_out()) == 4)
        await asyncio.sleep(0.05)
        assert len(envelopes_out()) == 4          # paused, not shed
        assert len(link.queue) == 6               # waiting, not dropped
        assert link.frames_shed == 0
        assert hub.credit_stalls == 1             # one episode, not per-poll
        # Control frames bypass the gate entirely.
        assert hub.send(1, FrameKind.HEARTBEAT, {"hb": True})
        assert await _poll(lambda: any(
            k == FrameKind.HEARTBEAT for k, _p in _frames(link.writer)))
        assert len(envelopes_out()) == 4
        # A grant wakes the flusher and releases exactly that much data.
        hub._on_credit(link, {"n": 4})
        assert await _poll(lambda: len(envelopes_out()) == 8)
        await asyncio.sleep(0.05)
        assert len(envelopes_out()) == 8
        # FIFO survived the pause.
        assert [p["n"] for p in envelopes_out()] == list(range(8))
        flusher.cancel()

    asyncio.run(scenario())


def test_receiver_grants_credit_at_half_window():
    """Over a real link, the receiver tops the sender's window back up
    every ``credit_window // 2`` consumed envelopes."""
    async def scenario():
        ports = dict(enumerate(_free_ports(2)))
        received = []
        a = PeerHub(0, ports, lambda *args: None, credit_window=8)
        b = PeerHub(1, ports, lambda src, kind, payload, link:
                    received.append(payload), credit_window=8)
        try:
            await a.start()
            await b.start()
            assert await _poll(lambda: 1 in a.links and 0 in b.links)
            for n in range(8):
                assert a.send(1, FrameKind.ENVELOPE, {"n": n})
            assert await _poll(lambda: len(received) == 8)
            # b consumed 8 envelopes = two half-windows -> two grants,
            # which restore a's window to full.
            assert await _poll(lambda: a.credit_grants_in >= 2)
            assert b.credit_grants_out >= 2
            assert a.data_credit[1] == 8
        finally:
            await a.stop()
            await b.stop()

    asyncio.run(scenario())


# -- piggybacked liveness ---------------------------------------------------------


def test_data_flow_suppresses_heartbeats_and_keeps_peer_live():
    """A busy link needs no beacons: data refreshes recency on the
    receiver, and the sender reports the peer as non-idle."""
    async def scenario():
        ports = dict(enumerate(_free_ports(2)))
        sink = []
        a = PeerHub(0, ports, lambda *args: None)
        b = PeerHub(1, ports, lambda src, kind, payload, link:
                    sink.append((src, kind)))
        try:
            await a.start()
            await b.start()
            assert await _poll(lambda: 1 in a.links and 0 in b.links)
            window = 0.1
            floor = time.monotonic()
            while time.monotonic() - floor < 3 * window:
                a.send(1, FrameKind.ENVELOPE, {"n": 1})
                # Data keeps flowing: node 1 never goes idle from 0's
                # point of view, so 0 would send it no explicit beacon.
                assert 1 not in a.idle_peers(window)
                await asyncio.sleep(window / 5)
            # No HEARTBEAT was ever sent, yet recency stayed fresh
            # throughout — strictly newer than the flood's start.
            assert all(kind != FrameKind.HEARTBEAT for _src, kind in sink)
            assert b.last_heard[0] > floor
            # Silence, and the link becomes beacon-eligible again.
            await asyncio.sleep(2 * window)
            assert 1 in a.idle_peers(window)
        finally:
            await a.stop()
            await b.stop()

    asyncio.run(scenario())


# -- broadcast encode-once ---------------------------------------------------------


def test_broadcast_encodes_payload_exactly_once(monkeypatch):
    """Regression: ``broadcast`` used to re-encode per link."""
    async def scenario():
        ports = dict(enumerate(_free_ports(3)))
        sink = []
        hubs = [PeerHub(i, ports,
                        lambda src, kind, payload, link, i=i:
                        sink.append((i, src, payload)))
                for i in range(3)]
        try:
            for hub in hubs:
                await hub.start()
            assert await _poll(
                lambda: all(len(h.links) == 2 for h in hubs))
            calls = []
            real_encode = peer_module.encode_frame

            def counting_encode(kind, payload=None):
                calls.append(kind)
                return real_encode(kind, payload)

            monkeypatch.setattr(peer_module, "encode_frame", counting_encode)
            fanout = hubs[0].broadcast(FrameKind.ENVELOPE, {"n": 7})
            assert fanout == 2
            assert len(calls) == 1  # one encode for two links
            assert await _poll(
                lambda: {(1, 0), (2, 0)} <=
                {(receiver, src) for receiver, src, _p in sink})
        finally:
            for hub in hubs:
                await hub.stop()

    asyncio.run(scenario())


# -- uvloop gate -------------------------------------------------------------------


def test_uvloop_gate_declines_gracefully(monkeypatch):
    """Absent uvloop (this container) or with REPRO_UVLOOP=0 the gate
    reports False instead of raising."""
    monkeypatch.setenv("REPRO_UVLOOP", "0")
    assert maybe_install_uvloop() is False
    monkeypatch.delenv("REPRO_UVLOOP", raising=False)
    assert maybe_install_uvloop() in (True, False)  # no ImportError leak
