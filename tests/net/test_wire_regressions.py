"""Regressions from the sharded-plane work: credit classes + link races.

Two wire bugs surfaced when per-shard traffic started riding the data
plane:

* the receiver granted credit back only for ENVELOPE frames while the
  sender debited its window for *every* data-class frame — a stream of
  ``SHARD_FWD``/``BUS_OP`` frames exhausted the window permanently and
  the link stalled forever;
* a late simultaneous dial re-registered the peer link and orphaned the
  frames queued on the losing link (credit grants wake only the
  registered link), deadlocking the stream at exactly one window.
"""

import asyncio
import time

import pytest

from repro.net.cluster import _free_ports, loopback_available
from repro.net.codec import FrameKind
from repro.net.peer import _DATA_KINDS, PeerHub, PeerLink

pytestmark = pytest.mark.skipif(
    not loopback_available(), reason="loopback TCP unavailable")


async def _poll(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        await asyncio.sleep(0.02)
    return False


def test_every_bus_frame_kind_is_data_class():
    """A shed BUS_OP is a hole in a replica's log; a shed SHARD_FWD is a
    lost visibility op.  All payload-bearing kinds must ride the
    credit-gated (and never silently shed) data plane."""
    assert FrameKind.ENVELOPE in _DATA_KINDS
    assert FrameKind.SHARD_FWD in _DATA_KINDS
    assert FrameKind.BUS_SUBMIT in _DATA_KINDS
    assert FrameKind.BUS_OP in _DATA_KINDS
    # Liveness and flow control stay control-class: they must cross even
    # while data is stalled.
    assert FrameKind.HEARTBEAT not in _DATA_KINDS
    assert FrameKind.CREDIT not in _DATA_KINDS


@pytest.mark.parametrize("kind", [FrameKind.SHARD_FWD, FrameKind.BUS_OP])
def test_non_envelope_data_frames_replenish_the_credit_window(kind):
    """Send far more data frames than the credit window: delivery past
    ``window`` proves the receiver granted credit back for this kind."""
    window = 8
    total = 10 * window

    async def scenario():
        ports = dict(enumerate(_free_ports(2)))
        got = []

        def on_frame(src, frame_kind, payload, link):
            got.append((src, frame_kind, payload))

        hubs = [PeerHub(i, ports, on_frame, credit_window=window)
                for i in range(2)]
        try:
            for hub in hubs:
                await hub.start()
            assert await _poll(lambda: all(len(h.links) == 1 for h in hubs))
            for i in range(total):
                assert hubs[0].send(1, kind, {"i": i})
            assert await _poll(
                lambda: sum(1 for _s, k, _p in got if k is kind) >= total), (
                f"stalled: {sum(1 for _s, k, _p in got if k is kind)}"
                f"/{total} delivered with window={window}")
            assert hubs[0].credit_stalls >= 1, (
                "window never exhausted: the test is not exercising credit")
        finally:
            for hub in hubs:
                await hub.stop()

    asyncio.run(scenario())


def test_duplicate_registration_migrates_queued_frames():
    """The losing link of a registration race hands its backlog to the
    winner instead of orphaning it."""

    async def scenario():
        hub = PeerHub(0, {0: 1, 1: 2}, lambda *a: None)
        loser = PeerLink(1, "node", None, None)
        loser.queue.extend([(b"data-frame", 0.0), (b"data-frame-2", 0.0)])
        loser.queue_bytes = 23
        loser.ctrl_queue.append((b"ctrl", 0.0))
        loser.ctrl_bytes = 4
        hub._register(loser)
        assert hub.links[1] is loser

        winner = PeerLink(1, "node", None, None)
        hub._register(winner)
        assert hub.links[1] is winner
        assert [f for f, _t in winner.queue] == [b"data-frame", b"data-frame-2"]
        assert winner.queue_bytes == 23
        assert [f for f, _t in winner.ctrl_queue] == [b"ctrl"]
        assert winner.ctrl_bytes == 4
        assert winner.wake.is_set()
        # The loser is drained and told to die; its flusher wakes to exit.
        assert loser.closing and not loser.queue and not loser.ctrl_queue
        assert loser.queue_bytes == 0 and loser.ctrl_bytes == 0
        assert loser.wake.is_set()

    asyncio.run(scenario())


def test_reregistration_resets_the_credit_window():
    """A fresh link restarts both sides of the flow-control ledger."""

    async def scenario():
        hub = PeerHub(0, {0: 1, 1: 2}, lambda *a: None, credit_window=16)
        first = PeerLink(1, "node", None, None)
        hub._register(first)
        hub.data_credit[1] = 3       # nearly exhausted
        hub.data_consumed[1] = 7     # grant pending
        replacement = PeerLink(1, "node", None, None)
        hub._register(replacement)
        assert hub.data_credit[1] == 16
        assert hub.data_consumed[1] == 0

    asyncio.run(scenario())
