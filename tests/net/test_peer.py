"""Link-layer tests: handshake, rejection, reconnect, pipelined frames.

These run real asyncio TCP over loopback (skipped where loopback cannot
bind).  Each test owns its event loop via ``asyncio.run`` — no plugin
dependency.
"""

import asyncio
import time
from collections import deque

import pytest

from repro.net.cluster import _free_ports, loopback_available
from repro.net.codec import (
    FrameDecoder,
    FrameKind,
    encode_frame,
    hello_payload,
)
from repro.net.peer import PeerHub

pytestmark = pytest.mark.skipif(
    not loopback_available(), reason="loopback TCP unavailable")


async def _poll(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        await asyncio.sleep(0.02)
    return False


def _hub(node, ports, sink, **kw):
    def on_frame(src, kind, payload, link):
        sink.append((node, src, kind, payload))
    return PeerHub(node, ports, on_frame, **kw)


def test_two_hubs_link_and_exchange_frames():
    async def scenario():
        ports = dict(enumerate(_free_ports(2)))
        sink = []
        hubs = [_hub(i, ports, sink) for i in range(2)]
        try:
            for hub in hubs:
                await hub.start()
            assert await _poll(lambda: all(len(h.links) == 1 for h in hubs))
            assert hubs[0].send(1, FrameKind.HEARTBEAT, {"node": 0})
            assert hubs[1].send(0, FrameKind.HEARTBEAT, {"node": 1})
            assert await _poll(lambda: len(sink) >= 2)
            got = {(receiver, src) for receiver, src, kind, _ in sink
                   if kind == FrameKind.HEARTBEAT}
            assert {(0, 1), (1, 0)} <= got
            # Receipt refreshed the heartbeat-recency oracle on both ends.
            assert 1 in hubs[0].last_heard and 0 in hubs[1].last_heard
        finally:
            for hub in hubs:
                await hub.stop()

    asyncio.run(scenario())


def test_cluster_id_mismatch_never_links():
    async def scenario():
        ports = dict(enumerate(_free_ports(2)))
        sink = []
        a = _hub(0, ports, sink, cluster_id="alpha")
        b = _hub(1, ports, sink, cluster_id="beta")
        try:
            await a.start()
            await b.start()
            assert await _poll(
                lambda: a.handshakes_rejected + b.handshakes_rejected >= 2,
                timeout=5.0)
            assert not a.links and not b.links
        finally:
            await a.stop()
            await b.stop()

    asyncio.run(scenario())


def test_frames_pipelined_behind_hello_are_not_lost():
    """Regression: traffic sharing a TCP segment with the handshake.

    A peer may write HELLO and its first real frames in one burst; the
    hub's handshake read must hand any surplus frames to the serve loop
    instead of discarding the decoder holding them.
    """
    async def scenario():
        ports = dict(enumerate(_free_ports(2)))
        sink = []
        hub = _hub(0, ports, sink)
        try:
            await hub.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", ports[0])
            burst = (
                encode_frame(FrameKind.HELLO,
                             hello_payload(1, "node", hub.cluster_id))
                + encode_frame(FrameKind.HEARTBEAT, {"n": 1})
                + encode_frame(FrameKind.CONTROL, {"cmd": "ping", "id": 7})
            )
            writer.write(burst)  # one write: frames share segments
            await writer.drain()
            assert await _poll(lambda: len(sink) >= 2)
            kinds = [kind for _, _, kind, _ in sink]
            assert kinds == [FrameKind.HEARTBEAT, FrameKind.CONTROL]
            writer.close()
        finally:
            await hub.stop()

    asyncio.run(scenario())


def test_handshake_read_keeps_surplus_frames():
    """The dial-side half of the same regression, tested at _read_one."""
    async def scenario():
        hub = _hub(0, {0: 1}, [])
        reader = asyncio.StreamReader()
        reader.feed_data(
            encode_frame(FrameKind.WELCOME, {"node": 1})
            + encode_frame(FrameKind.HEARTBEAT, {"n": 1}))
        reader.feed_eof()
        decoder, pending = FrameDecoder(), deque()
        first = await hub._read_one(reader, decoder, pending)
        assert first == (FrameKind.WELCOME, {"node": 1})
        assert list(pending) == [(FrameKind.HEARTBEAT, {"n": 1})]

    asyncio.run(scenario())


def test_dialer_reconnects_after_peer_restart():
    async def scenario():
        ports = dict(enumerate(_free_ports(2)))
        sink = []
        ups = []
        survivor = PeerHub(
            0, ports, lambda *a: None, on_peer_up=ups.append)
        restarted = _hub(1, ports, sink)
        try:
            await survivor.start()
            await restarted.start()
            assert await _poll(lambda: 1 in survivor.links)
            await restarted.stop()
            assert await _poll(lambda: 1 not in survivor.links)
            # Same identity, same port, new process: must be re-adopted
            # by the survivor's dialer without operator action.
            restarted = _hub(1, ports, sink)
            await restarted.start()
            assert await _poll(lambda: 1 in survivor.links, timeout=8.0)
            assert ups.count(1) >= 2
        finally:
            await survivor.stop()
            await restarted.stop()

    asyncio.run(scenario())


def test_graceful_stop_sends_bye():
    async def scenario():
        ports = dict(enumerate(_free_ports(2)))
        sink = []
        hubs = [_hub(i, ports, sink) for i in range(2)]
        try:
            for hub in hubs:
                await hub.start()
            assert await _poll(lambda: all(len(h.links) == 1 for h in hubs))
            await hubs[0].stop(drain=True)
            # BYE (not a reset) ends the link; peer unregisters cleanly.
            assert await _poll(lambda: 0 not in hubs[1].links)
        finally:
            for hub in hubs:
                await hub.stop()

    asyncio.run(scenario())
