"""End-to-end tests: real node subprocesses over loopback TCP.

Slowest tests in the tree (each spawns OS processes), so they stay
small: a 2-node pool run proving cross-process routing computes the
right answer, and one conformance seed proving the TCP cluster's
replicated directory matches the single-process oracle.  The heavier
3-node fault drills run in CI via ``python -m repro cluster``.
"""

import pytest

from repro.net.cluster import (
    LocalCluster,
    drive_process_pool,
    loopback_available,
    run_tcp_conformance,
)

pytestmark = pytest.mark.skipif(
    not loopback_available(), reason="loopback TCP unavailable")


def test_process_pool_computes_across_two_processes(tmp_path):
    cluster = LocalCluster(2, seed=3, out_dir=tmp_path)
    try:
        cluster.start()
        report = drive_process_pool(
            cluster, job_size=512, grain=64, workers_per_node=1,
            cost_per_item=0.0, drill=None, log=lambda text: None)
        assert report["first_run"]["correct"]
        assert report["workers"] == 2
        # The work genuinely crossed processes: every node hosts actors.
        for node in range(2):
            status = cluster.call(node, "status")
            assert status["actors"] >= 1
            assert status["links"] == [1 - node]
    finally:
        cluster.shutdown()


def test_tcp_cluster_matches_single_process_oracle(tmp_path):
    report = run_tcp_conformance(
        [0], nodes=2, ops=8, out_dir=tmp_path, log=lambda text: None)
    assert report["divergences"] == []
