"""End-to-end tests: real node subprocesses over loopback TCP.

Slowest tests in the tree (each spawns OS processes), so they stay
small: a 2-node pool run proving cross-process routing computes the
right answer, and one conformance seed proving the TCP cluster's
replicated directory matches the single-process oracle.  The heavier
3-node fault drills run in CI via ``python -m repro cluster``.
"""

import pytest

from repro.net.cluster import (
    LocalCluster,
    drive_process_pool,
    loopback_available,
    run_tcp_conformance,
)

pytestmark = pytest.mark.skipif(
    not loopback_available(), reason="loopback TCP unavailable")


def test_process_pool_computes_across_two_processes(tmp_path):
    cluster = LocalCluster(2, seed=3, out_dir=tmp_path)
    try:
        cluster.start()
        report = drive_process_pool(
            cluster, job_size=512, grain=64, workers_per_node=1,
            cost_per_item=0.0, drill=None, log=lambda text: None)
        assert report["first_run"]["correct"]
        assert report["workers"] == 2
        # The work genuinely crossed processes: every node hosts actors.
        for node in range(2):
            status = cluster.call(node, "status")
            assert status["actors"] >= 1
            assert status["links"] == [1 - node]
    finally:
        cluster.shutdown()


def test_tcp_cluster_matches_single_process_oracle(tmp_path):
    report = run_tcp_conformance(
        [0], nodes=2, ops=8, out_dir=tmp_path, log=lambda text: None)
    assert report["divergences"] == []


def test_closed_loop_pump_completes_and_batches(tmp_path):
    """The load generator's closed loop drains across two real processes
    and the hot path actually coalesces frames while doing it."""
    cluster = LocalCluster(2, seed=0, out_dir=tmp_path, trace=False)
    try:
        cluster.start()
        sink = cluster.call(
            1, "create_actor", behavior="load_sink", params={})["address"]
        pump = cluster.call(
            0, "create_actor", behavior="load_pump",
            params={"target": sink, "total": 300, "window": 32})["address"]
        cluster.call(0, "send_to", target=pump, payload=("go",))
        cluster.wait_until(
            lambda: cluster.call(0, "actor_state", address=pump,
                                 attrs=["done"])["done"],
            timeout=60, interval=0.05, what="closed loop drained")
        stats = cluster.call(0, "actor_state", address=pump,
                             attrs=["sent", "received", "throughput",
                                    "p50_ms", "p99_ms"])
        assert stats["sent"] == stats["received"] == 300
        assert stats["throughput"] > 0
        assert 0 < stats["p50_ms"] <= stats["p99_ms"]
        hub = cluster.call(0, "snapshot", events=False)["hub"]
        # Windowed load must have coalesced at least some writes, and
        # nothing was shed: the queue never hit its memory bound.
        assert hub["batches_out"] >= 1
        assert hub["frames_shed"] == 0
        assert hub["writes"] < hub["frames_out"]
    finally:
        cluster.shutdown()
