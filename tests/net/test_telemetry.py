"""Integration tests: the cluster observability plane end to end.

Real node processes over loopback TCP.  What these pin down:

* trace ids (``trace_id``/``parent_id``/``envelope_id``) survive the
  wire — a delivery on node B carries the ids minted by the send on
  node A;
* the telemetry collector's incremental scrape is honest (monotonic
  seqs, no duplicates) and its merged, clock-aligned timeline keeps
  every cross-node send strictly before its delivery;
* ``causal_chain`` over the merged log crosses node boundaries;
* the merged Chrome export passes the validator and contains cross-node
  flow arrows — the PR's acceptance criterion, as a test.
"""

from __future__ import annotations

import pytest

from repro.net.cluster import LocalCluster, TelemetryCollector, loopback_available
from repro.runtime.eventlog import EventLog, validate_chrome_trace

pytestmark = pytest.mark.skipif(
    not loopback_available(), reason="loopback sockets unavailable")


def _run_load(cluster: LocalCluster, *, pump_node: int, sink_node: int,
              total: int = 40, window: int = 8) -> None:
    sink = cluster.call(sink_node, "create_actor", behavior="load_sink",
                        params={})["address"]
    pump = cluster.call(pump_node, "create_actor", behavior="load_pump",
                        params={"target": sink, "total": total,
                                "window": window})["address"]
    cluster.call(pump_node, "send_to", target=pump, payload=("go",))
    cluster.wait_until(
        lambda: cluster.call(pump_node, "actor_state", address=pump,
                             attrs=["done"])["done"],
        timeout=60, interval=0.05, what="load drained")


def test_trace_ids_survive_tcp_round_trip(tmp_path):
    cluster = LocalCluster(2, seed=0, trace=True, out_dir=tmp_path)
    cluster.start()
    collector = TelemetryCollector.for_cluster(cluster)
    try:
        _run_load(cluster, pump_node=0, sink_node=1)
        collector.pull()
        collector.pull()  # second pull: exercises the since_seq resume

        # Incremental scrape honesty: per node, seqs unique + ascending.
        for node, events in collector.events.items():
            seqs = [e.seq for e in events]
            assert seqs == sorted(seqs)
            assert len(seqs) == len(set(seqs)), f"node {node} re-pulled events"

        sent_by_env = {e.envelope_id: e for e in collector.events[0]
                       if e.kind == "sent"}
        remote_deliveries = [
            e for e in collector.events[1]
            if e.kind == "delivered" and e.data.get("src_node") == 0]
        assert remote_deliveries, "no cross-node deliveries recorded"
        matched = 0
        for delivery in remote_deliveries:
            origin = sent_by_env.get(delivery.envelope_id)
            if origin is None:
                continue  # send evicted from node 0's ring before our pull
            matched += 1
            assert delivery.trace_id is not None
            assert delivery.trace_id == origin.trace_id
            assert delivery.parent_id == origin.parent_id
        assert matched > 0, "no delivery matched a surviving send event"

        # Merged timeline: clock alignment keeps cause before effect.
        merged = collector.merged_events()
        sent_at = {e.envelope_id: e.t for e in merged if e.kind == "sent"}
        checked = 0
        for e in merged:
            if e.kind != "delivered" or "src_node" not in e.data:
                continue
            if e.data["src_node"] == e.node or e.envelope_id not in sent_at:
                continue
            checked += 1
            assert sent_at[e.envelope_id] < e.t, (
                f"envelope {e.envelope_id}: delivered at {e.t} before "
                f"sent at {sent_at[e.envelope_id]} on the merged timeline")
        assert checked > 0

        # A causal chain on the merged log crosses the node boundary:
        # the sink's ack (delivered on node 0) chains back through the
        # request sent from node 0 and handled on node 1.
        log = EventLog.from_events(merged)
        env_nodes: dict[int, set[int]] = {}
        for e in merged:
            if e.envelope_id is not None:
                env_nodes.setdefault(e.envelope_id, set()).add(e.node)
        spanning = 0
        for e in merged:
            if (e.kind != "delivered" or e.data.get("src_node") != 1
                    or e.parent_id is None):
                continue
            chain = log.causal_chain(e.envelope_id)
            nodes = set().union(*(env_nodes.get(env, set()) for env in chain))
            if {0, 1} <= nodes:
                spanning += 1
        assert spanning > 0, "no causal chain spans both nodes"
    finally:
        collector.close()
        cluster.shutdown()


def test_merged_chrome_trace_has_cross_node_flows(tmp_path):
    """The PR acceptance criterion: 3 nodes, one merged valid Chrome
    trace, at least one flow arrow from a send on one node to a delivery
    on another, timestamps clock-aligned (send < deliver)."""
    cluster = LocalCluster(3, seed=0, trace=True, out_dir=tmp_path)
    cluster.start()
    collector = TelemetryCollector.for_cluster(cluster)
    try:
        _run_load(cluster, pump_node=0, sink_node=2, total=30, window=4)
        collector.drain()
        out = tmp_path / "cluster.trace.json"
        trace = collector.export_chrome(out)
        assert out.exists()
        assert validate_chrome_trace(trace) == []

        pairs: dict = {}
        for record in trace["traceEvents"]:
            if record.get("ph") in ("s", "f"):
                pairs.setdefault(record["id"], {})[record["ph"]] = record
        cross = [(p["s"], p["f"]) for p in pairs.values()
                 if len(p) == 2 and p["s"]["pid"] != p["f"]["pid"]]
        assert cross, "no cross-node flow binding in the merged trace"
        for start, finish in cross:
            assert start["ts"] < finish["ts"]
    finally:
        collector.close()
        cluster.shutdown()


def test_status_exposes_wire_counters_and_clock(tmp_path):
    cluster = LocalCluster(2, seed=0, trace=True, out_dir=tmp_path)
    cluster.start()
    try:
        _run_load(cluster, pump_node=0, sink_node=1, total=20, window=4)
        for node in (0, 1):
            status = cluster.call(node, "status")
            for key in ("frames_shed", "batches_in", "batches_out",
                        "heartbeats_suppressed", "clock"):
                assert key in status, f"status missing {key!r}"
            assert status["frames_shed"] == 0
            assert isinstance(status["clock"], dict)
        # The handshake alone guarantees at least the dialer holds a
        # clock sample for its peer.
        clocks = [cluster.call(n, "status")["clock"] for n in (0, 1)]
        assert any(c["peers"] for c in clocks), "no clock samples after handshake"

        telemetry = cluster.call(0, "telemetry", since_seq=0, max_events=10)
        assert telemetry["node"] == 0
        assert len(telemetry["events"]) <= 10
        assert telemetry["next_seq"] >= len(telemetry["events"])
        assert "stage_latency" in telemetry["hub"]
        for stage in ("send_queue", "decode", "deliver"):
            assert telemetry["hub"]["stage_latency"][stage]["count"] > 0
    finally:
        cluster.shutdown()
