"""Tests: NodeRuntime crash recovery from a data directory (no sockets).

A single-node runtime is its own sequencer: ops sequence, persist, and
apply synchronously in-process, so the full durability wiring — outbox
commit, snapshot, restart, snapshot+suffix replay, origin resync — is
testable without ever opening a socket or running ``serve``.
"""

from repro.net.runtime import NodeRuntime


def noop(ctx, message):
    pass


def make_runtime(data_dir, port=39741):
    return NodeRuntime(0, {0: port}, data_dir=str(data_dir), trace=False,
                       quiet=True)


def populate(runtime, tag, count=4):
    created = []
    for i in range(count):
        addr = runtime.coordinator.create_actor(
            noop, (), {}, host_space=runtime.root_space)
        runtime.coordinator.make_visible(
            addr, f"{tag}/worker{i}", runtime.root_space, None)
        created.append(addr)
    return created


class TestNodeRuntimeRecovery:
    def test_restart_recovers_directory_from_log(self, tmp_path):
        first = make_runtime(tmp_path)
        assert first.recovery is None  # nothing on disk yet
        populate(first, "gen1")
        before = first.coordinator.directory.snapshot()
        ops_before = len(first.bus.log)
        assert first.store.ops_appended == ops_before > 0
        first.store.close()  # SIGKILL stand-in: no snapshot written

        second = make_runtime(tmp_path)
        assert second.recovery is not None
        assert second.recovery["ops_replayed"] == ops_before
        assert second.recovery["records_dropped"] == 0
        assert second.coordinator.directory.snapshot() == before
        assert len(second.bus.log) == ops_before
        second.store.close()

    def test_restart_does_not_ghost_reregister(self, tmp_path):
        first = make_runtime(tmp_path)
        populate(first, "gen1")
        origin_seq = first.coordinator._next_origin_seq
        serial = first.coordinator.addresses._next_serial
        first.store.close()

        second = make_runtime(tmp_path)
        # The restarted incarnation continues minting where the previous
        # one stopped: no colliding origin seqs, no recycled addresses.
        assert second.coordinator._next_origin_seq >= origin_seq
        assert second.coordinator.addresses._next_serial >= serial
        fresh = populate(second, "gen2", count=1)[0]
        assert fresh.serial >= serial
        registry = second.coordinator.directory.space(second.root_space)
        assert fresh in registry
        second.store.close()

    def test_snapshot_plus_suffix_restart(self, tmp_path):
        first = make_runtime(tmp_path)
        populate(first, "gen1")
        first.store.close()

        # Recovery writes a fresh snapshot immediately, capping the next
        # restart's replay to the post-recovery suffix.
        second = make_runtime(tmp_path)
        snapshot_floor = second.store.latest_snapshot_seq
        assert snapshot_floor == second.coordinator._next_apply_seq
        populate(second, "gen2", count=2)
        expected = second.coordinator.directory.snapshot()
        total_ops = len(second.bus.log)
        second.store.close()

        third = make_runtime(tmp_path)
        assert third.recovery is not None
        assert third.recovery["snapshot_seq"] == snapshot_floor
        assert third.recovery["ops_replayed"] < total_ops  # suffix only
        assert third.coordinator.directory.snapshot() == expected
        third.store.close()

    def test_status_reports_store_and_recovery(self, tmp_path):
        first = make_runtime(tmp_path)
        populate(first, "gen1", count=1)
        status = first._ctl_status()
        assert status["store"]["ops_appended"] >= 1
        assert status["recovery"] is None
        first.store.close()

        second = make_runtime(tmp_path)
        status = second._ctl_status()
        assert status["recovery"]["ops_replayed"] >= 1
        assert status["store"]["fsync_policy"] == "commit"
        second.store.close()

    def test_storeless_runtime_unchanged(self, tmp_path):
        runtime = NodeRuntime(0, {0: 39742}, trace=False, quiet=True)
        assert runtime.store is None and runtime.recovery is None
        populate(runtime, "gen1", count=1)
        status = runtime._ctl_status()
        assert status["store"] is None
