"""Sharded visibility plane over real TCP node processes.

Covers the control-plane surface the sim tests cannot: space homing via
the ``create_space`` control command (a regression — the handler used to
drop the attributes before the coordinator chose a shard, so every space
fell back to address-hash homing), per-shard status reporting, and a
live seat move through the ``rebalance`` control command.
"""

import zlib

import pytest

from repro.net.cluster import LocalCluster, loopback_available
from repro.shard.map import ShardMap

pytestmark = pytest.mark.skipif(
    not loopback_available(), reason="loopback TCP unavailable")

N_NODES = 2
N_SHARDS = 4


def atom_owned_by(shard: int) -> str:
    i = 0
    while True:
        atom = f"fam{i}"
        if zlib.crc32(atom.encode()) % N_SHARDS == shard:
            return atom
        i += 1


def applied(cluster, node):
    return cluster.call(node, "status")["applied_seq"]


def shard_status(cluster, node):
    return cluster.call(node, "status")["shards"]


def shard_info(shards: dict, shard: int) -> dict:
    # Wire codecs may stringify dict keys; accept either.
    return shards[shard] if shard in shards else shards[str(shard)]


def test_spaces_home_on_their_root_atom_shard():
    cluster = LocalCluster(N_NODES, seed=0, trace=False, shards=N_SHARDS)
    cluster.start()
    try:
        # Shard 2 seats on node 0, shard 1 on node 1 (round-robin spread)
        # — one local-seat and one remote-seat space.
        shard_map = ShardMap(N_SHARDS, list(range(N_NODES)))
        probes = {2: atom_owned_by(2), 1: atom_owned_by(1)}
        assert shard_map.sequencer_for(2) == 0
        assert shard_map.sequencer_for(1) == 1
        burst = 30
        for shard, atom in probes.items():
            space = cluster.call(0, "create_space",
                                 attributes=atom)["address"]
            target = cluster.call(
                0, "create_actor", behavior="counter",
                visible={"attributes": f"{atom}/seed", "space": space},
            )["address"]
            cluster.wait_until(
                lambda: all(cluster.call(n, "has_space", address=space)
                            for n in range(N_NODES)),
                what="probe space replicated")
            cluster.call(0, "vis_burst", target=target, space=space,
                         count=burst, prefix=f"s{shard}")
        total = applied(cluster, 0)
        cluster.wait_until(
            lambda: all(applied(cluster, n) >= total for n in range(N_NODES)),
            what="bursts applied everywhere")
        for shard, atom in probes.items():
            seat = shard_map.sequencer_for(shard)
            info = shard_info(shard_status(cluster, seat), shard)
            # The seed MAKE_VISIBLE + the burst all sequenced on the
            # atom's home shard: homing followed the root atom, not the
            # address hash.
            assert info["ops_sequenced"] >= burst + 1, (shard, atom, info)
        # The untouched shards (besides topology shard 0) saw nothing.
        for shard in ({0, 1, 2, 3} - set(probes)) - {0}:
            for node in range(N_NODES):
                info = shard_info(shard_status(cluster, node), shard)
                assert info["ops_sequenced"] == 0, (shard, info)
    finally:
        cluster.shutdown()


def test_live_rebalance_moves_the_seat_and_loses_nothing():
    cluster = LocalCluster(N_NODES, seed=0, trace=False, shards=N_SHARDS)
    cluster.start()
    try:
        shard = 2  # seats on node 0 under the default spread
        atom = atom_owned_by(shard)
        space = cluster.call(0, "create_space", attributes=atom)["address"]
        target = cluster.call(
            0, "create_actor", behavior="counter",
            visible={"attributes": f"{atom}/seed", "space": space},
        )["address"]
        cluster.wait_until(
            lambda: all(cluster.call(n, "has_space", address=space)
                        for n in range(N_NODES)),
            what="space replicated")
        cluster.call(0, "vis_burst", target=target, space=space,
                     count=20, prefix="pre")
        moved = cluster.call(0, "rebalance", shard=shard, seat=1)
        assert moved["sequencer"] == 1 and moved["version"] >= 1
        # Gossip the new map to the other node, as the drill does.
        manifest = cluster.call(0, "shard_map")["map"]
        cluster.call(1, "shard_map", manifest=manifest)
        cluster.call(0, "vis_burst", target=target, space=space,
                     count=20, prefix="post")
        base = applied(cluster, 0)
        cluster.wait_until(
            lambda: all(applied(cluster, n) >= base for n in range(N_NODES)),
            what="post-rebalance traffic applied")
        # Every one of the 41 ops (seed + 2x20) sequenced exactly once,
        # across both seats.
        total = sum(
            shard_info(shard_status(cluster, n), shard)["ops_sequenced"]
            for n in range(N_NODES))
        assert total == 41, total
    finally:
        cluster.shutdown()
