"""Unit tests for the NTP-style per-peer clock aligner."""

from __future__ import annotations

from repro.net.clocksync import SAMPLE_WINDOW, ClockSync


def test_symmetric_sample_recovers_offset_and_rtt():
    sync = ClockSync()
    # Peer clock runs 5 s ahead; 2 ms symmetric round trip.
    sync.add_sample("peer", t_send=10.0, t_peer1=15.001, t_peer2=15.001,
                    t_recv=10.002)
    assert abs(sync.offset("peer") - 5.0) < 1e-9
    assert abs(sync.rtt("peer") - 0.002) < 1e-9
    # Mapping a peer timestamp onto our clock undoes the offset.
    assert abs(sync.to_local("peer", 15.001) - 10.001) < 1e-9


def test_min_rtt_sample_wins():
    sync = ClockSync()
    sync.add_sample("peer", 10.0, 15.001, 15.001, 10.002)     # rtt 2 ms
    # A congested sample with a wildly wrong offset but 50 ms rtt must
    # not displace the tight one: error is bounded by rtt/2.
    sync.add_sample("peer", 20.0, 27.0, 27.0, 20.050)         # rtt 50 ms
    assert abs(sync.offset("peer") - 5.0) < 1e-9
    assert abs(sync.rtt("peer") - 0.002) < 1e-9
    # A tighter sample does displace it.
    sync.add_sample("peer", 30.0, 35.0025, 35.0025, 30.001)   # rtt 1 ms
    assert abs(sync.rtt("peer") - 0.001) < 1e-9


def test_peer_hold_time_subtracted_from_rtt():
    # Four-timestamp form: the peer held our probe for 0.1 s before
    # answering; that hold must not count as network delay.
    sync = ClockSync()
    sync.add_sample("peer", t_send=10.0, t_peer1=15.001, t_peer2=15.101,
                    t_recv=10.102)
    assert abs(sync.rtt("peer") - 0.002) < 1e-9
    assert abs(sync.offset("peer") - 5.0) < 1e-9


def test_nonsense_samples_rejected():
    sync = ClockSync()
    # Reply before request (clock stepped mid-sample).
    sync.add_sample("peer", t_send=10.0, t_peer1=15.0, t_peer2=15.0,
                    t_recv=9.0)
    # Peer hold longer than the whole local round trip (a stale echo)
    # => negative rtt.
    sync.add_sample("peer", t_send=10.0, t_peer1=15.0, t_peer2=15.1,
                    t_recv=10.001)
    assert sync.samples_rejected == 2
    assert "peer" not in sync.peers()
    # Unknown peer degrades to the identity mapping.
    assert sync.offset("peer") is None
    assert sync.to_local("peer", 42.0) == 42.0


def test_sample_window_is_bounded():
    sync = ClockSync()
    for i in range(SAMPLE_WINDOW * 3):
        sync.add_sample("peer", float(i), float(i) + 1.0, float(i) + 1.0,
                        float(i) + 0.01)
    snap = sync.snapshot()
    assert snap["peers"]["peer"]["samples"] == SAMPLE_WINDOW
    assert snap["samples_total"] == SAMPLE_WINDOW * 3
    assert snap["samples_rejected"] == 0


def test_snapshot_shape():
    sync = ClockSync()
    sync.add_sample(1, 0.0, 0.5, 0.5, 0.002)
    sync.add_sample(2, 0.0, -0.5, -0.5, 0.004)
    snap = sync.snapshot()
    assert set(snap) == {"peers", "samples_total", "samples_rejected"}
    assert set(snap["peers"]) == {1, 2}
    for info in snap["peers"].values():
        assert set(info) == {"offset_s", "rtt_s", "samples"}
    assert snap["peers"][1]["offset_s"] > 0 > snap["peers"][2]["offset_s"]
