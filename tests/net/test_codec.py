"""Property and rejection tests for the wire codec.

Round-trips are hypothesis-driven: any value built from the wire type
universe must decode back equal, including when the encoded frames are
resegmented arbitrarily (TCP gives no message boundaries).  Rejection
paths get explicit tests: truncated values, oversized length prefixes,
unknown tags/kinds, trailing garbage, and version-mismatched handshakes
must all raise :class:`WireError` (or reject) rather than misparse.
"""

import dataclasses
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addresses import ActorAddress, SpaceAddress
from repro.core.atoms import AttributePath
from repro.core.capabilities import Capability
from repro.core.messages import Destination, Envelope, Message, Mode, Port
from repro.core.patterns import parse_pattern
from repro.net.codec import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    SCHEMA_VERSION,
    FrameDecoder,
    FrameKind,
    WireError,
    decode_value,
    encode_frame,
    encode_value,
    hello_payload,
    hello_problem,
    register_wire_type,
    try_decode_frame,
)
from repro.runtime.bus import OpKind, VisibilityOp

# -- value strategies ------------------------------------------------------------

atoms = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=5)
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 130), max_value=2 ** 130),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
    st.builds(ActorAddress, st.integers(0, 7), st.integers(0, 1 << 50)),
    st.builds(SpaceAddress, st.integers(0, 7), st.integers(0, 1 << 50)),
    st.builds(AttributePath, st.lists(atoms, min_size=1, max_size=4)),
    st.builds(Capability, st.integers(min_value=1, max_value=(1 << 128) - 1)),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.one_of(st.text(max_size=8), st.integers()),
                        children, max_size=4),
        st.frozensets(st.one_of(st.integers(), st.text(max_size=8)),
                      max_size=4),
    ),
    max_leaves=12,
)


@given(values)
@settings(max_examples=400)
def test_value_round_trip(value):
    assert decode_value(encode_value(value)) == value


@given(values)
@settings(max_examples=200)
def test_encoding_is_deterministic(value):
    assert encode_value(value) == encode_value(value)


def test_set_encoding_ignores_construction_order():
    assert encode_value({3, 1, 2}) == encode_value({2, 3, 1})
    assert decode_value(encode_value({3, 1, 2})) == frozenset({1, 2, 3})


#: Every frame kind whose body is one encoded value (BATCH's body is a
#: sequence of inner frames instead; it has its own strategy below).
VALUE_KINDS = [k for k in FrameKind if k != FrameKind.BATCH]


@given(st.lists(st.tuples(st.sampled_from(VALUE_KINDS), values),
                min_size=1, max_size=5),
       st.integers(min_value=1, max_value=64))
@settings(max_examples=150)
def test_frame_stream_survives_resegmentation(frames, chunk):
    """A frame sequence split at arbitrary byte offsets decodes intact."""
    stream = b"".join(encode_frame(kind, payload) for kind, payload in frames)
    decoder = FrameDecoder()
    out = []
    for start in range(0, len(stream), chunk):
        out.extend(decoder.feed(stream[start:start + chunk]))
    assert out == frames
    assert decoder.pending_bytes == 0


@given(st.lists(st.tuples(st.sampled_from(VALUE_KINDS), values),
                min_size=1, max_size=8),
       st.data())
@settings(max_examples=150)
def test_batch_round_trip_survives_resegmentation(frames, data):
    """BATCH frames flatten back to their members, however the stream is
    grouped into batches and split at arbitrary byte offsets."""
    from repro.net.codec import wrap_batch

    encoded = [encode_frame(kind, payload) for kind, payload in frames]
    stream = b""
    index = 0
    while index < len(encoded):
        take = data.draw(st.integers(min_value=1,
                                     max_value=len(encoded) - index))
        group = encoded[index:index + take]
        # Singletons sometimes ride bare, sometimes batched — both legal.
        if len(group) == 1 and data.draw(st.booleans()):
            stream += group[0]
        else:
            stream += wrap_batch(group)
        index += take
    chunk = data.draw(st.integers(min_value=1, max_value=64))
    decoder = FrameDecoder()
    out = []
    for start in range(0, len(stream), chunk):
        out.extend(decoder.feed(stream[start:start + chunk]))
    assert out == frames
    assert decoder.pending_bytes == 0


def test_wrap_batch_rejects_empty_and_nested():
    from repro.net.codec import wrap_batch

    with pytest.raises(WireError):
        wrap_batch([])
    inner = encode_frame(FrameKind.HEARTBEAT, {"n": 1})
    nested = wrap_batch([inner])
    with pytest.raises(WireError):
        wrap_batch([inner, nested])


def test_encode_frame_refuses_batch_kind():
    with pytest.raises(WireError):
        encode_frame(FrameKind.BATCH, [("x", 1)])


def test_truncated_batch_body_rejected():
    """A batch whose count promises more inner frames than it carries."""
    import struct

    from repro.net.codec import wrap_batch

    inner = encode_frame(FrameKind.HEARTBEAT, {"n": 1})
    good = wrap_batch([inner, inner])
    # Patch the inner count from 2 up to 3: same bytes, broken promise.
    bad = bytearray(good)
    bad[5:9] = struct.pack("!I", 3)
    with pytest.raises(WireError):
        try_decode_frame(bytes(bad))


def test_batch_trailing_garbage_rejected():
    import struct

    from repro.net.codec import wrap_batch

    inner = encode_frame(FrameKind.HEARTBEAT, {"n": 1})
    good = wrap_batch([inner, inner])
    # Claim only one member: the second becomes trailing garbage.
    bad = bytearray(good)
    bad[5:9] = struct.pack("!I", 1)
    with pytest.raises(WireError):
        try_decode_frame(bytes(bad))


def test_frame_decoder_counts_batches():
    from repro.net.codec import wrap_batch

    inner = encode_frame(FrameKind.HEARTBEAT, {"n": 1})
    decoder = FrameDecoder()
    frames = decoder.feed(wrap_batch([inner, inner]) + inner)
    assert len(frames) == 3
    assert decoder.batches_in == 1


def test_wire_domain_round_trips():
    """The actual protocol payloads: envelopes, ops, destinations."""
    capability = Capability((1 << 127) | 99)
    destination = Destination(parse_pattern("proc/*"), SpaceAddress(0, 4))
    message = Message(("job", 7), reply_to=ActorAddress(1, 2),
                      headers={"hop": 1}, message_id=9)
    envelope = Envelope(
        message=message, sender=ActorAddress(2, 5), mode=Mode.BROADCAST,
        target=ActorAddress(0, 1), destination=destination, port=Port.RPC,
        sent_at=1.5, delivered_at=None, trace=[3, 1],
        origin_space=SpaceAddress(0, 0), envelope_id=(3 << 44) | 17,
        trace_id=12, parent_id=None,
    )
    op = VisibilityOp(kind=OpKind.MAKE_VISIBLE,
                      args={"target": ActorAddress(1, 1),
                            "attributes": AttributePath(["proc", "p1"]),
                            "capability": capability},
                      origin_node=1, origin_seq=3, op_id=(1 << 44) | 2)
    for value in (capability, destination, message, envelope, op):
        decoded = decode_value(encode_value(value))
        assert type(decoded) is type(value)
    back = decode_value(encode_value(envelope))
    assert back.message.payload == ("job", 7)
    assert back.mode is Mode.BROADCAST and back.port is Port.RPC
    assert str(back.destination.pattern) == str(destination.pattern)
    back_op = decode_value(encode_value(op))
    assert back_op.kind is OpKind.MAKE_VISIBLE
    assert back_op.args["capability"].token == capability.token
    assert (back_op.origin_node, back_op.origin_seq, back_op.op_id) == (
        op.origin_node, op.origin_seq, op.op_id)


def test_registered_dataclass_round_trips():
    @dataclasses.dataclass
    class Probe:
        label: str
        weight: float

    register_wire_type(Probe, name="test-probe")
    back = decode_value(encode_value(Probe("x", 2.5)))
    assert back == Probe("x", 2.5)


# -- rejection paths -------------------------------------------------------------

def test_unencodable_type_raises_at_encode_time():
    with pytest.raises(WireError):
        encode_value(object())


def test_unknown_tag_rejected():
    with pytest.raises(WireError):
        decode_value(b"Q")


def test_trailing_garbage_rejected():
    with pytest.raises(WireError):
        decode_value(encode_value(3) + b"\x00")


@given(st.sampled_from([None, True, [1, "x"], {"k": 2.0}]),
       st.data())
def test_truncated_value_rejected(value, data):
    encoded = encode_value(value)
    cut = data.draw(st.integers(min_value=0, max_value=len(encoded) - 1))
    with pytest.raises(WireError):
        decode_value(encoded[:cut])


def test_incomplete_frame_returns_none_not_error():
    frame = encode_frame(FrameKind.HEARTBEAT, {"n": 1})
    for cut in range(len(frame)):
        assert try_decode_frame(frame[:cut]) is None


def test_oversized_length_prefix_rejected():
    import struct
    bogus = struct.pack("!I", MAX_FRAME_BYTES + 1) + b"\x05"
    with pytest.raises(WireError):
        try_decode_frame(bogus)
    with pytest.raises(WireError):
        encode_frame(FrameKind.ENVELOPE, b"x" * MAX_FRAME_BYTES)


def test_empty_frame_body_rejected():
    import struct
    with pytest.raises(WireError):
        try_decode_frame(struct.pack("!I", 0) + b"\x00\x00\x00\x00\x01")


def test_unknown_frame_kind_rejected():
    import struct
    with pytest.raises(WireError):
        try_decode_frame(struct.pack("!I", 2) + b"\xee" + b"N")


def test_corrupt_stream_poisons_decoder():
    decoder = FrameDecoder()
    with pytest.raises(WireError):
        decoder.feed(b"\xff\xff\xff\xff\x00")


# -- handshake validation --------------------------------------------------------

def test_matching_hello_accepted():
    assert hello_problem(hello_payload(2, "node", "c1"), "c1") is None


@pytest.mark.parametrize("mutation, fragment", [
    ({"protocol": PROTOCOL_VERSION + 1}, "protocol version"),
    ({"schema": SCHEMA_VERSION + 1}, "schema version"),
    ({"magic": "not-actorspace"}, "magic"),
    ({"cluster": "other"}, "cluster id"),
    ({"node": "zero"}, "node id"),
    ({"role": "admin"}, "role"),
])
def test_mismatched_hello_rejected(mutation, fragment):
    payload = hello_payload(0, "node", "c1")
    payload.update(mutation)
    problem = hello_problem(payload, "c1")
    assert problem is not None and fragment in problem


def test_non_mapping_hello_rejected():
    assert hello_problem(["not", "a", "dict"], "c1") is not None
