"""Tests: the Linda tuple-space baseline."""

from repro.baselines.linda import (
    ANY,
    BlockingConsumer,
    PollingConsumer,
    TupleSpaceBehavior,
    matches,
)
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


class TestMatching:
    def test_exact_values(self):
        assert matches(("a", 1), ("a", 1))
        assert not matches(("a", 1), ("a", 2))

    def test_arity_must_agree(self):
        assert not matches(("a",), ("a", 1))

    def test_wildcard(self):
        assert matches(("a", ANY), ("a", 99))

    def test_type_fields(self):
        assert matches(("a", int), ("a", 5))
        assert not matches(("a", int), ("a", "five"))
        assert matches((str, ANY), ("x", None))


def build():
    system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)
    space = system.create_actor(TupleSpaceBehavior(), node=0)
    return system, space


def kernel(system, space):
    return system.actor_record(space).behavior


class TestKernel:
    def test_out_then_inp(self):
        system, space = build()
        got = []
        probe = system.create_actor(lambda ctx, m: got.append(m.payload))
        system.send_to(space, ("out", ("job", 1)))
        system.run()
        system.send_to(space, ("inp", ("job", ANY)), reply_to=probe)
        system.run()
        assert got == [("tuple", ("job", 1))]
        assert kernel(system, space).tuples == []  # consumed

    def test_rdp_does_not_consume(self):
        system, space = build()
        got = []
        probe = system.create_actor(lambda ctx, m: got.append(m.payload))
        system.send_to(space, ("out", ("job", 1)))
        system.run()
        system.send_to(space, ("rdp", ("job", ANY)), reply_to=probe)
        system.run()
        assert got[0][0] == "tuple"
        assert kernel(system, space).tuples == [("job", 1)]

    def test_inp_miss_replies_no_match(self):
        system, space = build()
        got = []
        probe = system.create_actor(lambda ctx, m: got.append(m.payload))
        system.send_to(space, ("inp", ("nope", ANY)), reply_to=probe)
        system.run()
        assert got == [("no-match", ("nope", ANY))]

    def test_blocking_in_waits_for_out(self):
        system, space = build()
        got = []
        probe = system.create_actor(lambda ctx, m: got.append((ctx.now, m.payload)))
        system.send_to(space, ("in", ("data", ANY)), reply_to=probe)
        system.run()
        assert got == []  # still blocked in the kernel
        system.send_to(space, ("out", ("data", 9)))
        system.run()
        assert got[0][1] == ("tuple", ("data", 9))

    def test_in_consumes_exactly_once_under_contention(self):
        """The Linda race: two blocked `in`s, one tuple — one winner."""
        system, space = build()
        got = []
        for i in range(2):
            probe = system.create_actor(
                lambda ctx, m, i=i: got.append((i, m.payload)))
            system.send_to(space, ("in", ("prize", ANY)), reply_to=probe)
        system.run()
        system.send_to(space, ("out", ("prize", 1)))
        system.run()
        assert len(got) == 1  # exactly one consumer got it

    def test_rd_waiters_all_served_by_one_out(self):
        system, space = build()
        got = []
        for i in range(3):
            probe = system.create_actor(
                lambda ctx, m, i=i: got.append(i))
            system.send_to(space, ("rd", ("news", ANY)), reply_to=probe)
        system.run()
        system.send_to(space, ("out", ("news", "flash")))
        system.run()
        assert sorted(got) == [0, 1, 2]
        assert kernel(system, space).tuples == [("news", "flash")]


class TestConsumers:
    def test_polling_consumer_costs_scale_with_delay(self):
        def polls_for(delay):
            system = ActorSpaceSystem(topology=Topology.lan(2), seed=1)
            space = system.create_actor(TupleSpaceBehavior(), node=0)
            consumer = PollingConsumer(space, ("r", ANY), poll_interval=0.5)
            system.create_actor(consumer, node=1)
            system.events.schedule(
                delay, lambda: system.send_to(space, ("out", ("r", 1))))
            system.run()
            assert consumer.result == ("r", 1)
            return consumer.polls

        assert polls_for(10.0) > polls_for(1.0) > 0

    def test_blocking_consumer_needs_one_request(self):
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=1)
        space = system.create_actor(TupleSpaceBehavior(), node=0)
        got = []
        monitor = system.create_actor(lambda ctx, m: got.append(m.payload))
        consumer = BlockingConsumer(space, ("r", ANY), monitor=monitor)
        system.create_actor(consumer, node=1)
        system.events.schedule(
            5.0, lambda: system.send_to(space, ("out", ("r", 2))))
        system.run()
        assert consumer.result == ("r", 2)
        assert got == [("got", ("r", 2), 1)]
