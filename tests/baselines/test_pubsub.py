"""Tests: the topic pub/sub baseline."""

from repro.baselines.pubsub import FilteringSubscriber, TopicBrokerBehavior
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


def build():
    system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)
    broker_behavior = TopicBrokerBehavior()
    broker = system.create_actor(broker_behavior, node=0)
    return system, broker, broker_behavior


class TestBroker:
    def test_publish_to_subscribers(self):
        system, broker, bb = build()
        got = []
        sub = system.create_actor(lambda ctx, m: got.append(m.payload), node=1)
        system.send_to(broker, ("subscribe", "news"), reply_to=sub)
        system.run()
        system.send_to(broker, ("publish", "news", "flash"))
        system.run()
        assert got == [("event", "news", "flash")]

    def test_exact_topic_match_only(self):
        system, broker, bb = build()
        got = []
        sub = system.create_actor(lambda ctx, m: got.append(m.payload))
        system.send_to(broker, ("subscribe", "news.sports"), reply_to=sub)
        system.run()
        # No wildcards: "news" is a different topic entirely.
        system.send_to(broker, ("publish", "news", "x"))
        system.run()
        assert got == []
        assert bb.dropped_no_topic == 1

    def test_unsubscribe(self):
        system, broker, bb = build()
        got = []
        sub = system.create_actor(lambda ctx, m: got.append(m.payload))
        system.send_to(broker, ("subscribe", "t"), reply_to=sub)
        system.run()
        system.send_to(broker, ("unsubscribe", "t"), reply_to=sub)
        system.run()
        system.send_to(broker, ("publish", "t", 1))
        system.run()
        assert got == []
        assert bb.topic_count == 0

    def test_duplicate_subscribe_is_idempotent(self):
        system, broker, bb = build()
        got = []
        sub = system.create_actor(lambda ctx, m: got.append(m.payload))
        for _ in range(3):
            system.send_to(broker, ("subscribe", "t"), reply_to=sub)
        system.run()
        system.send_to(broker, ("publish", "t", "once"))
        system.run()
        assert len(got) == 1

    def test_counters(self):
        system, broker, bb = build()
        sub = system.create_actor(lambda ctx, m: None)
        system.send_to(broker, ("subscribe", "a"), reply_to=sub)
        system.run()
        system.send_to(broker, ("publish", "a", 1))
        system.send_to(broker, ("publish", "ghost", 2))
        system.run()
        assert bb.published == 2
        assert bb.forwarded == 1
        assert bb.dropped_no_topic == 1


class TestFilteringSubscriber:
    def test_accepts_and_counts_waste(self):
        system, broker, bb = build()
        sub = FilteringSubscriber(lambda payload: payload == "mine")
        addr = system.create_actor(sub, node=1)
        system.send_to(broker, ("subscribe", "shared"), reply_to=addr)
        system.run()
        system.send_to(broker, ("publish", "shared", "mine"))
        system.send_to(broker, ("publish", "shared", "other"))
        system.run()
        assert sub.accepted == ["mine"]
        assert sub.wasted == 1
