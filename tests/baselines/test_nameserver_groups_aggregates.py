"""Tests: name server, static groups, and Concurrent Aggregates baselines."""

import pytest

from repro.baselines.aggregates import AggregateSystem, HierarchyError
from repro.baselines.groups import EmptyGroupError, GroupRegistry, UnknownGroupError
from repro.baselines.nameserver import LookupThenSendClient, NameServerBehavior
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


def system_with_recorder(nodes=3, seed=0):
    system = ActorSpaceSystem(topology=Topology.lan(nodes), seed=seed)
    got = []
    recorder = system.create_actor(lambda ctx, m: got.append(m.payload), node=1)
    return system, recorder, got


class TestNameServer:
    def test_register_lookup_roundtrip(self):
        system, target, got = system_with_recorder()
        ns = system.create_actor(NameServerBehavior(), node=0)
        probe_got = []
        probe = system.create_actor(lambda ctx, m: probe_got.append(m.payload))
        system.send_to(ns, ("register", "svc.print", target), reply_to=probe)
        system.run()
        system.send_to(ns, ("lookup", "svc.print"), reply_to=probe)
        system.run()
        assert ("ok", "svc.print") in probe_got
        assert ("addr", "svc.print", target) in probe_got

    def test_lookup_unknown(self):
        system, _t, _g = system_with_recorder()
        ns = system.create_actor(NameServerBehavior(), node=0)
        probe_got = []
        probe = system.create_actor(lambda ctx, m: probe_got.append(m.payload))
        system.send_to(ns, ("lookup", "ghost"), reply_to=probe)
        system.run()
        assert probe_got == [("unknown", "ghost")]

    def test_list_by_prefix(self):
        system, target, _g = system_with_recorder()
        ns = system.create_actor(NameServerBehavior(), node=0)
        for name in ("svc.a", "svc.b", "other.c"):
            system.send_to(ns, ("register", name, target))
        system.run()
        probe_got = []
        probe = system.create_actor(lambda ctx, m: probe_got.append(m.payload))
        system.send_to(ns, ("list", "svc."), reply_to=probe)
        system.run()
        assert probe_got == [("names", ["svc.a", "svc.b"])]

    def test_lookup_then_send_costs_three_messages(self):
        system, target, got = system_with_recorder()
        ns = system.create_actor(NameServerBehavior(), node=0)
        system.send_to(ns, ("register", "svc.x", target))
        system.run()
        monitor_got = []
        monitor = system.create_actor(lambda ctx, m: monitor_got.append(m.payload))
        system.create_actor(
            LookupThenSendClient(ns, "svc.x", ("hi",), monitor=monitor), node=2)
        system.run()
        assert got == [("hi",)]
        assert monitor_got == [("sent", "svc.x", 3)]

    def test_unbound_name_forces_retry_polling(self):
        system, target, got = system_with_recorder()
        ns = system.create_actor(NameServerBehavior(), node=0)
        client = LookupThenSendClient(ns, "late.svc", ("payload",))
        system.create_actor(client, node=2)
        system.run(until=2.0)
        assert got == []  # still unbound: client is polling
        system.send_to(ns, ("register", "late.svc", target))
        system.run()
        assert got == [("payload",)]
        assert client.hops > 3  # polling cost exceeded the happy path


class TestGroups:
    def test_membership_and_cast(self):
        system, target, got = system_with_recorder()
        reg = GroupRegistry(system)
        reg.create_group("g")
        reg.join("g", target)
        assert reg.members("g") == [target]
        reg.group_cast("g", "to-all")
        system.run()
        assert got == ["to-all"]

    def test_group_send_round_robin(self):
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)
        counts = [0, 0]
        addrs = [
            system.create_actor(lambda ctx, m, i=i: counts.__setitem__(
                i, counts[i] + 1))
            for i in range(2)
        ]
        reg = GroupRegistry(system)
        reg.create_group("g")
        for a in addrs:
            reg.join("g", a)
        for _ in range(6):
            reg.group_send("g", "x", policy="round-robin")
        system.run()
        assert counts == [3, 3]

    def test_empty_and_unknown_groups_fail_fast(self):
        system = ActorSpaceSystem(seed=0)
        reg = GroupRegistry(system)
        with pytest.raises(UnknownGroupError):
            reg.group_send("nope", 1)
        reg.create_group("g")
        with pytest.raises(EmptyGroupError):
            reg.group_send("g", 1)
        with pytest.raises(EmptyGroupError):
            reg.group_cast("g", 1)

    def test_membership_ops_counted(self):
        system = ActorSpaceSystem(seed=0)
        reg = GroupRegistry(system)
        reg.create_group("g")
        a = system.create_actor(lambda ctx, m: None)
        reg.join("g", a)
        reg.leave("g", a)
        reg.delete_group("g")
        assert reg.membership_ops == 4

    def test_duplicate_group_rejected(self):
        system = ActorSpaceSystem(seed=0)
        reg = GroupRegistry(system)
        reg.create_group("g")
        with pytest.raises(ValueError):
            reg.create_group("g")


class TestAggregates:
    def test_strict_hierarchy_enforced(self):
        system = ActorSpaceSystem(seed=0)
        ag = AggregateSystem(system)
        a, b, c = ag.create("a"), ag.create("b"), ag.create("c")
        a.add_child(b)
        with pytest.raises(HierarchyError):
            c.add_child(b)  # b already has a parent: no overlap allowed
        with pytest.raises(HierarchyError):
            b.add_child(a)  # cycle

    def test_detach_allows_reattachment(self):
        system = ActorSpaceSystem(seed=0)
        ag = AggregateSystem(system)
        a, b, c = ag.create("a"), ag.create("b"), ag.create("c")
        a.add_child(b)
        b.detach()
        c.add_child(b)
        assert b.parent is c

    def test_recursive_delivery(self):
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)
        got = []
        ag = AggregateSystem(system)
        parent, child = ag.create("p"), ag.create("c")
        parent.add_child(child)
        for i in range(2):
            addr = system.create_actor(
                lambda ctx, m, i=i: got.append(("p", i, m.payload)))
            parent.add_member(addr)
        addr = system.create_actor(lambda ctx, m: got.append(("c", m.payload)))
        child.add_member(addr)
        assert ag.deliver_all("p", "hi") == 3  # members + descendants
        system.run()
        assert len(got) == 3

    def test_deliver_one_hits_exactly_one(self):
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=3)
        got = []
        ag = AggregateSystem(system)
        root = ag.create("root")
        for i in range(4):
            addr = system.create_actor(lambda ctx, m, i=i: got.append(i))
            root.add_member(addr)
        ag.deliver_one("root", "x")
        system.run()
        assert len(got) == 1

    def test_empty_aggregate_fails(self):
        system = ActorSpaceSystem(seed=0)
        ag = AggregateSystem(system)
        ag.create("e")
        with pytest.raises(HierarchyError):
            ag.deliver_one("e", 1)
