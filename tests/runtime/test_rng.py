"""Unit tests: the seeded RNG hub."""

from repro.runtime.rng import RngHub


class TestRngHub:
    def test_same_name_same_stream_object(self):
        hub = RngHub(1)
        assert hub.stream("latency") is hub.stream("latency")

    def test_streams_are_deterministic_per_seed(self):
        a = RngHub(42).stream("x").random(5)
        b = RngHub(42).stream("x").random(5)
        assert (a == b).all()

    def test_different_names_are_independent(self):
        hub = RngHub(0)
        a = hub.stream("a").random(5)
        b = hub.stream("b").random(5)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = RngHub(1).stream("x").random(5)
        b = RngHub(2).stream("x").random(5)
        assert not (a == b).all()

    def test_draw_in_one_stream_does_not_shift_another(self):
        """The isolation property the experiments rely on."""
        hub1 = RngHub(3)
        hub1.stream("noise").random(100)  # extra draws...
        a = hub1.stream("arbitration").random(5)
        hub2 = RngHub(3)
        b = hub2.stream("arbitration").random(5)  # ...don't affect this
        assert (a == b).all()
