"""Unit tests: the coordinator bus (total order, per-origin FIFO)."""

import numpy as np
import pytest

from repro.runtime.bus import OpKind, SequencerBus, TokenRingBus, VisibilityOp
from repro.runtime.clock import VirtualClock
from repro.runtime.events import EventQueue
from repro.runtime.network import Network, Topology
from repro.runtime.transport import NetworkTransport


def harness(bus_cls, nodes=4, **kw):
    clock = VirtualClock()
    events = EventQueue()
    transport = NetworkTransport(
        Network(Topology.lan(nodes), rng=np.random.default_rng(0))
    )
    bus = bus_cls(list(range(nodes)), events, clock, transport, **kw)
    deliveries: dict[int, list[tuple[int, int]]] = {n: [] for n in range(nodes)}
    bus.deliver = lambda node, seq, op: deliveries[node].append((seq, op.op_id))

    def run():
        while events:
            t, action = events.pop()
            clock.advance_to(t)
            action()

    return bus, deliveries, run


def op(origin, origin_seq):
    return VisibilityOp(OpKind.MAKE_VISIBLE, {}, origin, origin_seq)


@pytest.mark.parametrize("bus_cls", [SequencerBus, TokenRingBus])
class TestTotalOrder:
    def test_every_node_sees_every_op_once(self, bus_cls):
        bus, deliveries, run = harness(bus_cls)
        ops = [op(i % 4, i // 4) for i in range(12)]
        for o in ops:
            bus.submit(o)
        run()
        for node, seen in deliveries.items():
            assert len(seen) == 12, f"node {node} saw {len(seen)}"

    def test_identical_sequence_numbers_across_nodes(self, bus_cls):
        bus, deliveries, run = harness(bus_cls)
        for i in range(10):
            bus.submit(op(i % 4, i // 4))
        run()
        reference = sorted(deliveries[0])
        for node in range(1, 4):
            assert sorted(deliveries[node]) == reference

    def test_sequence_is_gap_free(self, bus_cls):
        bus, deliveries, run = harness(bus_cls)
        for i in range(7):
            bus.submit(op(0, i))
        run()
        seqs = sorted(s for s, _ in deliveries[2])
        assert seqs == list(range(7))

    def test_per_origin_fifo(self, bus_cls):
        """Ops from one origin are sequenced in submission order."""
        bus, deliveries, run = harness(bus_cls)
        submitted = [op(1, i) for i in range(8)]
        for o in submitted:
            bus.submit(o)
        run()
        order = {op_id: seq for seq, op_id in deliveries[0]}
        seqs = [order[o.op_id] for o in submitted]
        assert seqs == sorted(seqs)

    def test_interleaved_origins_still_fifo_per_origin(self, bus_cls):
        bus, deliveries, run = harness(bus_cls)
        a_ops = [op(0, i) for i in range(5)]
        b_ops = [op(3, i) for i in range(5)]
        for pair in zip(a_ops, b_ops):
            for o in pair:
                bus.submit(o)
        run()
        order = {op_id: seq for seq, op_id in deliveries[1]}
        assert [order[o.op_id] for o in a_ops] == sorted(order[o.op_id] for o in a_ops)
        assert [order[o.op_id] for o in b_ops] == sorted(order[o.op_id] for o in b_ops)

    def test_cost_accounting(self, bus_cls):
        bus, _deliveries, run = harness(bus_cls)
        for i in range(5):
            bus.submit(op(0, i))
        run()
        assert bus.ops_sequenced == 5
        assert bus.protocol_messages > 0


class TestProtocolDifferences:
    def test_sequencer_message_cost(self):
        bus, _d, run = harness(SequencerBus)
        for i in range(10):
            bus.submit(op(1, i))
        run()
        # submit unicast + fan-out to 4 nodes = 5 messages per op
        assert bus.protocol_messages == 10 * 5

    def test_token_ring_parks_when_idle(self):
        bus, _d, run = harness(TokenRingBus)
        bus.submit(op(0, 0))
        run()
        assert not bus._token_started  # token parked after the queue drained
        bus.submit(op(0, 1))  # resubmission restarts the token
        run()
        assert bus.ops_sequenced == 2

    def test_sequencer_node_configurable(self):
        bus, _d, run = harness(SequencerBus, sequencer_node=2)
        assert bus.sequencer_node == 2
        bus.submit(op(0, 0))
        run()
        assert bus.ops_sequenced == 1
