"""Unit tests: virtual clock and the deterministic event queue."""

import pytest

from repro.runtime.clock import VirtualClock
from repro.runtime.events import EventQueue


class TestClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance(self):
        c = VirtualClock()
        c.advance_to(2.5)
        assert c.now == 2.5
        c.advance_to(2.5)  # idempotent advance is fine

    def test_never_backwards(self):
        c = VirtualClock(5.0)
        with pytest.raises(ValueError):
            c.advance_to(4.9)


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        out = []
        q.schedule(3.0, lambda: out.append("c"))
        q.schedule(1.0, lambda: out.append("a"))
        q.schedule(2.0, lambda: out.append("b"))
        while q:
            _t, action = q.pop()
            action()
        assert out == ["a", "b", "c"]

    def test_fifo_tie_break_at_same_time(self):
        q = EventQueue()
        out = []
        for i in range(10):
            q.schedule(1.0, lambda i=i: out.append(i))
        while q:
            q.pop()[1]()
        assert out == list(range(10))

    def test_priority_orders_same_instant(self):
        q = EventQueue()
        out = []
        q.schedule(1.0, lambda: out.append("normal"), priority=0)
        q.schedule(1.0, lambda: out.append("bus"), priority=-1)
        while q:
            q.pop()[1]()
        assert out == ["bus", "normal"]

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.schedule(7.0, lambda: None)
        assert q.peek_time() == 7.0

    def test_rejects_nonfinite_times(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule(float("inf"), lambda: None)
        with pytest.raises(ValueError):
            q.schedule(float("nan"), lambda: None)

    def test_counters(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        q.pop()
        assert q.scheduled_count == 2
        assert q.executed_count == 1
        assert len(q) == 1
