"""Edge-case tests: node views, system options, tracer, context guards."""

import pytest

from repro.core.messages import Destination, Mode
from repro.runtime.network import LatencyModel, LinkKind, Topology
from repro.runtime.node import Node
from repro.runtime.system import ActorSpaceSystem


class TestNodeView:
    def test_counts_and_cluster(self):
        system = ActorSpaceSystem(topology=Topology.wan(2, 2), seed=0)
        node = Node(system, 2)
        assert node.cluster == 1
        assert node.actor_count == 0
        system.create_actor(lambda ctx, m: None, node=2)
        assert node.actor_count == 1
        assert not node.crashed
        system.crash_node(2)
        assert node.crashed

    def test_terminated_actors_not_counted(self):
        system = ActorSpaceSystem(seed=0)
        addr = system.create_actor(lambda ctx, m: None)
        node = Node(system, 0)
        assert node.actor_count == 1
        system.coordinators[0].terminate_actor(addr)
        assert node.actor_count == 0

    def test_coordinator_accessor(self):
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)
        assert Node(system, 1).coordinator is system.coordinators[1]


class TestSystemOptions:
    def test_bad_bus_name_rejected(self):
        with pytest.raises(ValueError):
            ActorSpaceSystem(bus="carrier-pigeon")

    def test_processing_delay_consumes_time(self):
        def finish_time(delay):
            system = ActorSpaceSystem(seed=0, processing_delay=delay)
            addr = system.create_actor(lambda ctx, m: None)
            for i in range(5):
                system.send_to(addr, i)
            return system.run()

        assert finish_time(0.1) > finish_time(0.0)

    def test_keep_samples_false_suppresses_samples(self):
        system = ActorSpaceSystem(seed=0, keep_samples=False)
        addr = system.create_actor(lambda ctx, m: None)
        system.send_to(addr, "x")
        system.run()
        assert system.tracer.samples == []
        assert sum(system.tracer.delivered.values()) == 1  # still counted

    def test_custom_latency_model(self):
        slow = LatencyModel(lan=5.0, jitter=0.0)
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=0,
                                  latency_model=slow)
        got = []
        addr = system.create_actor(lambda ctx, m: got.append(ctx.now), node=1)
        system.send_to(addr, "x")
        system.run()
        assert got[0] == pytest.approx(5.0)

    def test_same_seed_same_run(self):
        def trace():
            system = ActorSpaceSystem(topology=Topology.lan(3), seed=99)
            order = []
            for i in range(3):
                addr = system.create_actor(
                    lambda ctx, m, i=i: order.append((i, round(ctx.now, 9))),
                    node=i)
                system.make_visible(addr, f"g/m{i}")
            system.run()
            for i in range(9):
                system.send("g/*", i)
            system.run()
            return order

        assert trace() == trace()

    def test_step_executes_one_event(self):
        system = ActorSpaceSystem(seed=0)
        addr = system.create_actor(lambda ctx, m: None)
        system.send_to(addr, "x")
        before = system.events.executed_count
        assert system.step()
        assert system.events.executed_count == before + 1
        while system.step():
            pass
        assert not system.step()


class TestContextGuards:
    def test_negative_schedule_rejected(self):
        system = ActorSpaceSystem(seed=0)
        errors = []

        def behavior(ctx, message):
            try:
                ctx.schedule(-1.0, "nope")
            except ValueError as e:
                errors.append(e)

        addr = system.create_actor(behavior)
        system.send_to(addr, "go")
        system.run()
        assert len(errors) == 1

    def test_context_identity_properties(self):
        system = ActorSpaceSystem(seed=0)
        seen = {}

        def behavior(ctx, message):
            seen["self"] = ctx.self_address
            seen["host"] = ctx.host_space
            seen["now"] = ctx.now

        addr = system.create_actor(behavior)
        system.send_to(addr, "x")
        system.run()
        assert seen["self"] == addr
        assert seen["host"] == system.root_space
        assert seen["now"] >= 0

    def test_actor_created_space_is_heritable(self):
        """An actor created inside a space hosts its children there too."""
        system = ActorSpaceSystem(seed=0)
        space = system.create_space()
        system.run()
        hosts = []

        def child(ctx, message):
            hosts.append(ctx.host_space)

        def parent(ctx, message):
            addr = ctx.create(child)
            ctx.send_to(addr, "check")

        p = system.create_actor(parent, space=space)
        system.send_to(p, "go")
        system.run()
        assert hosts == [space]

    def test_pattern_space_destination_from_actor(self):
        system = ActorSpaceSystem(seed=0)
        pool = system.create_space(attributes="pools/main")
        system.run()
        got = []
        worker = system.create_actor(lambda ctx, m: got.append(m.payload),
                                     space=pool)
        system.make_visible(worker, "w1", pool)
        system.run()

        def sender(ctx, message):
            # The @space part given as a pattern, resolved in the host space.
            ctx.send(Destination("w1", "pools/*"), "via-pattern-space")

        s = system.create_actor(sender)
        system.send_to(s, "go")
        system.run()
        assert got == ["via-pattern-space"]


class TestTracerExtras:
    def test_series_recording(self):
        system = ActorSpaceSystem(seed=0)
        system.tracer.record("queue-depth", 1.0, 5)
        system.tracer.record("queue-depth", 2.0, 3)
        assert system.tracer.series["queue-depth"] == [(1.0, 5.0), (2.0, 3.0)]

    def test_hop_summary_keys(self):
        system = ActorSpaceSystem(topology=Topology.wan(1, 1), seed=0)
        addr = system.create_actor(lambda ctx, m: None, node=1)
        system.send_to(addr, "x")
        system.run()
        summary = system.tracer.hop_summary()
        assert set(summary) == {"local", "lan", "wan"}
        assert summary["wan"] == 1

    def test_reset_preserves_keep_samples(self):
        system = ActorSpaceSystem(seed=0, keep_samples=False)
        system.tracer.reset()
        assert system.tracer.keep_samples is False

    def test_latency_stats_filter_by_mode(self):
        system = ActorSpaceSystem(seed=0)
        addr = system.create_actor(lambda ctx, m: None)
        system.make_visible(addr, "a")
        system.run()
        system.send_to(addr, 1)
        system.broadcast("a", 2)
        system.run()
        assert system.tracer.latency_stats(Mode.DIRECT)["count"] == 1
        assert system.tracer.latency_stats(Mode.BROADCAST)["count"] == 1
        assert system.tracer.latency_stats()["count"] == 2
