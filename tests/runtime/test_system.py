"""Tests for the system facade and per-node coordinators."""

import pytest

from repro.core.actor import Behavior
from repro.core.capabilities import Capability
from repro.core.errors import CapabilityError, NoMatchError, VisibilityCycleError
from repro.core.manager import Arbitration, SpaceManager, UnmatchedPolicy
from repro.core.messages import Mode
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


class Recorder(Behavior):
    """Stores everything it receives, with timestamps."""

    def __init__(self):
        self.received = []

    def receive(self, ctx, message):
        self.received.append((ctx.now, message.payload))


def lan(nodes=3, seed=0, **kw):
    return ActorSpaceSystem(topology=Topology.lan(nodes), seed=seed, **kw)


class TestBasics:
    def test_direct_send(self):
        system = lan()
        r = Recorder()
        addr = system.create_actor(r, node=1)
        system.send_to(addr, "hello")
        system.run()
        assert [p for _t, p in r.received] == ["hello"]

    def test_actor_to_actor_roundtrip(self):
        system = lan()
        r = Recorder()
        sink = system.create_actor(r, node=2)

        def echo(ctx, message):
            ctx.send_to(message.reply_to, ("echo", message.payload))

        e = system.create_actor(echo, node=1)
        system.send_to(e, 42, reply_to=sink)
        system.run()
        assert r.received[0][1] == ("echo", 42)

    def test_messages_take_time(self):
        system = lan()
        r = Recorder()
        addr = system.create_actor(r, node=2)
        system.send_to(addr, "x")
        system.run()
        assert r.received[0][0] > 0  # LAN latency elapsed

    def test_become_changes_next_message_only(self):
        system = lan()
        log = []

        class First(Behavior):
            def receive(self, ctx, message):
                log.append(("first", message.payload))
                ctx.become(Second())
                log.append(("still-first", message.payload))

        class Second(Behavior):
            def receive(self, ctx, message):
                log.append(("second", message.payload))

        addr = system.create_actor(First())
        system.send_to(addr, 1)
        system.run()
        system.send_to(addr, 2)
        system.run()
        assert log == [("first", 1), ("still-first", 1), ("second", 2)]

    def test_create_from_within_actor(self):
        system = lan()
        results = []

        def child(ctx, message):
            results.append(message.payload)

        def parent(ctx, message):
            addr = ctx.create(child, node=2)
            ctx.send_to(addr, ("forwarded", message.payload))

        p = system.create_actor(parent)
        system.send_to(p, "data")
        system.run()
        assert results == [("forwarded", "data")]

    def test_schedule_delivers_later(self):
        system = lan()
        times = []

        def waiter(ctx, message):
            if message.payload == "start":
                ctx.schedule(5.0, "wake")
            else:
                times.append(ctx.now)

        addr = system.create_actor(waiter)
        system.send_to(addr, "start")
        system.run()
        assert times and times[0] >= 5.0

    def test_terminate_stops_delivery(self):
        system = lan()
        r = Recorder()

        class OneShot(Behavior):
            def receive(self, ctx, message):
                r.received.append((ctx.now, message.payload))
                ctx.terminate()

        addr = system.create_actor(OneShot())
        system.send_to(addr, 1)
        system.run()
        system.send_to(addr, 2)
        system.run()
        assert [p for _t, p in r.received] == [1]
        assert system.tracer.dropped["dead_letter"] >= 1

    def test_run_until_stops_clock(self):
        system = lan()
        addr = system.create_actor(Recorder())
        system.send_to(addr, "later")
        t = system.run(until=0.0001)
        assert t == 0.0001
        assert not system.idle  # event still queued
        system.run()
        assert system.idle


class TestPatternCommunication:
    def test_send_reaches_exactly_one(self):
        system = lan()
        recorders = [Recorder() for _ in range(3)]
        for i, r in enumerate(recorders):
            addr = system.create_actor(r, node=i)
            system.make_visible(addr, f"svc/s{i}")
        system.run()
        system.send("svc/*", "ping")
        system.run()
        total = sum(len(r.received) for r in recorders)
        assert total == 1

    def test_broadcast_reaches_all(self):
        system = lan()
        recorders = [Recorder() for _ in range(3)]
        for i, r in enumerate(recorders):
            addr = system.create_actor(r, node=i)
            system.make_visible(addr, f"svc/s{i}")
        system.run()
        system.broadcast("svc/*", "ping")
        system.run()
        assert all(len(r.received) == 1 for r in recorders)

    def test_actor_side_send_and_broadcast(self):
        system = lan()
        r = Recorder()
        target = system.create_actor(r, node=2)
        system.make_visible(target, "workers/w0")
        system.run()

        def sender(ctx, message):
            ctx.send("workers/*", ("job", 1))
            ctx.broadcast("workers/**", ("note", 2))

        s = system.create_actor(sender)
        system.send_to(s, "go")
        system.run()
        payloads = sorted(p for _t, p in r.received)
        assert payloads == [("job", 1), ("note", 2)]

    def test_make_invisible_removes_from_matching(self):
        system = lan()
        r = Recorder()
        addr = system.create_actor(r)
        system.make_visible(addr, "svc/a")
        system.run()
        system.make_invisible(addr, system.root_space)
        system.run()
        system.send("svc/*", "x", )
        system.run()
        assert r.received == []  # suspended, nobody matches
        assert system.tracer.suspended_count == 1

    def test_change_attributes(self):
        system = lan()
        r = Recorder()
        addr = system.create_actor(r)
        system.make_visible(addr, "old/name")
        system.run()
        system.change_attributes(addr, "new/name", system.root_space)
        system.run()
        system.send("new/name", "hit")
        system.run()
        assert len(r.received) == 1
        system.send("old/name", "miss")
        system.run()
        assert len(r.received) == 1


class TestSuspension:
    def test_send_suspends_until_match_appears(self):
        system = lan()
        system.send("late/arrival", "payload")
        system.run()
        assert system.tracer.suspended_count == 1
        r = Recorder()
        addr = system.create_actor(r)
        system.make_visible(addr, "late/arrival")
        system.run()
        assert [p for _t, p in r.received] == ["payload"]
        assert system.tracer.released_count == 1

    def test_broadcast_suspends_and_releases_to_all_current(self):
        system = lan()
        system.broadcast("team/**", "kickoff")
        system.run()
        recorders = [Recorder() for _ in range(3)]
        for i, r in enumerate(recorders):
            addr = system.create_actor(r, node=i)
            system.make_visible(addr, f"team/m{i}")
        system.run()
        got = sum(len(r.received) for r in recorders)
        # Default SUSPEND policy releases once, to then-visible members; at
        # least the first-registered member must have received it.
        assert got >= 1

    def test_discard_policy(self):
        system = ActorSpaceSystem(
            topology=Topology.lan(2), seed=0,
            root_manager_factory=lambda: SpaceManager(
                unmatched=UnmatchedPolicy.DISCARD),
        )
        system.send("ghost", "x")
        system.run()
        assert system.tracer.dropped["unmatched_discarded"] == 1
        assert system.tracer.suspended_count == 0

    def test_error_policy_raises_at_sender(self):
        system = ActorSpaceSystem(
            topology=Topology.lan(2), seed=0,
            root_manager_factory=lambda: SpaceManager(
                unmatched=UnmatchedPolicy.ERROR),
        )
        with pytest.raises(NoMatchError):
            system.send("ghost", "x")

    def test_persistent_broadcast_reaches_future_actors_exactly_once(self):
        system = ActorSpaceSystem(
            topology=Topology.lan(2), seed=0,
            root_manager_factory=lambda: SpaceManager(
                unmatched=UnmatchedPolicy.PERSISTENT),
        )
        system.broadcast("club/**", "standing-invite")
        system.run()
        early = Recorder()
        addr = system.create_actor(early)
        system.make_visible(addr, "club/early")
        system.run()
        late = Recorder()
        addr2 = system.create_actor(late, node=1)
        system.make_visible(addr2, "club/late")
        system.run()
        assert [p for _t, p in early.received] == ["standing-invite"]
        assert [p for _t, p in late.received] == ["standing-invite"]
        # Re-registering must not deliver again (exactly once).
        system.change_attributes(addr2, "club/renamed", system.root_space)
        system.run()
        assert len(late.received) == 1


class TestArbitration:
    def _distribute(self, arbitration, seed=0):
        system = ActorSpaceSystem(
            topology=Topology.lan(2), seed=seed,
            root_manager_factory=lambda: SpaceManager(arbitration=arbitration),
        )
        recorders = [Recorder() for _ in range(4)]
        for i, r in enumerate(recorders):
            addr = system.create_actor(r, node=i % 2)
            system.make_visible(addr, f"s/r{i}")
        system.run()
        for _ in range(40):
            system.send("s/*", "req")
        system.run()
        return [len(r.received) for r in recorders]

    def test_random_spreads(self):
        counts = self._distribute(Arbitration.RANDOM)
        assert sum(counts) == 40
        assert all(c > 0 for c in counts)

    def test_round_robin_is_even(self):
        counts = self._distribute(Arbitration.ROUND_ROBIN)
        assert counts == [10, 10, 10, 10]


class TestCapabilitiesAndCycles:
    def test_protected_space_rejects_wrong_key(self):
        system = lan()
        key = system.new_capability()
        vault = system.create_space(capability=key)
        system.run()
        addr = system.create_actor(Recorder())
        with pytest.raises(CapabilityError):
            system.make_visible(addr, "a", vault)
        with pytest.raises(CapabilityError):
            system.make_visible(addr, "a", vault, capability=Capability(123))
        system.make_visible(addr, "a", vault, capability=key)
        system.run()
        assert addr in system.directory_of(0).space(vault)

    def test_cycle_rejected_synchronously_when_known(self):
        system = lan()
        a = system.create_space()
        b = system.create_space()
        system.run()
        system.make_visible(b, "down", a)
        system.run()
        with pytest.raises(VisibilityCycleError):
            system.make_visible(a, "up", b)

    def test_racing_cycle_rejected_at_apply_time(self):
        """Two concurrent make_visible ops that individually pass the local
        pre-check but jointly close a cycle: the bus total order makes one
        of them lose, identically at every replica."""
        system = lan(nodes=2)
        a = system.create_space(node=0)
        b = system.create_space(node=1)
        system.run()
        # Submit both before either applies: neither local precheck can see
        # the other edge yet.
        system.coordinators[0].make_visible(b, "down", a)
        system.coordinators[1].make_visible(a, "up", b)
        system.run()
        d = system.directory_of(0)
        # Exactly one edge won.
        edges = int(b in d.space(a)) + int(a in d.space(b))
        assert edges == 1
        assert any(
            k.startswith("op_rejected:VisibilityCycleError")
            for k in system.tracer.dropped
        )
        assert system.replicas_coherent()


class TestCoherenceAndCrash:
    def test_replicas_converge_after_many_ops(self):
        system = lan(nodes=4, seed=3)
        for i in range(20):
            addr = system.create_actor(Recorder(), node=i % 4)
            system.make_visible(addr, f"a/n{i}", node=i % 4)
        system.run()
        assert system.replicas_coherent()
        ops = system.tracer.visibility_ops_applied
        assert len(set(ops.values())) == 1  # same op count everywhere

    def test_crashed_node_drops_messages(self):
        system = lan(nodes=3)
        r = Recorder()
        addr = system.create_actor(r, node=2)
        system.run()
        system.crash_node(2)
        system.send_to(addr, "lost")
        system.run()
        assert r.received == []
        assert system.tracer.dropped["node_down"] >= 1

    def test_recovered_node_receives_again(self):
        system = lan(nodes=3)
        r = Recorder()
        addr = system.create_actor(r, node=2)
        system.run()
        system.crash_node(2)
        system.send_to(addr, "lost")
        system.run()
        system.recover_node(2)
        system.send_to(addr, "found")
        system.run()
        # Self-healing delivery: the message dropped during the outage was
        # captured as a dead letter and redelivered on recovery, alongside
        # the post-recovery send.
        assert sorted(p for _t, p in r.received) == ["found", "lost"]
        assert system.dead_letters.redelivered_total == 1


class TestGcIntegration:
    def test_collects_orphan_actor(self):
        system = lan()
        keeper = system.create_actor(Recorder())
        orphan = system.create_actor(Recorder())
        system.run()
        system.release(orphan)  # driver drops its handle
        report = system.collect_garbage()
        assert orphan in report.collected_actors
        assert keeper in report.live_actors
        assert system.actor_record(orphan).terminated

    def test_visible_actor_survives_gc(self):
        system = lan()
        addr = system.create_actor(Recorder())
        system.make_visible(addr, "svc/x")
        system.run()
        system.release(addr)
        report = system.collect_garbage()
        # Visible in the root space (a permanent root): still live.
        assert addr not in report.collected_actors

    def test_space_collected_after_release(self):
        system = lan()
        space = system.create_space()
        system.run()
        system.release(space)
        report = system.collect_garbage()
        assert space in report.collected_spaces

    def test_root_space_never_collected(self):
        system = lan()
        report = system.collect_garbage()
        assert system.root_space not in report.collected_spaces


class TestTracing:
    def test_counts_by_mode(self):
        system = lan()
        r = Recorder()
        addr = system.create_actor(r)
        system.make_visible(addr, "a/b")
        system.run()
        system.send_to(addr, 1)
        system.send("a/*", 2)
        system.broadcast("a/**", 3)
        system.run()
        assert system.tracer.sent[Mode.DIRECT] == 1
        assert system.tracer.sent[Mode.SEND] == 1
        assert system.tracer.sent[Mode.BROADCAST] == 1
        assert sum(system.tracer.delivered.values()) == 3
        stats = system.tracer.latency_stats()
        assert stats["count"] == 3 and stats["mean"] > 0

    def test_load_distribution(self):
        system = lan()
        r = Recorder()
        addr = system.create_actor(r)
        system.send_to(addr, 1)
        system.send_to(addr, 2)
        system.run()
        assert system.tracer.load_distribution([addr]) == [2]


class TestResolutionCache:
    """The per-coordinator resolution cache, observed through the facade."""

    def test_repeated_sends_hit_the_cache(self):
        system = lan()
        r = Recorder()
        w = system.create_actor(r, node=0)
        system.make_visible(w, "workers/w1")
        system.run()
        for _ in range(5):
            system.send("workers/*", payload="job")
        system.run()
        stats = system.resolution_cache_stats(node=0)
        assert stats["hits"] >= 4
        assert system.tracer.cache_hits >= 4
        assert [p for _t, p in r.received] == ["job"] * 5

    def test_visibility_change_invalidates_then_rehits(self):
        system = lan()
        a, b = Recorder(), Recorder()
        wa = system.create_actor(a, node=0)
        system.make_visible(wa, "workers/a")
        system.run()
        system.broadcast("workers/*", payload=1)
        system.run()
        wb = system.create_actor(b, node=0)
        system.make_visible(wb, "workers/b")
        system.run()
        system.broadcast("workers/*", payload=2)
        system.run()
        assert [p for _t, p in a.received] == [1, 2]
        assert [p for _t, p in b.received] == [2]
        assert system.resolution_cache_stats()["invalidations"] >= 1

    def test_suspended_send_released_with_cache_in_the_loop(self):
        system = lan()
        system.send("late/*", payload="waiting")
        system.run()
        assert system.tracer.suspended_count == 1
        r = Recorder()
        w = system.create_actor(r, node=1)
        system.make_visible(w, "late/w")
        system.run()
        assert [p for _t, p in r.received] == ["waiting"]
        assert system.tracer.released_count == 1

    def test_introspective_resolve_uses_cache(self):
        system = lan()
        r = Recorder()
        w = system.create_actor(r, node=0)
        system.make_visible(w, "svc/a")
        system.run()
        assert system.resolve("svc/*") == [w]
        before = system.resolution_cache_stats(node=0)["hits"]
        assert system.resolve("svc/*") == [w]
        assert system.resolution_cache_stats(node=0)["hits"] == before + 1

    def test_replicas_stay_coherent_with_caching(self):
        system = lan(nodes=3)
        addrs = []
        for n in range(3):
            r = Recorder()
            addrs.append(system.create_actor(r, node=n))
            system.make_visible(addrs[-1], f"svc/n{n}", node=n)
        system.run()
        assert system.replicas_coherent()
        for n in range(3):
            assert system.resolve("svc/*", node=n) == sorted(addrs)
