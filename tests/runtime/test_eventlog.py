"""Tests: the causal flight recorder (event log, metrics, trace export)."""

import io
import json

import pytest

from repro.core.daemons import install_event_daemon, threshold_rule
from repro.core.messages import Mode
from repro.runtime.eventlog import (
    EventLog,
    JsonlSink,
    TraceEvent,
    chrome_trace,
    export_chrome_trace,
    validate_chrome_trace,
)
from repro.runtime.metrics import HistogramMetric, MetricsRegistry
from repro.runtime.network import Topology
from repro.runtime.node import Node
from repro.runtime.system import ActorSpaceSystem
from repro.runtime.tracing import Tracer


def traced_system(nodes=3, **kw):
    kw.setdefault("trace", True)
    return ActorSpaceSystem(topology=Topology.lan(nodes), seed=0, **kw)


class TestEventLog:
    def test_emit_and_query(self):
        log = EventLog()
        log.emit("sent", 0.5, 1, None, mode="send")
        log.emit("delivered", 1.0, 2, None)
        assert len(log) == 2
        assert [e.kind for e in log.by_kind("sent")] == ["sent"]
        assert log.by_kind("delivered")[0].node == 2

    def test_ring_buffer_evicts_oldest(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit("sent", float(i), 0, None, i=i)
        assert len(log) == 3
        assert [e.data["i"] for e in log] == [2, 3, 4]
        assert log.emitted_count == 5

    def test_disabled_emits_nothing(self):
        log = EventLog(enabled=False)
        assert log.emit("sent", 0.0, 0, None) is None
        assert len(log) == 0 and log.emitted_count == 0

    def test_subscriber_sees_events_and_unsubscribes(self):
        log = EventLog()
        seen = []
        unsubscribe = log.subscribe(seen.append)
        log.emit("sent", 0.0, 0, None)
        unsubscribe()
        log.emit("sent", 1.0, 0, None)
        assert len(seen) == 1

    def test_clear_keeps_sinks_and_subscribers(self):
        log = EventLog()
        sink = JsonlSink(io.StringIO())
        log.add_sink(sink)
        unsub = log.subscribe(lambda e: None)
        log.emit("sent", 0.0, 0, None)
        log.clear()
        assert len(log) == 0
        assert sink in log.sinks and len(log.subscribers) == 1
        unsub()

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_jsonl_sink_round_trips(self):
        buffer = io.StringIO()
        log = EventLog()
        log.add_sink(JsonlSink(buffer))
        log.emit("dropped", 1.25, 2, None, reason="dead_letter")
        record = json.loads(buffer.getvalue())
        assert record["kind"] == "dropped"
        assert record["data"]["reason"] == "dead_letter"
        assert record["t"] == 1.25


class TestCausality:
    def test_envelopes_carry_trace_ids(self):
        system = traced_system()
        echo = system.create_actor(lambda ctx, m: ctx.send_to(m.reply_to, "pong")
                                   if m.reply_to else None, node=1)
        probe = system.create_actor(lambda ctx, m: None, node=0)
        system.send_to(echo, "ping", reply_to=probe)
        system.run()
        sent = system.trace_events("sent")
        assert all(e.trace_id is not None for e in sent)
        # The reply's trace id is the original send's envelope id.
        roots = [e for e in sent if e.parent_id is None]
        replies = [e for e in sent if e.parent_id is not None]
        assert replies and replies[0].trace_id == roots[0].envelope_id

    def test_every_delivery_chains_back_to_a_sent_event(self):
        """Acceptance: each delivered envelope has a causal chain whose
        root has a ``sent`` event."""
        system = traced_system()

        def relay(ctx, m):
            hops_left = m.payload
            if hops_left > 0:
                ctx.send("ring/*", hops_left - 1)

        for i in range(3):
            addr = system.create_actor(relay, node=i)
            system.make_visible(addr, f"ring/r{i}")
        system.run()
        system.send("ring/*", 5)
        system.run()
        system.broadcast("ring/**", 0)
        system.run()

        log = system.event_log
        sent_ids = {e.envelope_id for e in log.by_kind("sent")}
        delivered = log.by_kind("delivered")
        assert delivered, "workload should deliver messages"
        for event in delivered:
            chain = log.causal_chain(event.envelope_id)
            assert chain[0] == event.envelope_id
            assert chain[-1] in sent_ids, (
                f"delivery of envelope {event.envelope_id} has no causal "
                f"chain back to a sent event (chain: {chain})"
            )

    def test_scheduled_self_messages_are_rooted(self):
        system = traced_system()

        def ticker(ctx, m):
            if m.payload < 2:
                ctx.schedule(0.1, m.payload + 1)

        addr = system.create_actor(ticker, node=0)
        system.send_to(addr, 0)
        system.run()
        scheduled = [e for e in system.trace_events("sent")
                     if e.data.get("scheduled")]
        assert len(scheduled) == 2
        assert all(e.parent_id is not None for e in scheduled)

    def test_suspension_release_events(self):
        system = traced_system()
        system.send("later/*", "wait-for-me")
        system.run()
        assert len(system.trace_events("suspended")) == 1
        addr = system.create_actor(lambda ctx, m: None, node=1)
        system.make_visible(addr, "later/now")
        system.run()
        released = system.trace_events("released")
        assert len(released) == 1
        assert released[0].data["parked_age"] >= 0
        assert len(system.trace_events("delivered")) == 1

    def test_visibility_and_bus_events(self):
        system = traced_system()
        addr = system.create_actor(lambda ctx, m: None, node=0)
        system.make_visible(addr, "x/y")
        system.run()
        ops = system.trace_events("visibility_op")
        # Every one of the 3 replicas applied the single MAKE_VISIBLE op.
        assert {e.node for e in ops} == {0, 1, 2}
        sequenced = system.trace_events("bus_sequenced")
        assert len(sequenced) == 1
        assert sequenced[0].data["op"] == "make_visible"

    def test_resolution_events_carry_cache_stats(self):
        system = traced_system()
        addr = system.create_actor(lambda ctx, m: None, node=0)
        system.make_visible(addr, "svc/a")
        system.run()
        system.send("svc/*", 1)
        system.send("svc/*", 2)
        system.run()
        resolved = system.trace_events("resolved")
        assert resolved
        assert any(e.data["cache_misses"] for e in resolved)
        assert all("entries_examined" in e.data for e in resolved)

    def test_tracing_disabled_by_default(self):
        system = ActorSpaceSystem(seed=0)
        addr = system.create_actor(lambda ctx, m: None)
        system.send_to(addr, "x")
        system.run()
        assert not system.event_log.enabled
        assert system.event_log.emitted_count == 0
        assert system.tracer.invocations == 1  # counters still work


class TestChromeTrace:
    def test_export_opens_as_valid_trace(self, tmp_path):
        system = traced_system()
        addr = system.create_actor(lambda ctx, m: None, node=2)
        system.make_visible(addr, "t/a")
        system.run()
        system.send("t/*", "hello")
        system.run()
        path = tmp_path / "run.trace.json"
        trace = system.export_trace(str(path))
        assert validate_chrome_trace(trace) == []
        reloaded = json.loads(path.read_text())
        phases = {r["ph"] for r in reloaded["traceEvents"]}
        assert {"M", "i", "X", "s", "f"} <= phases
        # One process-name track per node that emitted events.
        names = [r for r in reloaded["traceEvents"] if r["ph"] == "M"]
        assert {n["args"]["name"] for n in names} >= {"node 0", "node 2"}

    def test_in_flight_slices_span_latency(self):
        events = [
            TraceEvent(0, 1.0, "sent", 0, envelope_id=7, trace_id=7),
            TraceEvent(1, 3.0, "delivered", 1, envelope_id=7, trace_id=7,
                       data={"sent_at": 1.0, "mode": "send"}),
        ]
        trace = chrome_trace(events)
        slices = [r for r in trace["traceEvents"] if r["ph"] == "X"]
        assert len(slices) == 1
        assert slices[0]["ts"] == pytest.approx(1000.0)
        assert slices[0]["dur"] == pytest.approx(2000.0)

    def test_validator_flags_garbage(self):
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": []}) != []
        bad = {"traceEvents": [{"name": "x", "ph": "Z", "pid": 0, "ts": 0}]}
        assert any("phase" in p for p in validate_chrome_trace(bad))

    def test_export_helper_writes_file(self, tmp_path):
        path = tmp_path / "t.json"
        trace = export_chrome_trace(
            [TraceEvent(0, 0.0, "sent", 0, envelope_id=1, trace_id=1)],
            str(path))
        assert json.loads(path.read_text()) == trace


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        for v in [1.0, 2.0, 3.0, 4.0]:
            reg.histogram("h").observe(v)
        assert reg.counter("c").value == 3
        assert reg.gauge("g").value == 1.5
        assert reg.histogram("h").count == 4
        assert reg.histogram("h").percentile(50) == pytest.approx(2.5, abs=1.0)

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_histogram_reservoir_bounded(self):
        h = HistogramMetric("h", cap=100)
        for i in range(10_000):
            h.observe(float(i))
        assert h.count == 10_000
        assert len(h.samples) == 100
        # A uniform reservoir's median should land near the true median.
        assert 2000 < h.percentile(50) < 8000

    def test_snapshot_and_reset(self):
        reg = MetricsRegistry()
        counter = reg.counter("n")
        counter.inc(5)
        reg.labeled("by_kind")["a"] += 2
        snap = reg.snapshot()
        assert snap["n"] == 5
        assert snap["by_kind"] == {"a": 2}
        reg.reset()
        assert counter.value == 0  # zeroed in place, same object
        assert reg.counter("n") is counter


class TestTracerFacade:
    def test_legacy_counters_are_registry_views(self):
        tracer = Tracer()
        tracer.on_sent(Mode.SEND)
        tracer.invocations += 1
        snap = tracer.metrics_snapshot()
        assert snap["messages_sent_total"] == {str(Mode.SEND): 1}
        assert snap["behavior_invocations_total"] == 1
        assert tracer.sent[Mode.SEND] == 1

    def test_reset_preserves_sinks_and_subscribers(self):
        """Regression: reset() used to re-run __init__, dropping sinks."""
        log = EventLog()
        tracer = Tracer(log=log)
        sink = JsonlSink(io.StringIO())
        log.add_sink(sink)
        seen = []
        log.subscribe(seen.append)
        tracer.on_sent(Mode.SEND, t=1.0)
        tracer.reset()
        assert sink in tracer.log.sinks
        tracer.on_sent(Mode.SEND, t=2.0)
        assert sink.written == 2  # sink saw events on both sides of reset
        assert len(seen) == 2
        assert tracer.sent[Mode.SEND] == 1  # but counters were cleared

    def test_keep_samples_reservoir_cap(self):
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=0,
                                  keep_samples=16)
        sink = system.create_actor(lambda ctx, m: None, node=1)
        for i in range(200):
            system.send_to(sink, i)
        system.run()
        tracer = system.tracer
        assert len(tracer.samples) == 16
        assert tracer._samples_seen == 200
        assert sum(tracer.delivered.values()) == 200
        # Latency stats still computable from the reservoir.
        assert tracer.latency_stats()["count"] == 16

    def test_keep_samples_bool_behavior_unchanged(self):
        assert Tracer(keep_samples=True).keep_samples is True
        assert Tracer(keep_samples=False).keep_samples is False
        with pytest.raises(ValueError):
            Tracer(keep_samples=-1)
        with pytest.raises(ValueError):
            Tracer(keep_samples=2.5)


class TestEventDrivenDaemon:
    def _loaded_system(self):
        system = traced_system(nodes=2)
        space = system.create_space()
        workers = []
        for i in range(3):
            addr = system.create_actor(lambda ctx, m: None, node=i % 2)
            system.make_visible(addr, f"w{i}", space=space)
            workers.append(addr)
        system.run()
        return system, space, workers

    def test_requires_enabled_log(self):
        system = ActorSpaceSystem(seed=0)
        space = system.create_space()
        system.run()
        with pytest.raises(ValueError):
            install_event_daemon(system, space,
                                 [threshold_rule("load", "queue", 0)])

    def test_reacts_to_mailbox_edges(self):
        system, space, workers = self._loaded_system()
        daemon = install_event_daemon(
            system, space, [threshold_rule("load", "queue", 0)])
        for _ in range(4):
            system.send_to(workers[0], "job")
        system.run()
        assert daemon.reactions > 0
        assert daemon.updates > 0
        fired = system.trace_events("daemon_fired")
        assert any(e.data["trigger"] == "event" for e in fired)
        # After the queue drained, the daemon re-derived load/low.
        entry = system.coordinators[0].directory.space(space).lookup(workers[0])
        assert any(str(a) == "load/low" for a in entry.attributes)
        daemon.close()

    def test_close_detaches(self):
        system, space, workers = self._loaded_system()
        daemon = install_event_daemon(
            system, space, [threshold_rule("load", "queue", 0)])
        daemon.close()
        daemon.close()  # idempotent
        before = daemon.reactions
        system.send_to(workers[0], "job")
        system.run()
        assert daemon.reactions == before


class TestNodeTelemetry:
    def test_telemetry_snapshot(self):
        system = traced_system()
        addr = system.create_actor(lambda ctx, m: None, node=1)
        system.make_visible(addr, "a/b")
        system.run()
        view = Node(system, 1).telemetry()
        assert view["node"] == 1
        assert view["actors"] == 1
        assert view["queue_depth"] == 0
        assert view["visibility_ops_applied"] >= 1

    def test_system_metrics_snapshot_includes_gauges(self):
        system = traced_system()
        snap = system.metrics_snapshot()
        assert "queue_depth_node_0" in snap
        assert "in_flight" in snap
