"""Overload protection in the simulator: bounded mailboxes feeding the
DLQ, admission control at the door, and the circuit breaker.

The common shape: a slow actor (``processing_delay``) is offered more
traffic than it can drain.  The assertions are about *accounting*, not
throughput — at quiescence every offered envelope must be delivered or
visibly expired, with the shed path leaving typed events and counters
behind.  Nothing silently vanishes.
"""

import pytest

from repro.runtime.admission import AdmissionControl, CircuitBreaker, TokenBucket
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


def lan(nodes=3, seed=0, **kw):
    return ActorSpaceSystem(topology=Topology.lan(nodes), seed=seed, **kw)


class TestBoundedMailboxesInSystem:
    def test_overflow_sheds_into_dlq_and_load_levels(self):
        """Drop-oldest overflow is not loss: victims park in the DLQ and
        re-offer themselves as the actor drains (queue-based load
        leveling).  Conservation: received + expired == sent."""
        system = lan(mailbox_capacity=4, processing_delay=0.05)
        received = []
        addr = system.create_actor(lambda ctx, m: received.append(m.payload),
                                   node=1)
        sent = 24
        for i in range(sent):
            system.send_to(addr, i)
        system.run()
        record = system.actor_record(addr)
        assert record.mailbox.capacity == 4
        assert record.mailbox.shed_count > 0  # the bound actually bit
        assert system.tracer.dropped["mailbox_overflow"] > 0
        assert len(received) + system.dead_letters.expired_total == sent
        assert len(set(received)) == len(received)  # nothing doubled
        assert system.dead_letters.pending() == 0

    def test_suspend_sender_absorbs_burst_without_loss(self):
        """SUSPEND_SENDER defers instead of dropping: a burst within the
        stash budget is fully delivered, just later."""
        system = lan(mailbox_capacity=8, mailbox_policy="suspend-sender",
                     processing_delay=0.02)
        received = []
        addr = system.create_actor(lambda ctx, m: received.append(m.payload),
                                   node=1)
        for i in range(16):  # capacity + stash exactly absorb this
            system.send_to(addr, i)
        system.run()
        assert sorted(received) == list(range(16))
        assert system.actor_record(addr).mailbox.shed_count == 0
        assert system.dead_letters.queued_total == 0

    def test_default_capacity_is_invisible_at_normal_load(self):
        """Bounded-but-roomy: at sane traffic the bound changes nothing."""
        unbounded = lan(seed=7)
        bounded = lan(seed=7, mailbox_capacity=1024)
        results = []
        for system in (unbounded, bounded):
            received = []
            addr = system.create_actor(
                lambda ctx, m: received.append(m.payload), node=1)
            for i in range(64):
                system.send_to(addr, i)
            system.run()
            results.append(received)
        assert results[0] == results[1]
        assert bounded.dead_letters.queued_total == 0


class TestAdmissionControl:
    def test_token_bucket_refills_over_time(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now=0.0)
        assert bucket.try_take(0.0) and bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # burst exhausted
        assert bucket.try_take(0.1)      # one token back after 100ms
        assert not bucket.try_take(0.1)

    def test_rate_limit_sheds_at_the_door_with_full_accounting(self):
        system = lan(admission_rate=10.0, admission_burst=4.0,
                     processing_delay=0.001)
        received = []
        addr = system.create_actor(lambda ctx, m: received.append(m.payload),
                                   node=1)
        sent = 30
        for i in range(sent):
            system.send_to(addr, i)
        system.run()
        admission = system.admission
        assert admission is not None and admission.rejected_rate > 0
        assert system.metrics.counter(
            "overload_admission_rate_total").value == admission.rejected_rate
        # Rejected traffic was parked and re-offered, not lost: every
        # envelope is either delivered or visibly expired.
        assert len(received) + system.dead_letters.expired_total == sent
        assert len(set(received)) == len(received)
        assert system.dead_letters.pending() == 0

    def test_behavior_port_bypasses_admission(self):
        """Admission must never wedge an actor by refusing its next
        behavior: ``become`` traffic is exempt by port."""
        system = lan(admission_rate=0.000001, admission_burst=1.0)

        def flip(ctx, message):
            ctx.become(lambda c, m: received.append(m.payload))

        received = []
        addr = system.create_actor(flip, node=1)
        system.send_to(addr, "first")   # consumes the (0,1) route burst
        system.run()
        system.send_to(addr, "second")  # rejected at the door...
        system.run()
        assert system.admission.rejected_rate >= 1
        assert system.dead_letters.redelivered_total >= 1
        # ...then parked and re-offered via the destination's own route.
        # Had the BEHAVIOR-port become() envelope consumed that route's
        # only token, the redelivery would have expired instead — so
        # "second" arriving at the *flipped* behavior proves both the
        # exemption and the load-leveling path.
        assert received == ["second"]


class TestCircuitBreaker:
    def test_trips_on_sheds_and_recloses_after_cooldown(self):
        breaker = CircuitBreaker(threshold=3, window=1.0, cooldown=0.5)
        for t in (0.0, 0.1, 0.2):
            breaker.record_shed(t)
        assert not breaker.allow(0.2, saturated=False)
        assert breaker.open and breaker.trips == 1
        # Sheds still inside the 1s window keep re-arming the cooldown.
        assert not breaker.allow(1.0, saturated=False)
        # Sheds aged out, but only 0.3s quiet since the last re-arm.
        assert not breaker.allow(1.3, saturated=False)
        # Quiet past the cooldown: closes and admits.
        assert breaker.allow(1.6, saturated=False)
        assert not breaker.open

    def test_saturation_rearms_the_cooldown(self):
        breaker = CircuitBreaker(threshold=100, window=1.0, cooldown=0.5)
        assert not breaker.allow(0.0, saturated=True)
        assert not breaker.allow(0.4, saturated=True)  # re-armed at 0.4
        assert not breaker.allow(0.8, saturated=False)  # 0.4s quiet < cooldown
        assert breaker.allow(1.0, saturated=False)
        assert breaker.trips == 1  # one episode, not three

    def test_dlq_saturation_opens_the_breaker(self):
        system = lan(dlq_capacity=10, breaker_threshold=10 ** 6)
        addr = system.create_actor(lambda ctx, m: None, node=2)
        system.run()
        system.crash_node(2)
        for i in range(9):  # 9 >= 0.9 * capacity(10)
            system.send_to(addr, i)
        system.run()
        assert system.dead_letters.pending(2) == 9
        verdict = system.admission.check(0, 2, system.clock.now)
        assert verdict == "circuit_open"
        assert system.admission.metrics()["breakers_open"] == 1
        # Other destinations are unaffected.
        assert system.admission.check(0, 1, system.clock.now) is None

    def test_breaker_trip_emits_typed_events(self):
        system = lan(breaker_threshold=2, breaker_window=1.0,
                     breaker_cooldown=0.1, mailbox_capacity=2,
                     processing_delay=0.2)
        received = []
        addr = system.create_actor(lambda ctx, m: received.append(m.payload),
                                   node=1)
        sent = 40
        for i in range(sent):
            system.send_to(addr, i)
        system.run()
        admission = system.admission
        assert admission.rejected_breaker > 0
        assert admission.metrics()["breaker_trips"] >= 1
        assert system.metrics.counter("overload_circuit_open_total").value \
            == admission.rejected_breaker
        assert system.metrics.counter("overload_breaker_open_total").value >= 1
        # Conservation still holds through breaker sheds.
        assert len(received) + system.dead_letters.expired_total == sent
        assert system.dead_letters.pending() == 0


class TestDlqAttemptAccounting:
    def test_successful_redelivery_clears_attempt_records(self):
        """Regression: ``_attempts`` leaked one entry per *successfully*
        redelivered envelope (entries were added in ``_schedule`` but
        only removed on expiry), growing without bound under
        crash/recover churn."""
        system = lan()
        received = []
        addr = system.create_actor(lambda ctx, m: received.append(m.payload),
                                   node=2)
        system.run()
        for round_no in range(3):
            system.crash_node(2)
            system.send_to(addr, round_no)
            system.run()
            assert system.dead_letters.pending(2) == 1
            system.recover_node(2)
            system.run()
            assert received[-1] == round_no
        assert system.dead_letters.redelivered_total == 3
        assert system.dead_letters.pending() == 0
        assert system.dead_letters._attempts == {}

    def test_attempts_survive_overload_recapture_cycles(self):
        """The fix must not reset attempts for envelopes that keep being
        shed: a permanently-refused envelope still expires instead of
        looping forever."""
        system = lan(mailbox_capacity=1, mailbox_policy="drop-newest",
                     processing_delay=100.0)  # effectively never drains
        addr = system.create_actor(lambda ctx, m: None, node=1)
        for i in range(8):
            system.send_to(addr, i)
        system.run(until=50.0)
        # Everything beyond the single mailbox slot cycled shed->DLQ->
        # shed until max_redeliveries, then expired.  Bounded, done.
        assert system.dead_letters.expired_total == 7
        assert system.dead_letters.pending() == 0
        assert system.dead_letters._attempts == {}


class TestTerminationLeftovers:
    def test_closed_mailbox_leftovers_are_dead_lettered(self):
        """Regression: ``Mailbox.close()`` returns the still-queued mail,
        but ``terminate_actor`` discarded it after logging — terminated-
        actor mail now lands in the DLQ like every other undeliverable."""
        system = lan(processing_delay=0.5)

        def quit_on_first(ctx, message):
            ctx.terminate()

        addr = system.create_actor(quit_on_first, node=1)
        for i in range(5):
            system.send_to(addr, i)
        system.run()
        # First message terminates the actor; the other four were queued
        # behind it (processing_delay kept them waiting) and must be
        # captured, not vanished.
        letters = list(system.dead_letters.letters())
        assert len(letters) == 4
        assert all(l.reason == "mailbox_closed" for l in letters)
        assert system.dead_letters.queued_total == 4
