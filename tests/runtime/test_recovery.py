"""Tests: coordinator recovery via bus-log state transfer."""

import pytest

from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


def lan(nodes=3, seed=0, **kw):
    return ActorSpaceSystem(topology=Topology.lan(nodes), seed=seed, **kw)


class TestRecoveryStateTransfer:
    def test_recovered_replica_reconverges(self):
        system = lan()
        r_before = system.create_actor(lambda ctx, m: None, node=0)
        system.make_visible(r_before, "svc/pre")
        system.run()
        system.crash_node(2)
        # Visibility churn while node 2 is down.
        addrs = []
        for i in range(5):
            a = system.create_actor(lambda ctx, m: None, node=i % 2)
            system.make_visible(a, f"svc/during{i}")
            addrs.append(a)
        system.make_invisible(r_before, system.root_space)
        system.run()
        assert not system.replicas_coherent() or system.coordinators[2].crashed
        system.recover_node(2)
        system.run()
        assert system.replicas_coherent()
        d2 = system.directory_of(2)
        root = d2.space(system.root_space)
        assert r_before not in root
        for a in addrs:
            assert a in root

    def test_recovery_then_new_ops_stay_ordered(self):
        system = lan()
        system.crash_node(1)
        a = system.create_actor(lambda ctx, m: None, node=0)
        system.make_visible(a, "one")
        system.run()
        system.recover_node(1)
        # New churn immediately after recovery interleaves with replay.
        b = system.create_actor(lambda ctx, m: None, node=2)
        system.make_visible(b, "two")
        system.change_attributes(a, "one-renamed", system.root_space)
        system.run()
        assert system.replicas_coherent()

    def test_replay_is_idempotent_for_duplicate_seqs(self):
        system = lan()
        a = system.create_actor(lambda ctx, m: None, node=0)
        system.make_visible(a, "x")
        system.run()
        applied_before = system.tracer.visibility_ops_applied[1]
        # Redundant replay of everything to a live node: hold-back dedupes.
        system.bus.replay_to(1, 0)
        system.run()
        assert system.tracer.visibility_ops_applied[1] == applied_before
        assert system.replicas_coherent()

    def test_pattern_sends_work_after_recovery(self):
        system = lan()
        got = []
        system.crash_node(2)
        addr = system.create_actor(lambda ctx, m: got.append(m.payload),
                                   node=0)
        system.make_visible(addr, "late/svc")
        system.run()
        system.recover_node(2)
        system.run()
        # Resolve from the recovered node's replica.
        system.send("late/*", "hello", node=2)
        system.run()
        assert got == ["hello"]

    def test_bus_log_grows_with_ops(self):
        system = lan()
        for i in range(4):
            a = system.create_actor(lambda ctx, m: None)
            system.make_visible(a, f"n{i}")
        system.run()
        assert len(system.bus.log) == 4  # 4 make_visible ops sequenced
