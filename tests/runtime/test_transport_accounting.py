"""Per-instance transport accounting and its metrics surface.

``attempts``/``drops`` were once class attributes — a subclass that
forgot its own assignments silently accumulated counts on the class,
shared across every system in the process.  These tests pin the fixed
contract: counters live on the instance, start at zero, and show up in
``ActorSpaceSystem.metrics_snapshot`` as ``transport_*`` gauges.
"""

import numpy as np

from repro.runtime.network import Network, Topology
from repro.runtime.system import ActorSpaceSystem
from repro.runtime.transport import (
    InstantTransport,
    LossyTransport,
    NetworkTransport,
    Transport,
)


def _network(nodes=2, seed=0):
    return Network(Topology.lan(nodes), rng=np.random.default_rng(seed))


def test_counters_start_at_zero_per_instance():
    first, second = InstantTransport(), InstantTransport()
    first.try_deliver(0, 1)
    first.try_deliver(0, 1)
    assert (first.attempts, first.drops) == (2, 0)
    assert (second.attempts, second.drops) == (0, 0)
    assert "attempts" not in vars(Transport)  # never shared class state


def test_lossy_transport_counts_both_layers():
    lossy = LossyTransport(
        NetworkTransport(_network()), loss=0.99,
        rng=np.random.default_rng(1))
    drops = sum(lossy.try_deliver(0, 1) is None for _ in range(50))
    assert drops >= 1  # at 99% loss, 50 attempts cannot all succeed
    assert lossy.attempts == 50 and lossy.drops == drops
    snapshot = lossy.metrics_snapshot()
    assert snapshot["attempts"] == 50 and snapshot["drops"] == drops
    # The wrapped layer only sees attempts the lossy layer let through.
    assert snapshot["inner"]["attempts"] == 50 - drops


def test_system_metrics_surface_transport_counters():
    system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)
    system.create_actor(lambda ctx, message: None, node=0)
    b = system.create_actor(lambda ctx, message: None, node=1)
    system.send_to(b, "hello")
    system.run()
    metrics = system.metrics_snapshot()
    assert metrics["transport_attempts"] >= 1
    assert metrics["transport_drops"] == 0
    assert metrics["transport_attempts"] == system.transport.attempts

    # A second system's transport starts from zero: no class-level bleed.
    fresh = ActorSpaceSystem(topology=Topology.lan(2), seed=1)
    assert fresh.transport.attempts == 0
