"""Unit tests: topology and latency model."""

import numpy as np
import pytest

from repro.runtime.network import LatencyModel, LinkKind, Network, Topology


class TestTopology:
    def test_single(self):
        t = Topology.single()
        assert t.node_count == 1
        assert t.link_kind(0, 0) is LinkKind.LOCAL

    def test_lan(self):
        t = Topology.lan(4)
        assert t.node_count == 4
        assert t.cluster_count == 1
        assert t.link_kind(0, 3) is LinkKind.LAN
        assert t.link_kind(2, 2) is LinkKind.LOCAL

    def test_wan(self):
        t = Topology.wan(2, 3)
        assert t.node_count == 5
        assert t.cluster_of(0) == 0
        assert t.cluster_of(1) == 0
        assert t.cluster_of(2) == 1
        assert t.link_kind(0, 1) is LinkKind.LAN
        assert t.link_kind(1, 2) is LinkKind.WAN
        assert t.cluster_nodes(1) == [2, 3, 4]

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            Topology([])
        with pytest.raises(ValueError):
            Topology([0])


class TestLatencyModel:
    def test_class_ordering(self):
        m = LatencyModel()
        assert m.local < m.lan < m.wan

    def test_sample_within_jitter_bounds(self):
        m = LatencyModel(jitter=0.25)
        rng = np.random.default_rng(0)
        for _ in range(200):
            v = m.sample(LinkKind.LAN, rng)
            assert 0.75 * m.lan <= v <= 1.25 * m.lan

    def test_zero_jitter_is_exact(self):
        m = LatencyModel(jitter=0.0)
        rng = np.random.default_rng(0)
        assert m.sample(LinkKind.WAN, rng) == m.wan


class TestNetwork:
    def test_latency_counts_hops_by_kind(self):
        net = Network(Topology.wan(2, 2), rng=np.random.default_rng(0))
        net.latency(0, 1)  # LAN
        net.latency(0, 2)  # WAN
        net.latency(3, 3)  # LOCAL
        assert net.hop_counts[LinkKind.LAN] == 1
        assert net.hop_counts[LinkKind.WAN] == 1
        assert net.hop_counts[LinkKind.LOCAL] == 1
        net.reset_counts()
        assert sum(net.hop_counts.values()) == 0

    def test_wan_latency_dominates_lan(self):
        net = Network(Topology.wan(2, 2), rng=np.random.default_rng(1))
        lan = np.mean([net.latency(0, 1) for _ in range(100)])
        wan = np.mean([net.latency(0, 2) for _ in range(100)])
        assert wan > 5 * lan
