"""Regression: state transfer from disk when no live replica can source.

``Bus.replay_to`` used to hard-error with ``NodeDownError`` whenever ops
were pending and every other replica was down — even though, with a
store attached, the recovering node holds every op on its own disk.
The storeless behavior is preserved (it is the honest answer when the
log exists only in live memory); the store-backed bus now falls back to
the persisted log instead.
"""

import pytest

from repro.core.errors import NodeDownError
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.store import NodeStore


def noop(ctx, message):
    pass


def small_workload(system):
    for node in (0, 1):
        actor = system.create_actor(noop, node=node)
        system.make_visible(actor, f"svc/n{node}")
    system.run()


class TestDiskReplayFallback:
    def test_storeless_total_outage_still_hard_errors(self):
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)
        small_workload(system)
        system.crash_node(0)
        system.crash_node(1)
        with pytest.raises(NodeDownError):
            system.bus.replay_to(1, 0)

    def test_live_source_is_still_preferred(self, tmp_path):
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)
        system.bus.store = NodeStore(str(tmp_path))
        small_workload(system)
        system.bus.replay_to(1, 0)  # node 0 lives: ordinary transfer
        assert system.bus.disk_replays == 0
        system.bus.store.close()

    def test_fresh_process_replays_from_disk(self, tmp_path):
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)
        store = NodeStore(str(tmp_path))
        system.bus.store = store
        small_workload(system)
        expected = system.directory_of(1).snapshot()
        n_ops = len(system.bus.log)
        assert n_ops > 0
        store.close()

        # A fresh incarnation: empty in-memory log, everything on disk,
        # and a total outage — the exact case that used to be fatal.
        system2 = ActorSpaceSystem(topology=Topology.lan(2), seed=0)
        store2 = NodeStore(str(tmp_path))
        system2.bus.store = store2
        system2.crash_node(0)
        system2.crash_node(1)
        count = system2.bus.replay_to(1, 0)
        assert count == n_ops
        assert system2.bus.disk_replays == 1
        # The replica comes back and drains the scheduled deliveries.
        system2.coordinators[1].crashed = False
        system2.run()
        assert system2.directory_of(1).snapshot() == expected
        store2.close()

    def test_disk_replay_respects_from_seq(self, tmp_path):
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)
        store = NodeStore(str(tmp_path))
        system.bus.store = store
        small_workload(system)
        n_ops = len(system.bus.log)
        system.crash_node(0)
        system.crash_node(1)
        count = system.bus.replay_to(1, n_ops - 1)
        assert count == 1
        store.close()
