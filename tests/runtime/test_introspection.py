"""Tests: the system's introspection API (resolve / visible_attributes)."""

from repro.core.atoms import AttributePath
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


def build():
    system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)
    a = system.create_actor(lambda ctx, m: None, node=0)
    b = system.create_actor(lambda ctx, m: None, node=1)
    system.make_visible(a, "svc/a")
    system.make_visible(b, ["svc/b", "aux/b"])
    system.run()
    return system, a, b


class TestResolve:
    def test_resolves_sorted_matches(self):
        system, a, b = build()
        assert system.resolve("svc/*") == sorted([a, b])
        assert system.resolve("svc/a") == [a]
        assert system.resolve("aux/*") == [b]
        assert system.resolve("none/*") == []

    def test_resolve_is_pure(self):
        system, a, b = build()
        before = sum(system.tracer.sent.values())
        system.resolve("svc/*")
        assert sum(system.tracer.sent.values()) == before

    def test_resolve_in_named_space(self):
        system, a, b = build()
        space = system.create_space()
        system.run()
        system.make_visible(a, "inner", space)
        system.run()
        assert system.resolve("inner", space) == [a]
        assert system.resolve("inner") == []

    def test_resolve_against_specific_replica(self):
        system, a, b = build()
        assert system.resolve("svc/*", node=1) == sorted([a, b])


class TestVisibleAttributes:
    def test_returns_registered_attributes(self):
        system, a, b = build()
        attrs = system.visible_attributes(b)
        assert attrs == frozenset(
            {AttributePath("svc/b"), AttributePath("aux/b")}
        )

    def test_unregistered_target_is_empty(self):
        system, a, b = build()
        c = system.create_actor(lambda ctx, m: None)
        assert system.visible_attributes(c) == frozenset()

    def test_destroyed_space_is_empty(self):
        system, a, b = build()
        space = system.create_space()
        system.run()
        system.make_visible(a, "x", space)
        system.run()
        system.destroy_space(space)
        system.run()
        assert system.visible_attributes(a, space) == frozenset()
