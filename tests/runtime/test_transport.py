"""Unit tests: transports, loss, crash injection."""

import numpy as np
import pytest

from repro.core.errors import NodeDownError
from repro.runtime.network import Network, Topology
from repro.runtime.transport import (
    InstantTransport,
    LossyTransport,
    NetworkTransport,
)


def network_transport():
    return NetworkTransport(Network(Topology.lan(3), rng=np.random.default_rng(0)))


class TestInstantTransport:
    def test_fixed_latency(self):
        t = InstantTransport(0.5)
        assert t.try_deliver(0, 1) == 0.5
        assert t.deliver_latency(0, 1) == 0.5


class TestNetworkTransport:
    def test_delivery_uses_network(self):
        t = network_transport()
        assert t.deliver_latency(0, 1) > 0
        assert t.attempts == 1

    def test_crash_blocks_delivery(self):
        t = network_transport()
        t.crash_node(2)
        with pytest.raises(NodeDownError):
            t.deliver_latency(0, 2)
        with pytest.raises(NodeDownError):
            t.deliver_latency(2, 0)
        t.recover_node(2)
        assert t.deliver_latency(0, 2) > 0

    def test_try_deliver_counts_drops_for_crashed(self):
        t = network_transport()
        t.crash_node(1)
        assert t.try_deliver(0, 1) is None
        assert t.drops == 1


class TestLossyTransport:
    def test_loss_rate_is_respected(self):
        inner = InstantTransport(0.1)
        t = LossyTransport(inner, 0.5, np.random.default_rng(0))
        results = [t.try_deliver(0, 1) for _ in range(1000)]
        drop_rate = sum(r is None for r in results) / len(results)
        assert 0.4 < drop_rate < 0.6

    def test_retransmission_guarantees_delivery(self):
        """Eventual delivery (section 5.6) survives heavy loss."""
        t = LossyTransport(InstantTransport(0.1), 0.9, np.random.default_rng(1))
        for _ in range(50):
            total = t.deliver_latency(0, 1)
            assert total >= 0.1  # at least the successful attempt

    def test_retries_add_latency(self):
        rng = np.random.default_rng(2)
        lossless = InstantTransport(0.1)
        lossy = LossyTransport(InstantTransport(0.1), 0.8, rng)
        base = np.mean([lossless.deliver_latency(0, 1) for _ in range(200)])
        noisy = np.mean([lossy.deliver_latency(0, 1) for _ in range(200)])
        assert noisy > base

    def test_invalid_loss_rejected(self):
        with pytest.raises(ValueError):
            LossyTransport(InstantTransport(), 1.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            LossyTransport(InstantTransport(), -0.1, np.random.default_rng(0))

    def test_total_loss_raises_after_max_retries(self):
        class BlackHole(InstantTransport):
            def try_deliver(self, src, dst):
                return None

        with pytest.raises(RuntimeError):
            BlackHole().deliver_latency(0, 1, max_retries=5)
