"""Unit tests: failure detector, quarantine, dead letters, bus failover."""

import numpy as np
import pytest

from repro.core.errors import NodeDownError
from repro.runtime.bus import OpKind, SequencerBus, TokenRingBus, VisibilityOp
from repro.runtime.clock import VirtualClock
from repro.runtime.events import EventQueue
from repro.runtime.network import Network, Topology
from repro.runtime.system import ActorSpaceSystem
from repro.runtime.transport import NetworkTransport


def lan(nodes=3, seed=0, **kw):
    return ActorSpaceSystem(topology=Topology.lan(nodes), seed=seed, **kw)


def harness(bus_cls, nodes=4, **kw):
    clock = VirtualClock()
    events = EventQueue()
    transport = NetworkTransport(
        Network(Topology.lan(nodes), rng=np.random.default_rng(0))
    )
    bus = bus_cls(list(range(nodes)), events, clock, transport, **kw)
    deliveries: dict[int, list[tuple[int, int]]] = {n: [] for n in range(nodes)}
    bus.deliver = lambda node, seq, op: deliveries[node].append((seq, op.op_id))

    def run():
        while events:
            t, action = events.pop()
            clock.advance_to(t)
            action()

    return bus, transport, deliveries, run


def op(origin, origin_seq):
    return VisibilityOp(OpKind.MAKE_VISIBLE, {}, origin, origin_seq)


class TestFailureDetector:
    def test_suspects_then_confirms_crashed_peer(self):
        system = lan(nodes=3)
        detector = system.start_failure_detector(
            10.0, interval=0.5, suspect_after=2, confirm_after=4
        )
        system.crash_node(2)
        system.run(until=0.6)  # one tick: one miss — not yet suspected
        assert 2 not in detector.suspected_by(0)
        system.run(until=1.1)  # second tick: suspected
        assert 2 in detector.suspected_by(0)
        assert 2 not in detector.confirmed_down
        system.run(until=2.1)  # fourth tick: confirmed
        assert 2 in detector.confirmed_down
        assert system.metrics.counter("node_suspected_total").value >= 1
        assert system.metrics.counter("node_confirmed_down_total").value == 1

    def test_detector_is_horizon_bounded(self):
        system = lan(nodes=2)
        detector = system.start_failure_detector(2.0, interval=0.5)
        system.run()  # must reach quiescence despite the periodic timer
        assert system.idle
        assert detector.ticks == 4

    def test_confirmation_quarantines_on_all_live_replicas(self):
        system = lan(nodes=3)
        addr = system.create_actor(lambda ctx, m: None, node=2)
        system.make_visible(addr, "svc/a")
        system.run()
        assert system.resolve("svc/*") == [addr]
        system.crash_node(2)
        system.start_failure_detector(5.0, interval=0.5, confirm_after=3)
        system.run()
        for node in (0, 1):
            assert system.resolve("svc/*", node=node) == []
            assert 2 in system.directory_of(node).quarantined_nodes
        assert system.tracer.quarantined_entries >= 2  # one entry x 2 replicas

    def test_recovery_unmasks_and_resets_detector(self):
        system = lan(nodes=3)
        addr = system.create_actor(lambda ctx, m: None, node=2)
        system.make_visible(addr, "svc/a")
        system.run()
        system.crash_node(2)
        detector = system.start_failure_detector(5.0, interval=0.5, confirm_after=2)
        system.run()
        assert system.resolve("svc/*") == []
        system.recover_node(2)
        assert detector.confirmed_down == set()
        for node in (0, 1, 2):
            assert system.directory_of(node).quarantined_nodes == frozenset()
        assert system.resolve("svc/*") == [addr]
        assert system.metrics.counter("node_recovered_total").value >= 1

    def test_quarantine_invalidates_cached_resolutions(self):
        """The PR-1 cache must not serve pre-quarantine results."""
        system = lan(nodes=3)
        dead = system.create_actor(lambda ctx, m: None, node=2)
        alive = system.create_actor(lambda ctx, m: None, node=1)
        system.make_visible(dead, "svc/a")
        system.make_visible(alive, "svc/b")
        system.run()
        assert set(system.resolve("svc/*")) == {dead, alive}  # cache filled
        directory = system.directory_of(0)
        space_epoch = directory.space(system.root_space).epoch
        dir_epoch = directory.epoch
        system.crash_node(2)
        system.start_failure_detector(5.0, interval=0.5, confirm_after=2)
        system.run()
        # Both epoch tiers moved, so the cached entry cannot validate.
        assert directory.epoch > dir_epoch
        assert directory.space(system.root_space).epoch > space_epoch
        assert system.resolve("svc/*") == [alive]

    def test_detector_parameter_validation(self):
        system = lan(nodes=2)
        from repro.runtime.failure import FailureDetector

        with pytest.raises(ValueError):
            FailureDetector(system, interval=0.0)
        with pytest.raises(ValueError):
            FailureDetector(system, suspect_after=3, confirm_after=2)


class TestDeadLetterQueue:
    def test_capture_and_redeliver_on_recovery(self):
        system = lan(nodes=3)
        received = []
        addr = system.create_actor(lambda ctx, m: received.append(m.payload),
                                   node=2)
        system.run()
        system.crash_node(2)
        system.send_to(addr, "during-outage")
        system.run()
        assert received == []
        assert system.dead_letters.pending(2) == 1
        system.recover_node(2)
        system.run()
        assert received == ["during-outage"]
        assert system.dead_letters.pending() == 0
        assert system.dead_letters.redelivered_total == 1
        assert system.metrics.counter("dead_letters_redelivered_total").value == 1

    def test_bounded_capacity_expires_oldest(self):
        system = lan(nodes=3, dlq_capacity=2)
        addr = system.create_actor(lambda ctx, m: None, node=2)
        system.run()
        system.crash_node(2)
        for i in range(5):
            system.send_to(addr, i)
        system.run()
        assert system.dead_letters.pending(2) == 2
        assert system.dead_letters.expired_total == 3
        assert system.dead_letters.queued_total == 5

    def test_max_redeliveries_expires_letter(self):
        system = lan(nodes=3, dlq_max_redeliveries=1)
        received = []
        addr = system.create_actor(lambda ctx, m: received.append(m.payload),
                                   node=2)
        system.run()
        system.crash_node(2)
        system.send_to(addr, "doomed")
        system.run()
        # Flush schedules the (only allowed) redelivery, but the node dies
        # again before the backoff elapses — the letter must expire, not loop.
        system.recover_node(2)
        system.crash_node(2)
        system.run()
        assert system.dead_letters.expired_total == 1
        assert system.dead_letters.pending() == 0
        system.recover_node(2)
        system.run()
        assert received == []

    def test_redelivery_backoff_is_capped_exponential(self):
        system = lan(nodes=2)
        dlq = system.dead_letters
        assert dlq.base_backoff * 2 ** 0 == dlq.base_backoff
        # The schedule delay for a letter with many attempts is capped.
        from repro.runtime.failure import DeadLetter
        from repro.core.messages import Envelope, Message, Mode, Port

        letter = DeadLetter(
            Envelope(message=Message("x"), sender=None, mode=Mode.DIRECT,
                     target=None, port=Port.INVOCATION, sent_at=0.0),
            dst_node=1, reason="node_down", queued_at=0.0, attempts=20,
        )
        before = system.clock.now
        dlq._schedule(letter)
        t_next = system.events.peek_time()
        assert t_next is not None
        assert t_next - before <= dlq.max_backoff + 1e-9

    def test_dead_letter_capture_is_additive_to_drop_counters(self):
        system = lan(nodes=3)
        addr = system.create_actor(lambda ctx, m: None, node=2)
        system.run()
        system.crash_node(2)
        system.send_to(addr, "x")
        system.run()
        assert system.tracer.dropped["node_down"] == 1  # unchanged semantics
        assert system.dead_letters.queued_total == 1


class TestSequencerFailover:
    def test_submit_never_raises_when_sequencer_down(self):
        bus, transport, deliveries, run = harness(SequencerBus)
        transport.crash_node(0)  # the default sequencer
        bus.submit(op(1, 0))  # must not raise NodeDownError
        run()
        assert bus.sequencer_node != 0
        assert bus.failovers >= 1
        for node in (1, 2, 3):
            assert len(deliveries[node]) == 1

    def test_sequencer_crash_mid_run_reelects_and_redrives(self):
        bus, transport, deliveries, run = harness(SequencerBus)
        bus.submit(op(1, 0))
        run()
        transport.crash_node(0)
        bus.on_node_down(0)
        bus.submit(op(2, 0))
        bus.submit(op(1, 1))
        run()
        assert bus.sequencer_node == 1
        live_seen = {node: sorted(deliveries[node]) for node in (1, 2, 3)}
        assert all(len(seen) == 3 for seen in live_seen.values())
        assert live_seen[1] == live_seen[2] == live_seen[3]
        seqs = [s for s, _ in live_seen[1]]
        assert seqs == [0, 1, 2]  # gap-free across the failover

    def test_failover_in_system_keeps_replicas_coherent(self):
        system = lan(nodes=4)
        a = system.create_actor(lambda ctx, m: None, node=1)
        system.make_visible(a, "pre", node=1)
        system.run()
        system.crash_node(0)  # the sequencer
        b = system.create_actor(lambda ctx, m: None, node=2)
        system.make_visible(b, "post", node=2)
        system.run()
        root = system.directory_of(1).space(system.root_space)
        assert a in root and b in root
        assert system.bus.failovers >= 1
        system.recover_node(0)
        system.run()
        assert system.replicas_coherent()

    def test_total_outage_parks_then_recovers(self):
        bus, transport, deliveries, run = harness(SequencerBus, nodes=2)
        transport.crash_node(0)
        transport.crash_node(1)
        bus.submit(op(0, 0))  # origin down: lost with its node
        run()
        assert all(not seen for seen in deliveries.values())


class TestTokenRingFailover:
    def test_crashed_initial_holder_regenerates_token(self):
        bus, transport, deliveries, run = harness(TokenRingBus)
        transport.crash_node(0)  # holder index starts at node 0
        bus.submit(op(1, 0))
        run()  # must not raise out of the loop
        assert bus.failovers >= 1
        for node in (1, 2, 3):
            assert len(deliveries[node]) == 1

    def test_crashed_next_holder_does_not_kill_token_pass(self):
        """The satellite bugfix: deliver_latency(holder, next) is guarded."""
        bus, transport, deliveries, run = harness(TokenRingBus)
        bus.submit(op(0, 0))
        transport.crash_node(1)  # next holder after node 0
        bus.submit(op(2, 0))
        run()
        assert len(deliveries[0]) == 2
        assert len(deliveries[2]) == 2

    def test_pending_ops_at_crashed_node_do_not_spin_forever(self):
        bus, transport, deliveries, run = harness(TokenRingBus)
        bus.submit(op(1, 0))
        transport.crash_node(1)
        run()  # terminates: the parked op must not keep the token alive
        assert all(not seen for seen in deliveries.values())
        transport.recover_node(1)
        bus.on_node_recovered(1)
        run()
        for node in range(4):
            assert len(deliveries[node]) == 1

    def test_token_ring_crash_in_system_never_escapes(self):
        system = lan(nodes=4, bus="token-ring")
        a = system.create_actor(lambda ctx, m: None, node=1)
        system.make_visible(a, "pre", node=1)
        system.run()
        system.crash_node(0)
        b = system.create_actor(lambda ctx, m: None, node=2)
        system.make_visible(b, "post", node=2)
        system.run()  # no NodeDownError out of the event loop
        root = system.directory_of(2).space(system.root_space)
        assert a in root and b in root
        system.recover_node(0)
        system.run()
        assert system.replicas_coherent()


class TestReplayLiveSource:
    def test_replay_prefers_a_live_source(self):
        system = lan(nodes=3)
        system.run()
        system.crash_node(2)
        a = system.create_actor(lambda ctx, m: None, node=1)
        system.make_visible(a, "x", node=1)
        system.run()  # node 2 misses these ops
        system.crash_node(0)  # the historical fixed replay source
        system.recover_node(2)  # must source from node 1, not dead node 0
        system.run()
        assert a in system.directory_of(2).space(system.root_space)
        system.recover_node(0)
        system.run()
        assert system.replicas_coherent()

    def test_replay_with_no_live_source_raises(self):
        system = lan(nodes=2)
        a = system.create_actor(lambda ctx, m: None, node=0)
        system.make_visible(a, "x")
        system.run()
        system.crash_node(0)
        system.crash_node(1)
        with pytest.raises(NodeDownError):
            system.bus.replay_to(1, 0)

    def test_replay_with_empty_log_is_a_noop(self):
        system = lan(nodes=2)
        system.crash_node(0)
        system.crash_node(1)
        assert system.bus.replay_to(1, 0) == 0  # nothing pending: no raise
