"""Tests: table rendering and statistics helpers."""

import pytest

from repro.util.stats import (
    chi_square_uniform,
    coefficient_of_variation,
    gini,
    summarize,
)
from repro.util.tables import TextTable


class TestTextTable:
    def test_renders_aligned_columns(self):
        t = TextTable(["name", "value"], title="demo")
        t.add_row(["alpha", 1])
        t.add_row(["b", 123.456])
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[2] and "value" in lines[2]
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all body lines equal width

    def test_float_formatting(self):
        t = TextTable(["x"])
        t.add_row([0.00001234])
        t.add_row([1234567.0])
        t.add_row([1.5])
        body = t.render()
        assert "1.23e-05" in body
        assert "1.23e+06" in body
        assert "1.5" in body

    def test_row_width_checked(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_render_parse_round_trip(self):
        t = TextTable(["name", "count", "ratio"], title="round trip")
        t.add_row(["alpha", 10, 0.5])
        t.add_row(["beta", 2000, 1.25])
        parsed = TextTable.parse(t.render())
        assert parsed.title == "round trip"
        assert parsed.columns == t.columns
        assert parsed.rows == t.rows
        # Idempotent: rendering the parsed table parses identically again.
        again = TextTable.parse(parsed.render())
        assert again.rows == parsed.rows

    def test_round_trip_without_title(self):
        t = TextTable(["only"])
        t.add_row([42])
        parsed = TextTable.parse(t.render())
        assert parsed.title is None
        assert parsed.columns == ["only"]
        assert parsed.rows == [["42"]]

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            TextTable.parse("")
        with pytest.raises(ValueError):
            TextTable.parse("just a line\nof prose text")


class TestStats:
    def test_summarize(self):
        s = summarize([1, 2, 3, 4])
        assert s["count"] == 4
        assert s["mean"] == 2.5
        assert s["min"] == 1 and s["max"] == 4

    def test_summarize_empty(self):
        assert summarize([])["count"] == 0

    def test_chi_square_uniform_zero_for_perfect(self):
        assert chi_square_uniform([10, 10, 10]) == 0.0

    def test_chi_square_grows_with_skew(self):
        assert chi_square_uniform([30, 0, 0]) > chi_square_uniform([12, 9, 9])

    def test_chi_square_degenerate(self):
        assert chi_square_uniform([]) == 0.0
        assert chi_square_uniform([5]) == 0.0
        assert chi_square_uniform([0, 0]) == 0.0

    def test_cv(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0
        assert coefficient_of_variation([0, 10]) == 1.0
        assert coefficient_of_variation([]) == 0.0

    def test_gini_bounds(self):
        assert gini([1, 1, 1, 1]) == pytest.approx(0.0)
        concentrated = gini([0, 0, 0, 100])
        assert 0.7 < concentrated <= 1.0
        assert gini([]) == 0.0
