"""Tests: ASCII timeline rendering."""

from repro.core.addresses import ActorAddress
from repro.core.messages import Mode
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.util.timeline import render_load_bars, render_timeline


def traced_system():
    system = ActorSpaceSystem(topology=Topology.lan(3), seed=0)
    sink = system.create_actor(lambda ctx, m: None, node=2)
    for i in range(5):
        system.send_to(sink, i)
    system.run()
    return system, sink


class TestTimeline:
    def test_renders_rows_per_node(self):
        system, _sink = traced_system()
        out = render_timeline(system.tracer, 3, width=40)
        lines = out.splitlines()
        assert any(line.startswith("node 0") for line in lines)
        assert any(line.startswith("node 2") for line in lines)
        # Deliveries landed on node 2.
        node2 = next(line for line in lines if line.startswith("node 2"))
        assert "d" in node2

    def test_sends_marked_at_source(self):
        system, _sink = traced_system()
        out = render_timeline(system.tracer, 3, width=40)
        node0 = next(l for l in out.splitlines() if l.startswith("node 0"))
        assert "s" in node0

    def test_empty_tracer_stub(self):
        system = ActorSpaceSystem(seed=0)
        out = render_timeline(system.tracer, 1)
        assert "no latency samples" in out

    def test_window_clamping(self):
        system, _sink = traced_system()
        out = render_timeline(system.tracer, 3, width=20, t_start=0.0,
                              t_end=0.001)
        # Events beyond the window clamp into the last bucket, not crash.
        assert "node 2" in out

    def test_width_respected(self):
        system, _sink = traced_system()
        out = render_timeline(system.tracer, 3, width=25)
        node_line = next(l for l in out.splitlines() if l.startswith("node 0"))
        assert node_line.count("|") == 2
        body = node_line.split("|")[1]
        assert len(body) == 25

    def test_zero_span_single_sample(self):
        """One same-instant sample: degenerate span must not divide by zero."""
        system = ActorSpaceSystem(seed=0)
        system.tracer.on_delivered(
            Mode.DIRECT, ActorAddress(0, 1), sent_at=1.0, delivered_at=1.0,
            src_node=0, dst_node=0)
        out = render_timeline(system.tracer, 1, width=30)
        node0 = next(l for l in out.splitlines() if l.startswith("node 0"))
        assert "d" in node0

    def test_single_sample_renders(self):
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)
        sink = system.create_actor(lambda ctx, m: None, node=1)
        system.send_to(sink, "only")
        system.run()
        out = render_timeline(system.tracer, 2, width=30)
        assert "s" in out.split("|")[1] or "d" in out

    def test_suspension_release_cells(self):
        """Released suspensions render as 'u' on the releasing node's row."""
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)
        system.send("later/*", "parked")
        system.run()
        addr = system.create_actor(lambda ctx, m: None, node=1)
        system.make_visible(addr, "later/now")
        system.run()
        assert system.tracer.release_marks
        out = render_timeline(system.tracer, 2, width=40)
        rows = [l for l in out.splitlines() if l.startswith("node")]
        assert any("u" in row for row in rows)
        assert "u=suspension release" in out

    def test_release_mark_never_overwrites_delivery(self):
        system = ActorSpaceSystem(seed=0)
        tracer = system.tracer
        tracer.on_delivered(Mode.SEND, ActorAddress(0, 1), sent_at=0.0,
                            delivered_at=1.0, src_node=0, dst_node=0)
        tracer.release_marks.append((1.0, 0))  # same bucket as the delivery
        out = render_timeline(tracer, 1, width=10)
        node0 = next(l for l in out.splitlines() if l.startswith("node 0"))
        assert "d" in node0 and "u" not in node0


class TestLoadBars:
    def test_bars_scale_with_counts(self):
        out = render_load_bars({"a": 10, "b": 5, "c": 1}, width=10)
        lines = out.splitlines()[1:]
        assert lines[0].count("#") > lines[1].count("#") > 0

    def test_sorted_by_count_descending(self):
        out = render_load_bars({"low": 1, "high": 9})
        lines = out.splitlines()[1:]
        assert "high" in lines[0] and "low" in lines[1]

    def test_empty(self):
        assert "no deliveries" in render_load_bars({})

    def test_works_with_tracer_counts(self):
        system, sink = traced_system()
        out = render_load_bars(dict(system.tracer.received_by))
        assert str(sink) in out
