"""Shared driver: a seeded simulator workload persisted through a NodeStore.

Every durability test needs the same thing — a bus log on disk whose
in-memory twin is known — so the generator lives here once.  The
workload mixes all visibility op kinds (including submissions that the
apply path rejects, which must round-trip through the log as rejected
ops, not disappear).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ActorSpaceError
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.store import NodeStore


def noop(ctx, message):
    pass


def run_persisted_workload(data_dir, seed=0, n_ops=30, nodes=2,
                           fsync="commit", segment_bytes=None):
    """Drive a seeded mixed workload with a store attached to the bus.

    Returns ``(system, store)``; the caller closes the store (or crashes
    it deliberately by not doing so).
    """
    system = ActorSpaceSystem(topology=Topology.lan(nodes), seed=seed)
    kwargs = {"fsync": fsync}
    if segment_bytes is not None:
        kwargs["segment_bytes"] = segment_bytes
    store = NodeStore(data_dir, **kwargs)
    system.bus.store = store
    rng = np.random.default_rng(seed)
    spaces = [system.root_space]
    actors = []
    for i in range(n_ops):
        kind = int(rng.integers(0, 6))
        node = int(rng.integers(0, nodes))
        space = spaces[int(rng.integers(0, len(spaces)))]
        try:
            if kind == 0 or not actors:
                actor = system.create_actor(noop, node=node)
                actors.append(actor)
                system.make_visible(actor, f"pool/a{i}", space, node=node)
            elif kind == 1 and len(spaces) < 6:
                spaces.append(system.create_space(node=node,
                                                  attributes=f"region/{i}"))
            elif kind == 2:
                target = actors[int(rng.integers(0, len(actors)))]
                system.make_visible(target, f"extra/{i}", space, node=node)
            elif kind == 3:
                target = actors[int(rng.integers(0, len(actors)))]
                system.change_attributes(target, f"renamed/{i}", space,
                                         node=node)
            else:
                # Often targets an entry not visible in `space`: the apply
                # path rejects it, which the persisted log must reflect.
                target = actors[int(rng.integers(0, len(actors)))]
                system.make_invisible(target, space, node=node)
        except ActorSpaceError:
            pass
        if rng.random() < 0.3:
            system.run()
    system.run()
    return system, store


def log_signature(log):
    """A comparable shape for a seq->op map: what ordering + identity
    the durable log must preserve."""
    return [
        (seq, log[seq].kind.value, log[seq].origin_node, log[seq].origin_seq)
        for seq in sorted(log)
    ]
