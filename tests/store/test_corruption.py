"""Satellite: corruption fuzzing for the segment reader.

A seeded fuzzer mutates a known-good segment — single byte flips,
truncations at arbitrary offsets, random splices — and asserts the
reader's contract under every mutation:

* it never raises;
* what it yields is a *prefix* of the original records, in the original
  order (no reorder, no invention, no resync past damage);
* whenever anything was lost, the report says so (``clean`` is False and
  ``records_dropped``/``bytes_dropped`` are non-zero) — corruption is
  never silent.
"""

import numpy as np

from repro.store.segment import ReadReport, SegmentWriter, scan_segment

N_RECORDS = 24
N_MUTATIONS = 250


def build_segment(path):
    writer = SegmentWriter(str(path), fsync="never")
    records = [{"seq": i, "body": f"record-{i}", "pad": b"p" * (i % 7)}
               for i in range(N_RECORDS)]
    for record in records:
        writer.append(record)
    writer.commit()
    writer.close()
    return records, path.read_bytes()


def mutate(rng, data: bytes) -> bytes:
    kind = rng.integers(0, 4)
    buf = bytearray(data)
    if kind == 0:  # flip one byte
        buf[int(rng.integers(0, len(buf)))] ^= int(rng.integers(1, 256))
    elif kind == 1:  # truncate at an arbitrary offset
        buf = buf[: int(rng.integers(0, len(buf)))]
    elif kind == 2:  # flip a burst of bytes
        start = int(rng.integers(0, len(buf)))
        for i in range(start, min(len(buf), start + int(rng.integers(1, 64)))):
            buf[i] ^= 0x5A
    else:  # splice random garbage into the middle
        at = int(rng.integers(0, len(buf)))
        junk = rng.integers(0, 256, size=int(rng.integers(1, 40)),
                            dtype=np.uint8).tobytes()
        buf = buf[:at] + bytearray(junk) + buf[at:]
    return bytes(buf)


class TestCorruptionFuzz:
    def test_reader_contract_under_random_damage(self, tmp_path):
        path = tmp_path / "seg.log"
        records, good = build_segment(path)
        rng = np.random.default_rng(0xC0FFEE)
        observed_loss = 0
        for trial in range(N_MUTATIONS):
            damaged = mutate(rng, good)
            path.write_bytes(damaged)
            report = ReadReport()
            out = list(scan_segment(str(path), report))  # must never raise
            # Prefix property: exactly the first len(out) originals.
            assert out == records[: len(out)], f"trial {trial}: reorder/invention"
            lost = len(out) < len(records)
            if lost:
                observed_loss += 1
                assert not report.clean, f"trial {trial}: silent loss"
                assert report.bytes_dropped > 0 or report.records_dropped > 0
            if report.clean:
                # A clean report must mean a fully intact log (a splice can
                # corrupt without losing records only by luck of the CRC;
                # prefix+clean must still imply everything was recovered).
                assert out == records, f"trial {trial}: clean but incomplete"
        assert observed_loss > N_MUTATIONS // 2  # the fuzzer actually bites

    def test_every_truncation_point_is_survivable(self, tmp_path):
        path = tmp_path / "seg.log"
        records, good = build_segment(path)
        # Record boundaries: a cut exactly there is indistinguishable from
        # appends that never committed, so the reader rightly reports clean.
        import struct

        from repro.store.segment import HEADER_BYTES

        boundaries, pos = {0}, 0
        while pos < len(good):
            length = struct.unpack_from("<I", good, pos)[0]
            pos += HEADER_BYTES + length
            boundaries.add(pos)
        for cut in range(len(good) + 1):
            path.write_bytes(good[:cut])
            report = ReadReport()
            out = list(scan_segment(str(path), report))
            assert out == records[: len(out)]
            if cut in boundaries:
                assert report.clean
                assert len(out) == sum(1 for b in boundaries if 0 < b <= cut)
            else:
                assert not report.clean

    def test_drop_count_is_honest_for_mid_log_damage(self, tmp_path):
        path = tmp_path / "seg.log"
        records, good = build_segment(path)
        buf = bytearray(good)
        buf[len(buf) // 2] ^= 0xFF  # one bad byte mid-file
        path.write_bytes(bytes(buf))
        report = ReadReport()
        out = list(scan_segment(str(path), report))
        assert out == records[: len(out)]
        # Everything from the damaged record onward is abandoned and counted.
        assert report.records_dropped >= len(records) - len(out) - 1
        assert report.bytes_dropped >= len(good) - len(good) // 2 - 1
