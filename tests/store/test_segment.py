"""Tests: record framing, group-commit writes, and salvage scans."""

import os
import struct

from repro.store.segment import (
    HEADER_BYTES,
    MAX_RECORD_BYTES,
    ReadReport,
    SegmentWriter,
    pack_record,
    scan_segment,
    scan_segments,
)


def write_records(path, values, fsync="commit"):
    writer = SegmentWriter(str(path), fsync=fsync)
    for value in values:
        writer.append(value)
    writer.commit()
    writer.close()
    return writer


class TestRoundTrip:
    def test_values_round_trip_in_order(self, tmp_path):
        path = tmp_path / "seg.log"
        values = [{"i": i, "blob": b"x" * i, "t": (i, str(i))} for i in range(20)]
        write_records(path, values)
        report = ReadReport()
        assert list(scan_segment(str(path), report)) == values
        assert report.clean and report.records == 20

    def test_empty_file_is_a_valid_segment(self, tmp_path):
        path = tmp_path / "seg.log"
        path.write_bytes(b"")
        report = ReadReport()
        assert list(scan_segment(str(path), report)) == []
        assert report.clean

    def test_missing_file_reported_not_raised(self, tmp_path):
        report = ReadReport()
        assert list(scan_segment(str(tmp_path / "nope.log"), report)) == []
        assert not report.clean

    def test_scan_segments_concatenates_in_order(self, tmp_path):
        write_records(tmp_path / "a.log", [1, 2])
        write_records(tmp_path / "b.log", [3])
        records, report = scan_segments(
            [str(tmp_path / "a.log"), str(tmp_path / "b.log")])
        assert records == [1, 2, 3]
        assert report.clean

    def test_oversized_record_refused_at_pack_time(self):
        try:
            pack_record(b"x" * (MAX_RECORD_BYTES + 1))
        except ValueError:
            return
        raise AssertionError("oversized record was framed")


class TestGroupCommit:
    def test_append_stages_commit_writes(self, tmp_path):
        path = tmp_path / "seg.log"
        writer = SegmentWriter(str(path), fsync="commit")
        writer.append({"a": 1})
        writer.append({"a": 2})
        assert writer.pending == 2
        assert os.path.getsize(path) == 0  # nothing durable yet
        assert writer.commit() == 2
        assert writer.pending == 0
        assert writer.fsyncs == 1  # one fsync for the whole batch
        writer.close()
        report = ReadReport()
        assert list(scan_segment(str(path), report)) == [{"a": 1}, {"a": 2}]

    def test_never_policy_skips_fsync(self, tmp_path):
        writer = SegmentWriter(str(tmp_path / "seg.log"), fsync="never")
        writer.append(1)
        writer.commit()
        assert writer.fsyncs == 0
        writer.close()
        assert writer.fsyncs == 0

    def test_empty_commit_is_free(self, tmp_path):
        writer = SegmentWriter(str(tmp_path / "seg.log"))
        assert writer.commit() == 0
        assert writer.commits == 0 and writer.fsyncs == 0
        writer.close()


class TestTornTail:
    def test_torn_tail_salvages_prefix(self, tmp_path):
        path = tmp_path / "seg.log"
        write_records(path, list(range(10)))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 3])  # tear the last record
        report = ReadReport()
        assert list(scan_segment(str(path), report)) == list(range(9))
        assert not report.clean
        assert report.records_dropped == 1
        assert report.bytes_dropped > 0

    def test_bad_crc_stops_scan_without_resync(self, tmp_path):
        path = tmp_path / "seg.log"
        write_records(path, list(range(5)))
        data = bytearray(path.read_bytes())
        # Corrupt the payload byte of record 2 (three records remain after
        # it, intact — salvage must NOT resync past the bad one).
        offset = 0
        for _ in range(2):
            length = struct.unpack_from("<I", data, offset)[0]
            offset += HEADER_BYTES + length
        data[offset + HEADER_BYTES] ^= 0xFF
        path.write_bytes(bytes(data))
        report = ReadReport()
        assert list(scan_segment(str(path), report)) == [0, 1]
        assert report.records_dropped == 3  # the bad one plus the abandoned tail
