"""Satellite: crash-point recovery property battery.

The core durability claim, as a hypothesis property: tear the persisted
log at a *random byte* (a crash mid-write), recover, and what comes back
is a contiguous committed prefix of the history — never a half-applied
record, never a reordering — and that prefix conforms to the §5
reference model via the offline oracle.  Plus the dead-letter side: a
journal written around a real crash folds back into exactly the letters
the live queue was holding.
"""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.logcheck import check_recovered
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.store import NodeStore
from repro.store.node_store import load_data_dir, segment_paths
from repro.store.recovery import restore_node

from .workload import log_signature, run_persisted_workload


class TestTornWriteRecovery:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), n_ops=st.integers(5, 40),
           cut=st.floats(0.0, 1.0))
    def test_recovers_contiguous_committed_prefix(self, seed, n_ops, cut):
        with tempfile.TemporaryDirectory() as tmp:
            system, store = run_persisted_workload(tmp, seed=seed, n_ops=n_ops)
            store.close()
            expected = log_signature(system.bus.log)
            segments = segment_paths(tmp)
            assert segments, "workload persisted nothing"
            # The crash: tear the newest segment at an arbitrary byte.
            last = segments[-1]
            size = os.path.getsize(last)
            with open(last, "r+b") as fh:
                fh.truncate(int(size * cut))

            recovered = load_data_dir(tmp)
            got = log_signature(recovered.ops)
            # Contiguous prefix of the committed history: no hole, no
            # reorder, no half-applied record surviving the tear.
            assert got == expected[: len(got)]
            if recovered.ops:
                seqs = sorted(recovered.ops)
                assert seqs == list(range(seqs[0], seqs[-1] + 1))
            # The §5 oracle accepts the recovered history as-is.
            assert check_recovered(recovered) == []

    def test_untorn_log_recovers_everything(self, tmp_path):
        system, store = run_persisted_workload(str(tmp_path), seed=7, n_ops=30)
        store.close()
        recovered = load_data_dir(str(tmp_path))
        assert recovered.report.clean
        assert log_signature(recovered.ops) == log_signature(system.bus.log)
        assert check_recovered(recovered) == []


class TestDeadLetterRecovery:
    def test_journal_folds_back_to_live_queue(self, tmp_path):
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=1)
        store = NodeStore(str(tmp_path))
        system.bus.store = store
        system.dead_letters.store = store
        victim = system.create_actor(lambda ctx, m: None, node=1)
        system.make_visible(victim, "svc/victim")
        system.run()
        system.crash_node(1)
        for i in range(4):
            system.send("svc/victim", ("probe", i))
        system.run()
        assert system.dead_letters.pending(1) == 4
        store.close()

        # A fresh incarnation folds journal + (absent) snapshot back.
        system2 = ActorSpaceSystem(topology=Topology.lan(2), seed=1)
        store2 = NodeStore(str(tmp_path))
        recovered = store2.load()
        assert len(recovered.dlq_events) == 4
        summary = restore_node(0, system2.coordinators[0],
                               system2.dead_letters, recovered, store=store2)
        assert summary["dlq_recovered"] == 4
        assert system2.dead_letters.recovered_total == 4

        def shape(dlq):
            return {
                letter.envelope.envelope_id:
                    (letter.dst_node, letter.reason, letter.attempts,
                     letter.envelope.message.payload)
                for letter in dlq.letters()
            }

        assert shape(system2.dead_letters) == shape(system.dead_letters)
        assert system2.dead_letters.queued_total == \
            system.dead_letters.queued_total
        # The replayed ops also rebuilt the node-0 directory replica.
        assert system2.directory_of(0).snapshot() == \
            system.directory_of(0).snapshot()
        store2.close()

    def test_resolved_letters_are_not_readopted(self, tmp_path):
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=2)
        store = NodeStore(str(tmp_path))
        system.bus.store = store
        system.dead_letters.store = store
        hits = []
        victim = system.create_actor(lambda ctx, m: hits.append(m.payload),
                                     node=1)
        system.make_visible(victim, "svc/victim")
        system.run()
        system.crash_node(1)
        for i in range(3):
            system.send("svc/victim", ("probe", i))
        system.run()
        system.recover_node(1)
        system.run()
        assert len(hits) == 3  # redelivered to the recovered node
        assert system.dead_letters.pending() == 0
        store.close()

        recovered = load_data_dir(str(tmp_path))
        captures = [e for e in recovered.dlq_events if e["kind"] == "capture"]
        resolves = [e for e in recovered.dlq_events if e["kind"] == "resolve"]
        assert len(captures) == 3 and len(resolves) == 3
        system2 = ActorSpaceSystem(topology=Topology.lan(2), seed=2)
        summary = restore_node(0, system2.coordinators[0],
                               system2.dead_letters, recovered)
        assert summary["dlq_recovered"] == 0
        assert system2.dead_letters.pending() == 0
        assert system2.dead_letters.redelivered_total == \
            system.dead_letters.redelivered_total
