"""Tests: snapshots, log truncation, and snapshot+suffix restoration."""

import os

from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.store import NodeStore
from repro.store.node_store import load_data_dir, segment_paths
from repro.store.recovery import restore_node, snapshot_state
from repro.store.snapshot import list_snapshots, load_latest_snapshot

from .workload import noop, run_persisted_workload


def take_snapshot(system, store, node=0):
    state = snapshot_state(node, system.coordinators[node],
                           system.dead_letters)
    store.write_snapshot(state["applied_seq"], state)
    return state


class TestSnapshotRestore:
    def test_snapshot_truncates_prefix_and_restores_exactly(self, tmp_path):
        system, store = run_persisted_workload(str(tmp_path), seed=3, n_ops=20)
        state = take_snapshot(system, store)
        assert state["applied_seq"] > 0
        # Post-snapshot churn becomes the replayable suffix.
        for i in range(3):
            actor = system.create_actor(noop, node=i % 2)
            system.make_visible(actor, f"late/{i}", node=i % 2)
        system.run()
        store.close()

        recovered = load_data_dir(str(tmp_path))
        assert recovered.snapshot_seq == state["applied_seq"]
        # Rotation-at-snapshot made truncation exact: every surviving
        # persisted op is at or past the snapshot boundary.
        assert recovered.ops
        assert min(recovered.ops) >= state["applied_seq"]
        assert store.segments_truncated >= 1

        system2 = ActorSpaceSystem(topology=Topology.lan(2), seed=3)
        summary = restore_node(0, system2.coordinators[0],
                               system2.dead_letters, recovered)
        assert summary["ops_replayed"] == len(recovered.ops)
        assert system2.directory_of(0).snapshot() == \
            system.directory_of(0).snapshot()
        # Sequence factories resync: no ghost re-registration, no address
        # collisions with the previous incarnation.
        assert system2.coordinators[0]._next_apply_seq == \
            system.coordinators[0]._next_apply_seq
        assert system2.coordinators[0]._next_origin_seq >= \
            system.coordinators[0]._next_origin_seq
        assert system2.coordinators[0].addresses._next_serial >= \
            system.coordinators[0].addresses._next_serial

    def test_corrupt_newest_snapshot_falls_back_to_older(self, tmp_path):
        system, store = run_persisted_workload(str(tmp_path), seed=4, n_ops=12)
        take_snapshot(system, store)
        actor = system.create_actor(noop, node=0)
        system.make_visible(actor, "after/first")
        system.run()
        second = take_snapshot(system, store)
        store.close()

        snaps = list_snapshots(str(tmp_path))
        assert len(snaps) == 2  # prune keeps two
        # Corrupt the newest; loading must fall back, honestly reported.
        with open(snaps[-1][1], "r+b") as fh:
            fh.seek(10)
            fh.write(b"\xff\xff\xff")
        recovered = load_data_dir(str(tmp_path))
        assert recovered.snapshot_seq == snaps[0][0] < second["applied_seq"]
        assert not recovered.report.clean
        # The older snapshot plus a longer suffix still restores — but
        # only the ops the (now-shorter) log retains.
        system2 = ActorSpaceSystem(topology=Topology.lan(2), seed=4)
        restore_node(0, system2.coordinators[0], system2.dead_letters,
                     recovered)
        expected_dir = system.directory_of(0).snapshot()
        assert system2.directory_of(0).snapshot() == expected_dir

    def test_no_tmp_files_survive_installation(self, tmp_path):
        system, store = run_persisted_workload(str(tmp_path), seed=5, n_ops=8)
        take_snapshot(system, store)
        store.close()
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert leftovers == []

    def test_half_written_tmp_is_ignored(self, tmp_path):
        system, store = run_persisted_workload(str(tmp_path), seed=6, n_ops=8)
        state = take_snapshot(system, store)
        store.close()
        # A crash mid-install leaves a .tmp; it must not shadow the real one.
        tmp_file = os.path.join(
            str(tmp_path), f"snapshot-{state['applied_seq'] + 5:020d}.snap.tmp")
        with open(tmp_file, "wb") as fh:
            fh.write(b"garbage")
        loaded = load_latest_snapshot(str(tmp_path))
        assert loaded is not None and loaded[0] == state["applied_seq"]

    def test_segment_rotation_by_size(self, tmp_path):
        _system, store = run_persisted_workload(
            str(tmp_path), seed=8, n_ops=25, segment_bytes=512)
        store.close()
        # Tiny segment cap: the workload must have rolled several segments,
        # and the multi-segment log still recovers in order.
        assert len(segment_paths(str(tmp_path))) >= 2
        recovered = load_data_dir(str(tmp_path))
        assert recovered.report.clean
        seqs = sorted(recovered.ops)
        assert seqs == list(range(len(seqs)))
