"""Satellite: the replay debugger is deterministic, byte for byte.

Replaying the same persisted bytes must always land on the same state:
same digest, same event stream, same exported files.  That property is
what makes a data directory a *repro artifact* rather than just a
backup.  Also covers the CLI surface: ``--until``, ``--diff``,
``--state-out``/``--events-out``/``--trace-out``, ``--check``.
"""

import json

from repro.runtime.eventlog import EventLog, validate_chrome_trace
from repro.store.node_store import load_data_dir
from repro.store.replay import (
    canonical_state,
    replay_main,
    replay_recovered,
    state_digest,
)

from .workload import run_persisted_workload

SEED, N_OPS = 11, 25


def persisted(tmp_path):
    _system, store = run_persisted_workload(str(tmp_path), seed=SEED,
                                            n_ops=N_OPS)
    store.close()
    return str(tmp_path)


class TestDeterminism:
    def test_two_replays_agree_exactly(self, tmp_path):
        data = persisted(tmp_path)

        def one_replay():
            log = EventLog(capacity=1 << 16, enabled=True)
            replayer, summary = replay_recovered(load_data_dir(data),
                                                 event_log=log)
            return (summary, canonical_state(replayer.directory),
                    [e.to_dict() for e in log])

        first, second = one_replay(), one_replay()
        assert first == second
        assert first[0]["digest"] == second[0]["digest"]
        assert first[0]["ops_applied"] > 0

    def test_exported_files_are_byte_identical(self, tmp_path):
        data = persisted(tmp_path / "data")
        paths = {}
        for run in ("a", "b"):
            state = tmp_path / f"state-{run}.json"
            events = tmp_path / f"events-{run}.jsonl"
            rc = replay_main([data, "--state-out", str(state),
                              "--events-out", str(events), "--quiet"])
            assert rc == 0
            paths[run] = (state.read_bytes(), events.read_bytes())
        assert paths["a"] == paths["b"]
        assert len(paths["a"][0]) > 2  # actually exported something

    def test_until_truncates_history(self, tmp_path):
        data = persisted(tmp_path)
        recovered = load_data_dir(data)
        full, full_summary = replay_recovered(recovered)
        partial, part_summary = replay_recovered(recovered, until=2)
        assert part_summary["last_seq"] == 2
        assert part_summary["ops_applied"] + part_summary["ops_rejected"] == 3
        assert full_summary["last_seq"] > 2
        # Time travel is real: the directory at seq 2 differs from final.
        assert state_digest(partial.directory) != \
            state_digest(full.directory)

    def test_diff_between_two_points(self, tmp_path, capsys):
        data = persisted(tmp_path)
        rc = replay_main([data, "--diff", "2:8", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "diff @2 -> @8:" in out
        # Diffing a point against itself is empty.
        rc = replay_main([data, "--diff", "5:5", "--quiet"])
        assert rc == 0
        assert "no change(s)" in capsys.readouterr().out

    def test_check_runs_the_oracle(self, tmp_path, capsys):
        data = persisted(tmp_path)
        assert replay_main([data, "--check"]) == 0
        assert "conforms" in capsys.readouterr().out

    def test_trace_export_is_valid_chrome_trace(self, tmp_path):
        data = persisted(tmp_path / "data")
        trace_path = tmp_path / "replay.trace.json"
        assert replay_main([data, "--trace-out", str(trace_path),
                            "--quiet"]) == 0
        trace = json.loads(trace_path.read_text())
        assert validate_chrome_trace(trace) == []

    def test_empty_directory_exits_2(self, tmp_path):
        assert replay_main([str(tmp_path)]) == 2
