"""Interpreter error paths: scripts that fail must fail loudly and locally."""

import pytest

from repro.core.errors import InterpreterRuntimeError, InterpreterSyntaxError
from repro.interp import BehaviorLibrary, InterpretedBehavior
from repro.interp.evaluator import Evaluator, base_env
from repro.interp.parser import parse_one
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


class NullBridge:
    def __getattr__(self, name):
        def record(*args):
            return None

        return record


def run(src, max_steps=10_000):
    return Evaluator(NullBridge(), max_steps=max_steps).eval(
        parse_one(src), base_env())


class TestEvaluatorErrors:
    @pytest.mark.parametrize("src", [
        "(let (x 1) x)",             # bad binding shape
        "(let ((1 2)) 1)",           # non-symbol binding name
        "(if)",                      # arity
        "(if 1 2 3 4)",
        "(set! 42 1)",               # non-symbol set!
        "(quote)",                   # arity
        "(become 42)",               # non-symbol behavior name
        "(for 1 (list) 2)",          # non-symbol loop var
        '(send-to "x")',             # arity
        "(head (list))",             # empty list
        "(mod 1 0)",                 # modulo by zero
    ])
    def test_raises_interpreter_error(self, src):
        with pytest.raises(InterpreterRuntimeError):
            run(src)

    def test_for_requires_list(self):
        with pytest.raises(InterpreterRuntimeError):
            run("(for x 42 x)")

    def test_error_message_mentions_source(self):
        with pytest.raises(InterpreterRuntimeError) as err:
            run("(nth (list 1 2) 99)")
        assert "nth" in str(err.value)


class TestActorLevelFailures:
    def _system(self):
        return ActorSpaceSystem(topology=Topology.lan(2), seed=0)

    def _spawn(self, system, script, name, args):
        lib = BehaviorLibrary()
        lib.load(script)
        return system.create_actor(
            InterpretedBehavior(lib, lib.get(name), args)), lib

    def test_runtime_error_kills_only_the_failing_actor(self):
        system = self._system()
        bad, _lib = self._spawn(system, """
        (behavior bad ()
          (method boom () (/ 1 0)))
        """, "bad", [])
        healthy_got = []
        healthy = system.create_actor(
            lambda ctx, m: healthy_got.append(m.payload))
        system.send_to(bad, ["boom"])
        system.send_to(healthy, "still-fine")
        system.run()
        assert system.actor_record(bad).terminated
        assert healthy_got == ["still-fine"]

    def test_become_unknown_behavior_fails_at_call_time(self):
        system = self._system()
        actor, _lib = self._spawn(system, """
        (behavior shifty ()
          (method go () (become ghost)))
        """, "shifty", [])
        system.send_to(actor, ["go"])
        system.run()
        assert system.actor_record(actor).terminated

    def test_infinite_script_is_fuel_limited(self):
        system = self._system()
        actor, _lib = self._spawn(system, """
        (behavior spinner ()
          (method spin () (while true 1)))
        """, "spinner", [])
        record = system.actor_record(actor)
        record.behavior.max_steps = 2_000  # keep the test fast
        system.send_to(actor, ["spin"])
        system.run()
        assert record.terminated
        assert any(k.startswith("behavior_error")
                   for k in system.tracer.dropped)

    def test_send_with_non_string_destination(self):
        system = self._system()
        actor, _lib = self._spawn(system, """
        (behavior bad-sender ()
          (method go () (send 42 "payload")))
        """, "bad-sender", [])
        system.send_to(actor, ["go"])
        system.run()
        assert system.actor_record(actor).terminated

    def test_reply_addr_without_reply_to(self):
        system = self._system()
        actor, _lib = self._spawn(system, """
        (behavior needs-reply ()
          (method q () (send-to (reply-addr) 1)))
        """, "needs-reply", [])
        system.send_to(actor, ["q"])  # no reply_to given
        system.run()
        assert system.actor_record(actor).terminated

    def test_bad_attribute_types_rejected(self):
        system = self._system()
        actor, _lib = self._spawn(system, """
        (behavior bad-attrs ()
          (method go () (make-visible (self) 42)))
        """, "bad-attrs", [])
        system.send_to(actor, ["go"])
        system.run()
        assert system.actor_record(actor).terminated
