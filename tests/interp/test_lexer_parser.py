"""Unit tests: lexer and parser of the behavior-script language."""

import pytest

from repro.core.errors import InterpreterSyntaxError
from repro.interp.astnodes import Symbol, to_source
from repro.interp.lexer import tokenize
from repro.interp.parser import parse_one, parse_program


class TestLexer:
    def test_kinds(self):
        kinds = [t.kind for t in tokenize("(foo 1 2.5 \"s\" 'x)")]
        assert kinds == ["(", "symbol", "number", "number", "string", "'",
                         "symbol", ")"]

    def test_numbers(self):
        toks = tokenize("42 -7 3.14 -0.5")
        assert [t.value for t in toks] == [42, -7, 3.14, -0.5]
        assert isinstance(toks[0].value, int)
        assert isinstance(toks[2].value, float)

    def test_symbols_with_punctuation(self):
        toks = tokenize("+ - <= set! empty? a/b")
        assert all(t.kind == "symbol" for t in toks)

    def test_string_escapes(self):
        [t] = tokenize(r'"a\nb\"c\\d"')
        assert t.value == 'a\nb"c\\d'

    def test_unterminated_string(self):
        with pytest.raises(InterpreterSyntaxError):
            tokenize('"oops')

    def test_comments_ignored(self):
        toks = tokenize("1 ; comment here\n2")
        assert [t.value for t in toks] == [1, 2]

    def test_positions_tracked(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)


class TestParser:
    def test_nested_lists(self):
        form = parse_one("(a (b 1) (c (d)))")
        assert form == [Symbol("a"), [Symbol("b"), 1], [Symbol("c"), [Symbol("d")]]]

    def test_constants(self):
        assert parse_one("(x true false nil)") == [Symbol("x"), True, False, None]

    def test_quote_sugar(self):
        assert parse_one("'foo") == [Symbol("quote"), Symbol("foo")]
        assert parse_one("'(a b)") == [Symbol("quote"), [Symbol("a"), Symbol("b")]]

    def test_program_returns_all_forms(self):
        assert len(parse_program("(a) (b) (c)")) == 3

    def test_unclosed_paren(self):
        with pytest.raises(InterpreterSyntaxError):
            parse_one("(a (b)")

    def test_stray_close(self):
        with pytest.raises(InterpreterSyntaxError):
            parse_one(")")

    def test_parse_one_rejects_extra(self):
        with pytest.raises(InterpreterSyntaxError):
            parse_one("(a) (b)")

    def test_empty_input(self):
        assert parse_program("   ; just a comment") == []
        with pytest.raises(InterpreterSyntaxError):
            parse_one("")


class TestToSource:
    @pytest.mark.parametrize("src", [
        "(a b c)",
        "(if (> x 1) 2 3)",
        '(print "hi there")',
        "(let ((x 1)) (+ x 2))",
    ])
    def test_roundtrip(self, src):
        form = parse_one(src)
        assert parse_one(to_source(form)) == form

    def test_constant_rendering(self):
        assert to_source(parse_one("(x true nil)")) == "(x true nil)"
