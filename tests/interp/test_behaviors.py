"""Tests: behavior definitions, the library, and interpreted actors end to end."""

import pytest

from repro.core.errors import InterpreterRuntimeError, InterpreterSyntaxError
from repro.interp.behavior_loader import BehaviorLibrary, parse_behavior
from repro.interp.actor_interface import InterpretedBehavior
from repro.interp.parser import parse_one
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


COUNTER = """
(behavior counter (count)
  (method incr (by) (become counter (+ count by)))
  (method query () (send-to (reply-addr) count)))
"""


class TestBehaviorParsing:
    def test_parse_counter(self):
        lib = BehaviorLibrary()
        [definition] = lib.load(COUNTER)
        assert definition.name == "counter"
        assert definition.params == ("count",)
        assert set(definition.methods) == {"incr", "query"}
        assert definition.method("incr").params == ("by",)

    def test_reload_replaces(self):
        lib = BehaviorLibrary()
        lib.load("(behavior b () (method m () 1))")
        lib.load("(behavior b () (method m () 2))")
        assert lib.get("b").method("m").body == (2,)

    def test_unknown_behavior(self):
        with pytest.raises(InterpreterSyntaxError):
            BehaviorLibrary().get("ghost")

    def test_malformed_behaviors_rejected(self):
        for bad in [
            "(behavior)",
            "(behavior 42 ())",
            "(behavior b (x x) )",          # duplicate params
            "(behavior b () (method))",
            "(behavior b () (method m))",
            "(behavior b () (notmethod m () 1))",
            '(behavior b ("s") (method m () 1))',  # non-symbol param
        ]:
            with pytest.raises(InterpreterSyntaxError):
                parse_behavior(parse_one(bad))

    def test_duplicate_methods_rejected(self):
        with pytest.raises(InterpreterSyntaxError):
            parse_behavior(parse_one(
                "(behavior b () (method m () 1) (method m () 2))"))

    def test_names_listing(self):
        lib = BehaviorLibrary()
        lib.load("(behavior z () (method m () 1)) (behavior a () (method m () 1))")
        assert lib.names() == ["a", "z"]
        assert "a" in lib and "nope" not in lib


class TestInterpretedActors:
    def _system(self):
        return ActorSpaceSystem(topology=Topology.lan(2), seed=0)

    def _counter(self, system, lib=None, start=0):
        lib = lib or BehaviorLibrary()
        if "counter" not in lib:
            lib.load(COUNTER)
        return system.create_actor(
            InterpretedBehavior(lib, lib.get("counter"), [start]))

    def test_state_threads_through_become(self):
        system = self._system()
        counter = self._counter(system)
        got = []
        probe = system.create_actor(lambda ctx, m: got.append(m.payload))
        for _ in range(4):
            system.send_to(counter, ["incr", 3])
            system.run()
        system.send_to(counter, ["query"], reply_to=probe)
        system.run()
        assert got == [12]

    def test_wrong_acquaintance_arity(self):
        lib = BehaviorLibrary()
        lib.load(COUNTER)
        with pytest.raises(InterpreterRuntimeError):
            InterpretedBehavior(lib, lib.get("counter"), [1, 2])

    def test_unknown_method_kills_actor_not_system(self):
        system = self._system()
        counter = self._counter(system)
        system.send_to(counter, ["no-such-method"])
        system.run()
        assert system.actor_record(counter).terminated
        assert any(k.startswith("behavior_error") for k in system.tracer.dropped)

    def test_bad_payload_shape_rejected(self):
        system = self._system()
        counter = self._counter(system)
        system.send_to(counter, 42)  # not [method, ...]
        system.run()
        assert system.actor_record(counter).terminated

    def test_wrong_method_arity_rejected(self):
        system = self._system()
        counter = self._counter(system)
        system.send_to(counter, ["incr"])  # missing arg
        system.run()
        assert system.actor_record(counter).terminated

    def test_interpreted_actor_uses_patterns(self):
        system = self._system()
        lib = BehaviorLibrary()
        lib.load("""
        (behavior publisher ()
          (method announce (what)
            (broadcast "listeners/**" (list "news" what))))
        """)
        got = []
        listener = system.create_actor(lambda ctx, m: got.append(m.payload))
        system.make_visible(listener, "listeners/l1")
        system.run()
        pub = system.create_actor(
            InterpretedBehavior(lib, lib.get("publisher"), []))
        system.send_to(pub, ["announce", "hello"])
        system.run()
        assert got == [["news", "hello"]]

    def test_interpreted_create_returns_address_via_rpc(self):
        system = self._system()
        lib = BehaviorLibrary()
        lib.load("""
        (behavior spawner ()
          (method go ()
            (let ((child (create child-beh 7)))
              (send-to child (list "emit")))))
        (behavior child-beh (value)
          (method emit () (print "value" value)))
        """)
        spawner = system.create_actor(
            InterpretedBehavior(lib, lib.get("spawner"), []))
        system.send_to(spawner, ["go"])
        system.run()
        rec = system.actor_record(spawner)
        assert rec.behavior.ports.rpc == 1
        # Find the child's output.
        outs = []
        for coordinator in system.coordinators:
            for record in coordinator.actors.values():
                if isinstance(record.behavior, InterpretedBehavior):
                    outs.extend(record.behavior.output)
        assert "value 7" in outs

    def test_port_counters_follow_identity(self):
        system = self._system()
        counter = self._counter(system)
        for _ in range(3):
            system.send_to(counter, ["incr", 1])
            system.run()
        ports = system.actor_record(counter).behavior.ports
        assert ports.invocation == 3
        assert ports.behavior == 3
        assert ports.total() == 6

    def test_make_visible_from_script_with_capability(self):
        system = self._system()
        lib = BehaviorLibrary()
        lib.load("""
        (behavior registrar ()
          (method register (attrs)
            (make-visible (self) attrs)))
        """)
        actor = system.create_actor(
            InterpretedBehavior(lib, lib.get("registrar"), []))
        system.send_to(actor, ["register", "svc/from-script"])
        system.run()
        got = []
        probe = system.create_actor(lambda ctx, m: got.append(m.payload))
        system.send("svc/*", ["register", "again"])  # reaches the registrar
        system.run()
        assert system.actor_record(actor) is not None
        entry = system.directory_of(0).space(system.root_space).lookup(actor)
        assert entry is not None
