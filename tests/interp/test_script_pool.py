"""Integration: the §6 pool expressed in the script language itself."""

import pytest

# The example doubles as the implementation; import its driver.
import importlib.util
import pathlib
import sys

_spec = importlib.util.spec_from_file_location(
    "script_pool_example",
    pathlib.Path(__file__).resolve().parents[2] / "examples" / "script_pool.py",
)
script_pool = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(script_pool)


@pytest.mark.parametrize("engine", ["tree", "bytecode"])
def test_script_pool_computes_correctly(engine):
    output, expected, _t = script_pool.run_pool(engine, workers=4,
                                                lo=0, hi=3000)
    assert output == [f"result: {expected}"]


def test_engines_agree_on_timing_and_answer():
    """Same seed, same coordination: the engines differ only in host
    speed, not in virtual-time behaviour."""
    out_tree, exp, t_tree = script_pool.run_pool("tree", workers=4,
                                                 lo=0, hi=3000)
    out_vm, _exp, t_vm = script_pool.run_pool("bytecode", workers=4,
                                              lo=0, hi=3000)
    assert out_tree == out_vm
    assert t_tree == t_vm


def test_single_worker_pool_still_terminates():
    output, expected, _t = script_pool.run_pool("tree", workers=1,
                                                lo=0, hi=2000)
    assert output == [f"result: {expected}"]
