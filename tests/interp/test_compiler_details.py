"""Compiler/VM details not covered by the cross-engine property."""

import pytest

from repro.core.errors import InterpreterRuntimeError
from repro.interp import BehaviorLibrary
from repro.interp.compiler import OPCODES, compile_body
from repro.interp.evaluator import base_env
from repro.interp.parser import parse_one, parse_program
from repro.interp.vm import VM


class NullBridge:
    def __getattr__(self, name):
        return lambda *a: None


def run(src):
    return VM(NullBridge()).run(compile_body([parse_one(src)]), base_env())


class TestCompilation:
    def test_empty_body_yields_nil(self):
        assert VM(NullBridge()).run(compile_body([]), base_env()) is None

    def test_quote_is_fresh_per_execution(self):
        """Mutating a quoted list must not poison later executions."""
        code = compile_body([parse_one("(cons 0 '(1 2))")])
        vm = VM(NullBridge())
        assert vm.run(code, base_env()) == [0, 1, 2]
        assert vm.run(code, base_env()) == [0, 1, 2]

    def test_let_scopes_do_not_leak(self):
        src = "(begin (define x 1) (let ((x 9)) x) x)"
        assert run(src) == 1

    def test_nested_for_loops(self):
        src = ("(begin (define pairs 0)"
               " (for a (range 3) (for b (range 3)"
               "   (set! pairs (+ pairs 1))))"
               " pairs)")
        assert run(src) == 9

    def test_compile_errors_surface_at_compile_time(self):
        for bad in ("(if)", "(let (x) 1)", "(set! 1 2)", "(become 42)",
                    "(send-to 1)", "()"):
            with pytest.raises(InterpreterRuntimeError):
                compile_body([parse_one(bad)])

    def test_builtin_rebinding_rejected_in_both_engines(self):
        from repro.interp.evaluator import Evaluator

        src = "(set! + 42)"
        with pytest.raises(InterpreterRuntimeError):
            run(src)
        with pytest.raises(InterpreterRuntimeError):
            Evaluator(NullBridge()).run_body([parse_one(src)], base_env())

    def test_shadowing_a_builtin_locally_is_allowed(self):
        # define creates a new binding in the local frame: fine.
        assert run("(begin (define max 5) max)") == 5

    def test_all_mnemonics_map_to_distinct_ranges(self):
        assert len(set(OPCODES.values())) == len(set(OPCODES.values()))
        assert all(isinstance(v, int) for v in OPCODES.values())

    def test_code_repr_and_len(self):
        code = compile_body([parse_one("(+ 1 2)")])
        assert len(code) >= 3
        assert "Code" in repr(code)


class TestCacheBehavior:
    def test_compiled_cache_is_per_method(self):
        lib = BehaviorLibrary()
        lib.load("""
        (behavior b ()
          (method one () 1)
          (method two () 2))
        """)
        definition = lib.get("b")
        c1 = lib.compiled("b", definition.method("one"))
        c2 = lib.compiled("b", definition.method("two"))
        assert c1 is not c2
        assert lib.compiled("b", definition.method("one")) is c1

    def test_reload_drops_only_that_behavior(self):
        lib = BehaviorLibrary()
        lib.load("""
        (behavior keep () (method m () 1))
        (behavior swap () (method m () 1))
        """)
        kept = lib.compiled("keep", lib.get("keep").method("m"))
        swapped = lib.compiled("swap", lib.get("swap").method("m"))
        lib.load("(behavior swap () (method m () 2))")
        assert lib.compiled("keep", lib.get("keep").method("m")) is kept
        assert lib.compiled("swap", lib.get("swap").method("m")) is not swapped
