"""Tests: the byte-compiler and VM (section 7's planned extension).

Includes the cross-engine equivalence property: random programs evaluate
to the same value under the tree-walker and the bytecode VM.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InterpreterRuntimeError
from repro.interp import BehaviorLibrary, InterpretedBehavior
from repro.interp.compiler import compile_body
from repro.interp.evaluator import Evaluator, base_env
from repro.interp.parser import parse_one
from repro.interp.vm import VM
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


class NullBridge:
    def __init__(self):
        self.printed = []
        self.calls = []

    def __getattr__(self, name):
        def record(*args):
            self.calls.append((name, args))
            if name == "emit":
                self.printed.append(args[0])
            if name == "now":
                return 1.5
            if name in ("self_address", "host_space", "reply_addr"):
                return f"<{name}>"
            if name in ("create", "create_actorspace", "new_capability"):
                return f"<{name}>"
            return None

        return record


def run_tree(src, bridge=None):
    return Evaluator(bridge or NullBridge()).run_body(
        [parse_one(src)], base_env())


def run_vm(src, bridge=None):
    code = compile_body([parse_one(src)])
    return VM(bridge or NullBridge()).run(code, base_env())


EXPRESSIONS = [
    "(+ 1 2 3)",
    "(- 10 (/ 8 2))",
    "(if (> 3 2) 'yes 'no)",
    "(if false 1)",
    "(let ((x 2) (y (* x 3))) (+ x y))",
    "(begin 1 2 (list 3 4))",
    "(and 1 2 3)",
    "(and 1 false 3)",
    "(and)",
    "(or false nil 7)",
    "(or false nil)",
    "(or)",
    "(begin (define n 0) (while (< n 5) (set! n (+ n 1))) n)",
    "(begin (define acc 0) (for x (list 1 2 3) (set! acc (+ acc x))) acc)",
    "(begin (define total 0) (for x (range 4) (for y (range x) (set! total (+ total 1)))) total)",
    "'(a 1 (b 2))",
    "(str \"n=\" (+ 1 1))",
    "(nth (reverse (list 1 2 3)) 0)",
    "(let ((x 1)) (let ((x 2)) x))",
    "(while false 1)",
    "(contains? (append (list 1) (list 2)) 2)",
]


class TestCrossEngineFixedCases:
    @pytest.mark.parametrize("src", EXPRESSIONS)
    def test_same_result(self, src):
        assert run_tree(src) == run_vm(src)

    @pytest.mark.parametrize("src", [
        "(/ 1 0)",
        "(head (list))",
        "unbound",
        "(1 2)",
        "(set! ghost 1)",
        "(for x 42 x)",
    ])
    def test_same_errors(self, src):
        with pytest.raises(InterpreterRuntimeError):
            run_tree(src)
        with pytest.raises(InterpreterRuntimeError):
            run_vm(src)

    def test_effects_agree(self):
        src = '(begin (print "a" 1) (send-to (self) (list 1)) (schedule 1 2))'
        tree_bridge, vm_bridge = NullBridge(), NullBridge()
        run_tree(src, tree_bridge)
        run_vm(src, vm_bridge)
        assert tree_bridge.calls == vm_bridge.calls
        assert tree_bridge.printed == vm_bridge.printed

    def test_vm_fuel_limit(self):
        code = compile_body([parse_one("(while true 1)")])
        with pytest.raises(InterpreterRuntimeError):
            VM(NullBridge(), max_steps=500).run(code, base_env())


# -- property: random programs agree ---------------------------------------------


def exprs(depth=3):
    ints = st.integers(-20, 20)
    if depth == 0:
        return st.one_of(ints, st.just("x"), st.just("y"),
                         st.just(True), st.just(False))
    sub = exprs(depth - 1)
    binop = st.sampled_from(["+", "-", "*", "max", "min"])
    cmp_ = st.sampled_from(["<", ">", "=", "<=", ">="])
    return st.one_of(
        ints,
        st.just("x"),
        st.just("y"),
        st.tuples(binop, sub, sub).map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
        st.tuples(cmp_, sub, sub).map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
        st.tuples(sub, sub, sub).map(
            lambda t: f"(if {t[0]} {t[1]} {t[2]})"),
        st.tuples(sub, sub).map(lambda t: f"(and {t[0]} {t[1]})"),
        st.tuples(sub, sub).map(lambda t: f"(or {t[0]} {t[1]})"),
        st.tuples(sub, sub).map(
            lambda t: f"(let ((x {t[0]})) {t[1]})"),
        st.tuples(sub, sub).map(lambda t: f"(begin {t[0]} {t[1]})"),
        st.tuples(sub).map(lambda t: f"(list {t[0]} 1)"),
    )


@given(exprs())
@settings(max_examples=400, deadline=None)
def test_engines_agree_on_random_programs(src_inner):
    src = f"(let ((x 3) (y 5)) {src_inner})"
    try:
        expected = run_tree(src)
        failed = False
    except InterpreterRuntimeError:
        failed = True
    if failed:
        with pytest.raises(InterpreterRuntimeError):
            run_vm(src)
    else:
        assert run_vm(src) == expected


# -- end-to-end: bytecode actors in the runtime --------------------------------------


COUNTER = """
(behavior counter (count)
  (method incr (by) (become counter (+ count by)))
  (method query () (send-to (reply-addr) count)))
"""


class TestBytecodeActors:
    def test_counter_runs_compiled(self):
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)
        lib = BehaviorLibrary()
        lib.load(COUNTER)
        actor = system.create_actor(
            InterpretedBehavior(lib, lib.get("counter"), [0],
                                engine="bytecode"))
        got = []
        probe = system.create_actor(lambda ctx, m: got.append(m.payload))
        for _ in range(3):
            system.send_to(actor, ["incr", 4])
            system.run()
        system.send_to(actor, ["query"], reply_to=probe)
        system.run()
        assert got == [12]
        # become preserved the engine across behavior replacement.
        assert system.actor_record(actor).behavior.engine == "bytecode"

    def test_engine_inherited_by_created_children(self):
        system = ActorSpaceSystem(seed=0)
        lib = BehaviorLibrary()
        lib.load("""
        (behavior parent ()
          (method go () (create child 1)))
        (behavior child (v)
          (method noop () v))
        """)
        parent = system.create_actor(
            InterpretedBehavior(lib, lib.get("parent"), [], engine="bytecode"))
        system.send_to(parent, ["go"])
        system.run()
        children = [
            r.behavior for c in system.coordinators
            for r in c.actors.values()
            if isinstance(r.behavior, InterpretedBehavior)
            and r.behavior.definition.name == "child"
        ]
        assert children and all(b.engine == "bytecode" for b in children)

    def test_hot_reload_invalidates_code_cache(self):
        system = ActorSpaceSystem(seed=0)
        lib = BehaviorLibrary()
        lib.load("(behavior b () (method m () (print \"v1\")))")
        actor = system.create_actor(
            InterpretedBehavior(lib, lib.get("b"), [], engine="bytecode"))
        system.send_to(actor, ["m"])
        system.run()
        lib.load("(behavior b () (method m () (print \"v2\")))")
        fresh = system.create_actor(
            InterpretedBehavior(lib, lib.get("b"), [], engine="bytecode"))
        system.send_to(fresh, ["m"])
        system.run()
        out_old = system.actor_record(actor).behavior.output
        out_new = system.actor_record(fresh).behavior.output
        assert out_old == ["v1"]
        assert out_new == ["v2"]

    def test_unknown_engine_rejected(self):
        lib = BehaviorLibrary()
        lib.load(COUNTER)
        with pytest.raises(ValueError):
            InterpretedBehavior(lib, lib.get("counter"), [0], engine="jit")

    def test_prelude_runs_under_bytecode(self):
        from repro.interp.prelude import load_prelude

        system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)
        lib = load_prelude()
        got = []
        probe = system.create_actor(lambda ctx, m: got.append(m.payload))
        cell = system.create_actor(
            InterpretedBehavior(lib, lib.get("cell"), [7], engine="bytecode"))
        system.send_to(cell, ["swap", 9], reply_to=probe)
        system.run()
        system.send_to(cell, ["get"], reply_to=probe)
        system.run()
        assert got == [7, 9]
