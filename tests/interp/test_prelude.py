"""Tests: the script-language prelude."""

import pytest

from repro.interp import BehaviorLibrary, InterpretedBehavior
from repro.interp.prelude import PRELUDE_SOURCE, build_ring, load_prelude
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


@pytest.fixture()
def world():
    system = ActorSpaceSystem(topology=Topology.lan(3), seed=0)
    library = load_prelude()
    got = []
    probe = system.create_actor(lambda ctx, m: got.append(m.payload))
    return system, library, probe, got


def spawn(system, library, name, args, node=0):
    return system.create_actor(
        InterpretedBehavior(library, library.get(name), args), node=node)


class TestPrelude:
    def test_loads_all_behaviors(self):
        library = load_prelude()
        for name in ("cell", "accumulator", "forwarder", "router",
                     "ring-member", "registrar", "broadcaster"):
            assert name in library

    def test_load_into_existing_library(self):
        library = BehaviorLibrary()
        library.load("(behavior mine () (method m () 1))")
        load_prelude(library)
        assert "mine" in library and "cell" in library

    def test_cell_get_put_swap(self, world):
        system, library, probe, got = world
        cell = spawn(system, library, "cell", [10])
        system.send_to(cell, ["get"], reply_to=probe)
        system.run()
        system.send_to(cell, ["put", 20])
        system.run()
        system.send_to(cell, ["swap", 30], reply_to=probe)
        system.run()
        system.send_to(cell, ["get"], reply_to=probe)
        system.run()
        assert got == [10, 20, 30]

    def test_accumulator(self, world):
        system, library, probe, got = world
        acc = spawn(system, library, "accumulator", [0])
        for n in (1, 2, 3, 4):
            system.send_to(acc, ["add", n])
            system.run()
        system.send_to(acc, ["report"], reply_to=probe)
        system.run()
        assert got == [10]

    def test_forwarder(self, world):
        system, library, probe, got = world
        fwd = spawn(system, library, "forwarder", [probe], node=1)
        system.send_to(fwd, ["relay", ["payload", 7]])
        system.run()
        assert got == [["payload", 7]]

    def test_router_routes_by_key(self, world):
        system, library, probe, got = world
        a_got, b_got = [], []
        a = system.create_actor(lambda ctx, m: a_got.append(m.payload))
        b = system.create_actor(lambda ctx, m: b_got.append(m.payload))
        system.make_visible(a, "sinks/a")
        system.make_visible(b, "sinks/b")
        system.run()
        router = spawn(system, library, "router",
                       [["alpha", "beta"], ["sinks/a", "sinks/b"]])
        system.send_to(router, ["route", "beta", "to-b"])
        system.send_to(router, ["route", "alpha", "to-a"])
        system.run()
        assert a_got == ["to-a"] and b_got == ["to-b"]

    def test_router_reports_missing_route(self, world):
        system, library, probe, got = world
        router = spawn(system, library, "router", [["k"], ["sinks/x"]])
        system.send_to(router, ["route", "other", "lost"])
        system.run()
        behavior = system.actor_record(router).behavior
        assert any("no route" in line for line in behavior.output)

    def test_registrar_self_publishes(self, world):
        system, library, probe, got = world
        reg = spawn(system, library, "registrar", [])
        system.send_to(reg, ["publish", "svc/self-made"])
        system.run()
        system.send("svc/self-made", ["publish", "svc/again"])
        system.run()  # reachable via its self-published attribute
        entry = system.directory_of(0).space(system.root_space).lookup(reg)
        assert entry is not None

    def test_broadcaster(self, world):
        system, library, probe, got = world
        listeners = []
        for i in range(3):
            l_got = []
            addr = system.create_actor(
                lambda ctx, m, g=l_got: g.append(m.payload), node=i)
            system.make_visible(addr, f"aud/l{i}")
            listeners.append(l_got)
        system.run()
        caster = spawn(system, library, "broadcaster", ["aud/*"])
        system.send_to(caster, ["tell", "news"])
        system.run()
        assert all(l == ["news"] for l in listeners)


class TestRing:
    def test_token_completes_circuits(self, world):
        system, library, probe, got = world
        head = build_ring(system, library, size=5)
        system.send_to(head, ["token", 12, probe])
        system.run()
        assert got == [["done", 0]]

    def test_ring_of_one(self, world):
        system, library, probe, got = world
        head = build_ring(system, library, size=1)
        system.send_to(head, ["token", 3, probe])
        system.run()
        assert got == [["done", 0]]

    def test_invalid_size(self, world):
        system, library, _probe, _got = world
        with pytest.raises(ValueError):
            build_ring(system, library, size=0)

    def test_latency_grows_with_hops(self):
        def circuit_time(hops):
            system = ActorSpaceSystem(topology=Topology.lan(3), seed=2)
            library = load_prelude()
            done = []
            probe = system.create_actor(lambda ctx, m: done.append(ctx.now))
            head = build_ring(system, library, size=6)
            start = system.clock.now
            system.send_to(head, ["token", hops, probe])
            system.run()
            return done[0] - start

        assert circuit_time(24) > circuit_time(6)
