"""Unit tests: the evaluator's special forms, builtins, and fuel limit."""

import pytest

from repro.core.errors import InterpreterRuntimeError
from repro.interp.evaluator import Evaluator, base_env
from repro.interp.parser import parse_one


class NullBridge:
    """An EffectBridge that records calls (no runtime needed)."""

    def __init__(self):
        self.calls = []
        self.printed = []

    def __getattr__(self, name):
        def record(*args):
            self.calls.append((name, args))
            if name == "emit":
                self.printed.append(args[0])
            if name in ("create", "create_actorspace", "new_capability"):
                return f"<{name}-result>"
            if name in ("self_address", "host_space", "reply_addr"):
                return f"<{name}>"
            if name == "now":
                return 12.5
            return None

        return record


def run(src, bridge=None, env=None, max_steps=100_000):
    evaluator = Evaluator(bridge or NullBridge(), max_steps=max_steps)
    return evaluator.eval(parse_one(src), env if env is not None else base_env())


class TestArithmeticAndComparison:
    @pytest.mark.parametrize("src,expected", [
        ("(+ 1 2 3)", 6),
        ("(- 10 3 2)", 5),
        ("(- 4)", -4),
        ("(* 2 3 4)", 24),
        ("(/ 10 4)", 2.5),
        ("(mod 10 3)", 1),
        ("(min 3 1 2)", 1),
        ("(max 3 1 2)", 3),
        ("(abs -4)", 4),
        ("(= 1 1)", True),
        ("(!= 1 2)", True),
        ("(< 1 2 3)", True),
        ("(< 1 3 2)", False),
        ("(>= 3 3 2)", True),
        ("(not false)", True),
        ("(not 0)", False),  # only false/nil are falsy
    ])
    def test_eval(self, src, expected):
        assert run(src) == expected

    def test_division_by_zero(self):
        with pytest.raises(InterpreterRuntimeError):
            run("(/ 1 0)")

    def test_type_errors_are_interpreter_errors(self):
        with pytest.raises(InterpreterRuntimeError):
            run('(+ 1 "two")')


class TestListsAndStrings:
    @pytest.mark.parametrize("src,expected", [
        ("(list 1 2 3)", [1, 2, 3]),
        ("(cons 0 (list 1))", [0, 1]),
        ("(head (list 7 8))", 7),
        ("(tail (list 7 8 9))", [8, 9]),
        ("(nth (list 5 6) 1)", 6),
        ("(len (list 1 2))", 2),
        ("(append (list 1) (list 2 3))", [1, 2, 3]),
        ("(reverse (list 1 2))", [2, 1]),
        ("(empty? (list))", True),
        ("(range 3)", [0, 1, 2]),
        ("(contains? (list 1 2) 2)", True),
        ('(str "a" 1 "b")', "a1b"),
        ('(split "a,b,c" ",")', ["a", "b", "c"]),
        ("(number? 4)", True),
        ("(number? true)", False),
        ('(string? "x")', True),
        ("(list? (list))", True),
        ("(nil? nil)", True),
    ])
    def test_eval(self, src, expected):
        assert run(src) == expected

    def test_nth_out_of_range(self):
        with pytest.raises(InterpreterRuntimeError):
            run("(nth (list 1) 5)")


class TestSpecialForms:
    def test_if_branches(self):
        assert run("(if true 1 2)") == 1
        assert run("(if false 1 2)") == 2
        assert run("(if false 1)") is None
        assert run("(if 0 1 2)") == 1  # 0 is truthy

    def test_let_scoping(self):
        assert run("(let ((x 1) (y 2)) (+ x y))") == 3
        assert run("(let ((x 1)) (let ((x 2)) x))") == 2

    def test_let_sequential_bindings(self):
        assert run("(let ((x 1) (y (+ x 1))) y)") == 2

    def test_begin_returns_last(self):
        assert run("(begin 1 2 3)") == 3

    def test_and_or_short_circuit(self):
        bridge = NullBridge()
        assert run("(and 1 2 3)") == 3
        assert run("(and 1 false (send-to 1 2))", bridge) is False
        assert bridge.calls == []  # send-to never evaluated
        assert run("(or false nil 7)") == 7
        assert run("(or 1 (send-to 1 2))", bridge) == 1
        assert bridge.calls == []

    def test_define_and_set(self):
        env = base_env()
        run("(define x 10)", env=env)
        assert run("x", env=env) == 10
        run("(set! x 11)", env=env)
        assert run("x", env=env) == 11

    def test_set_unbound_raises(self):
        with pytest.raises(InterpreterRuntimeError):
            run("(set! ghost 1)")

    def test_while_loop(self):
        env = base_env()
        run("(define i 0)", env=env)
        run("(define total 0)", env=env)
        run("(while (< i 5) (set! total (+ total i)) (set! i (+ i 1)))", env=env)
        assert run("total", env=env) == 10

    def test_for_loop(self):
        env = base_env()
        run("(define acc 0)", env=env)
        run("(for x (list 1 2 3) (set! acc (+ acc x)))", env=env)
        assert run("acc", env=env) == 6

    def test_quote_strips_symbols(self):
        assert run("'(a 1 (b))") == ["a", 1, ["b"]]

    def test_unbound_variable(self):
        with pytest.raises(InterpreterRuntimeError):
            run("mystery")

    def test_calling_noncallable(self):
        with pytest.raises(InterpreterRuntimeError):
            run("(1 2 3)")

    def test_empty_form(self):
        with pytest.raises(InterpreterRuntimeError):
            run("()")


class TestFuelLimit:
    def test_infinite_loop_trapped(self):
        with pytest.raises(InterpreterRuntimeError) as err:
            run("(while true 1)", max_steps=1000)
        assert "steps" in str(err.value)

    def test_fuel_resets_per_body(self):
        bridge = NullBridge()
        ev = Evaluator(bridge, max_steps=200)
        body = [parse_one("(+ 1 2)")]
        for _ in range(10):  # 10 bodies, each well under the limit
            assert ev.run_body(body, base_env()) == 3


class TestEffectForms:
    def test_identity_forms(self):
        b = NullBridge()
        assert run("(self)", b) == "<self_address>"
        assert run("(reply-addr)", b) == "<reply_addr>"
        assert run("(host-space)", b) == "<host_space>"
        assert run("(now)", b) == 12.5

    def test_send_forms_route_to_bridge(self):
        b = NullBridge()
        run('(send-to "target" 42)', b)
        run('(send "a/*" (list 1) "rt")', b)
        run('(broadcast "a/**" 2)', b)
        names = [c[0] for c in b.calls]
        assert names == ["send_to", "send_pattern", "broadcast_pattern"]
        assert b.calls[1][1] == ("a/*", [1], "rt")

    def test_become_and_create(self):
        b = NullBridge()
        run("(become worker 1 2)", b)
        assert b.calls[-1] == ("become", ("worker", [1, 2]))
        assert run("(create worker 5)", b) == "<create-result>"

    def test_visibility_forms(self):
        b = NullBridge()
        run('(make-visible (self) "a/b")', b)
        run('(make-invisible (self))', b)
        run('(change-attributes (self) (list "x" "y"))', b)
        names = [c[0] for c in b.calls]
        assert "make_visible" in names
        assert "make_invisible" in names
        assert "change_attributes" in names

    def test_print_emits(self):
        b = NullBridge()
        run('(print "x =" (+ 1 2))', b)
        assert b.printed == ["x = 3"]

    def test_schedule_and_terminate(self):
        b = NullBridge()
        run("(schedule 1.5 'wake)", b)
        run("(terminate)", b)
        assert ("schedule", (1.5, "wake")) in b.calls
        assert ("terminate", ()) in b.calls
