"""Tests: replicated services (load balance + reliability)."""

import pytest

from repro.apps.replicated import run_replicated_service
from repro.core.manager import Arbitration
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem
from repro.util import chi_square_uniform


def run(replicas, seed=0, **kw):
    system = ActorSpaceSystem(topology=Topology.lan(9), seed=seed)
    return run_replicated_service(system, replicas=replicas, **kw)


class TestLoadBalance:
    def test_all_requests_answered(self):
        result = run(4, requests=100)
        assert result.success_rate == 1.0
        assert sum(result.per_replica) == 100

    def test_distribution_near_uniform(self):
        result = run(8, requests=400)
        # Chi-square for 7 dof at p=0.001 is ~24.3; random assignment
        # should sit far below.
        assert chi_square_uniform(result.per_replica) < 25

    def test_every_replica_participates(self):
        result = run(8, requests=400)
        assert all(c > 0 for c in result.per_replica)

    def test_makespan_scales_down(self):
        one = run(1, requests=200).makespan
        eight = run(8, requests=200).makespan
        assert eight < one / 2

    def test_round_robin_is_perfectly_even(self):
        result = run(4, requests=100, arbitration=Arbitration.ROUND_ROBIN)
        assert result.per_replica == [25, 25, 25, 25]


class TestReliability:
    def test_crashes_lose_requests_without_retry(self):
        result = run(8, requests=200, crash_replicas=4, crash_after=0.4,
                     seed=11)
        assert result.success_rate < 1.0

    def test_retry_recovers(self):
        base = run(8, requests=200, crash_replicas=4, crash_after=0.4, seed=11)
        retry = run(8, requests=200, crash_replicas=4, crash_after=0.4,
                    timeout=0.5, seed=11)
        assert retry.success_rate > base.success_rate
        assert retry.success_rate > 0.95
        assert retry.retries_used > 0

    def test_no_crash_needs_no_retries(self):
        result = run(4, requests=100, timeout=5.0)
        assert result.retries_used == 0
        assert result.success_rate == 1.0

    def test_all_replicas_down_gives_up(self):
        result = run(2, requests=50, crash_replicas=2, crash_after=0.05,
                     timeout=0.3)
        assert result.success_rate < 1.0  # nobody can answer


class TestMultipleClients:
    def test_clients_split_requests(self):
        result = run(4, requests=120, clients=3)
        assert result.requests == 120
        assert result.success_rate == 1.0
