"""Tests: the section-6 dynamic process pool."""

import pytest

from repro.apps.process_pool import Job, expected_result, run_process_pool
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


class TestJob:
    def test_split_covers_range_exactly(self):
        job = Job(0, 100)
        parts = job.split(4)
        assert parts[0].lo == 0 and parts[-1].hi == 100
        assert sum(p.size for p in parts) == 100
        for a, b in zip(parts, parts[1:]):
            assert a.hi == b.lo

    def test_split_more_parts_than_items(self):
        parts = Job(0, 2).split(10)
        assert len(parts) == 2

    def test_compute_closed_form_matches_bruteforce(self):
        job = Job(3, 17)
        assert job.compute() == sum(i * i for i in range(3, 17))

    def test_compute_from_zero(self):
        assert Job(0, 5).compute() == 0 + 1 + 4 + 9 + 16


def run(workers, seed=0, job_size=512, **kw):
    system = ActorSpaceSystem(topology=Topology.lan(4), seed=seed)
    return run_process_pool(system, workers=workers, job_size=job_size,
                            grain=32, **kw)


class TestPoolRuns:
    def test_single_worker_correct(self):
        result = run(1)
        assert result.correct

    def test_many_workers_correct_and_distributed(self):
        result = run(8)
        assert result.correct
        assert sum(1 for j in result.worker_jobs if j > 0) >= 4

    def test_makespan_improves_with_pool_size(self):
        # A big enough job that compute dominates coordination latency.
        slow = run(1, job_size=4096).makespan
        fast = run(8, job_size=4096).makespan
        assert fast < slow

    def test_client_never_addresses_a_worker(self):
        """The client uses only the pattern; removing a worker's identity
        (changing the attribute names) must not matter."""
        system = ActorSpaceSystem(topology=Topology.lan(4), seed=0)
        result = run_process_pool(system, workers=4, job_size=256, grain=32)
        assert result.correct

    def test_mid_run_arrivals_participate(self):
        # Arrivals land while plenty of leaf work is still being scattered.
        result = run(2, job_size=4096, arrivals=[(0.05, 6)])
        assert result.correct
        assert result.pool_size_final == 8
        late_jobs = result.worker_jobs[2:]
        assert any(j > 0 for j in late_jobs), "late arrivals never got work"

    def test_arrivals_shorten_makespan(self):
        without = run(2, job_size=4096)
        with_arrivals = run(2, job_size=4096, arrivals=[(0.05, 6)])
        assert with_arrivals.makespan <= without.makespan

    def test_division_tree_counted(self):
        result = run(4)
        # 512/32 = 16 leaves with fanout 4: two levels of division.
        assert result.leaves == 16
        assert result.divisions == 5

    def test_deterministic_given_seed(self):
        a = run(4, seed=9)
        b = run(4, seed=9)
        assert a.makespan == b.makespan
        assert a.worker_jobs == b.worker_jobs

    def test_seeds_change_distribution(self):
        a = run(4, seed=1)
        b = run(4, seed=2)
        assert a.worker_jobs != b.worker_jobs
