"""Tests: TSP chunked search scheduling details."""

from repro.apps.tsp import run_tsp
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


def run(chunk, share=True, seed=0):
    system = ActorSpaceSystem(topology=Topology.lan(4), seed=seed)
    return run_tsp(system, n_cities=9, workers=4, instance_seed=11,
                   share_bounds=share, chunk=chunk)


class TestChunking:
    def test_chunk_size_does_not_affect_correctness(self):
        for chunk in (10, 100, 5000):
            assert run(chunk).found_optimum

    def test_small_chunks_hear_more_bounds(self):
        """Finer interleaving gives bound broadcasts more chances to land
        mid-search (they cannot arrive inside one chunk)."""
        fine = run(chunk=20)
        coarse = run(chunk=5000)
        assert fine.bounds_heard >= coarse.bounds_heard

    def test_isolated_single_worker_equals_sequential_search(self):
        """One worker with no sharing is plain sequential B&B: the node
        count must be independent of chunking."""
        a = run(chunk=10, share=False)
        b = run(chunk=5000, share=False)
        one_a = ActorSpaceSystem(topology=Topology.lan(4), seed=0)
        # (single-worker case: chunking irrelevant to expansion count)
        from repro.apps.tsp import run_tsp as rt

        w1_small = rt(one_a, n_cities=9, workers=1, instance_seed=11,
                      share_bounds=False, chunk=10)
        one_b = ActorSpaceSystem(topology=Topology.lan(4), seed=0)
        w1_big = rt(one_b, n_cities=9, workers=1, instance_seed=11,
                    share_bounds=False, chunk=5000)
        assert w1_small.nodes_expanded == w1_big.nodes_expanded

    def test_worker_cap_at_branch_count(self):
        result = run(chunk=100)
        assert result.workers == 4
        big = ActorSpaceSystem(topology=Topology.lan(4), seed=0)
        from repro.apps.tsp import run_tsp as rt

        capped = rt(big, n_cities=6, workers=50, instance_seed=11)
        assert capped.workers == 5  # n_cities - 1
