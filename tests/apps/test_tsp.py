"""Tests: branch-and-bound TSP with bound broadcasting."""

import numpy as np
import pytest

from repro.apps.tsp import held_karp, random_instance, run_tsp
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


class TestInstanceAndOracle:
    def test_instance_is_symmetric_with_zero_diagonal(self):
        d = random_instance(8, seed=1)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0)

    def test_instance_deterministic(self):
        assert np.allclose(random_instance(6, 3), random_instance(6, 3))

    def test_held_karp_on_square(self):
        # Four corners of a unit square: optimal tour is the perimeter (4).
        pts = np.array([[0, 0], [0, 1], [1, 1], [1, 0]], dtype=float)
        diff = pts[:, None, :] - pts[None, :, :]
        dist = np.sqrt((diff**2).sum(-1))
        assert held_karp(dist) == pytest.approx(4.0)

    def test_held_karp_trivial_sizes(self):
        assert held_karp(np.zeros((1, 1))) == 0.0
        d = np.array([[0.0, 2.0], [2.0, 0.0]])
        assert held_karp(d) == pytest.approx(4.0)


def run(workers=4, share=True, n=9, seed=0, instance_seed=5):
    system = ActorSpaceSystem(topology=Topology.lan(4), seed=seed)
    return run_tsp(system, n_cities=n, workers=workers,
                   instance_seed=instance_seed, share_bounds=share)


class TestSearch:
    def test_finds_optimum_with_sharing(self):
        assert run(share=True).found_optimum

    def test_finds_optimum_without_sharing(self):
        assert run(share=False).found_optimum

    def test_sharing_prunes_nodes(self):
        shared = run(share=True)
        isolated = run(share=False)
        assert shared.nodes_expanded < isolated.nodes_expanded
        assert shared.bound_broadcasts > 0
        assert isolated.bound_broadcasts == 0

    def test_bounds_heard_by_peers(self):
        result = run(share=True)
        assert result.bounds_heard > 0

    def test_single_worker(self):
        result = run(workers=1)
        assert result.found_optimum

    def test_more_workers_than_branches(self):
        result = run(workers=12, n=8)
        assert result.found_optimum

    def test_deterministic(self):
        a = run(seed=4)
        b = run(seed=4)
        assert a.nodes_expanded == b.nodes_expanded
        assert a.best_cost == b.best_cost
