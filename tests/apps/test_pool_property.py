"""Property test: the process pool computes correctly for any parameters.

The divide-and-conquer protocol (split, scatter via patterns, merge via
collectors) must produce the exact reduction for *every* combination of
job size, grain, fanout, and pool size — including degenerate corners
(grain >= job, fanout 1, single worker).  hypothesis sweeps the space.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.process_pool import Job, run_process_pool
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


@given(
    job_size=st.integers(1, 400),
    grain=st.integers(1, 200),
    fanout=st.integers(1, 6),
    workers=st.integers(1, 6),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=25, deadline=None)
def test_pool_always_computes_the_exact_reduction(job_size, grain, fanout,
                                                  workers, seed):
    system = ActorSpaceSystem(topology=Topology.lan(2), seed=seed)
    result = run_process_pool(
        system, workers=workers, job_size=job_size, grain=grain,
        fanout=fanout, cost_per_item=0.0001,
    )
    assert result.correct, (
        f"pool returned {result.result}, expected {result.expected} "
        f"(size={job_size} grain={grain} fanout={fanout} workers={workers})"
    )


@given(parts=st.integers(1, 20), lo=st.integers(0, 100),
       size=st.integers(1, 500))
@settings(max_examples=100)
def test_split_partitions_exactly(parts, lo, size):
    job = Job(lo, lo + size)
    pieces = job.split(parts)
    assert pieces[0].lo == job.lo and pieces[-1].hi == job.hi
    assert all(p.size > 0 for p in pieces)
    for a, b in zip(pieces, pieces[1:]):
        assert a.hi == b.lo
    assert sum(p.compute() for p in pieces) == job.compute()
