"""Tests: the software repository and diffusion scheduling apps."""

import numpy as np
import pytest

from repro.apps.diffusion import run_diffusion
from repro.apps.repository import (
    build_repository,
    implements,
    interface_desc,
    query_all,
    query_one,
)
from repro.core.lattice import Has
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


def repo_system(count=120, seed=0):
    system = ActorSpaceSystem(topology=Topology.lan(4), seed=seed)
    handle = build_repository(system, class_count=count, seed=seed)
    return system, handle


class TestRepository:
    def test_population_is_deterministic(self):
        _s1, h1 = repo_system(seed=3)
        _s2, h2 = repo_system(seed=3)
        assert sorted(h1.factories) == sorted(h2.factories)

    def test_query_one_returns_single_instance(self):
        system, handle = repo_system()
        query_one(system, handle, "collections/**")
        system.run()
        assert len(handle.client.instances) == 1
        name = handle.client.instances[0][0]
        assert name.startswith("collections.")

    def test_query_one_respects_pattern(self):
        system, handle = repo_system()
        query_one(system, handle, "io/stream/*")
        system.run()
        assert handle.client.instances[0][0].startswith("io.stream.")

    def test_query_all_enumerates_namespace(self):
        system, handle = repo_system()
        query_all(system, handle, "math/**")
        system.run()
        found = {name for name, _ifaces in handle.client.classes}
        expected = {n for n in handle.factories if n.startswith("math.")}
        assert found == expected

    def test_factory_instantiation_counted(self):
        system, handle = repo_system()
        query_one(system, handle, "ui/**")
        system.run()
        assert sum(f.instantiations for f in handle.factories.values()) == 1

    def test_unmatched_query_suspends_until_class_published(self):
        """Open repository: a query for a not-yet-published interface is
        answered when the class arrives (run-time extension)."""
        system, handle = repo_system(count=10)
        query_one(system, handle, "brand-new/thing")
        system.run()
        assert handle.client.instances == []
        from repro.apps.repository import ClassFactory

        factory = ClassFactory("brand.new.v1", ["brand-new/thing"])
        addr = system.create_actor(factory, space=handle.space)
        system.make_visible(addr, "brand-new/thing", handle.space)
        system.run()
        assert [i[0] for i in handle.client.instances] == ["brand.new.v1"]

    def test_lattice_view_of_interfaces(self):
        system, handle = repo_system()
        name, factory = next(iter(handle.factories.items()))
        exact = interface_desc(factory.interfaces)
        assert implements(factory, exact)
        assert implements(factory, Has(factory.interfaces[0]))
        assert not implements(factory, Has("nonexistent/iface"))


class TestDiffusion:
    def run(self, diffuse, seed=0, **kw):
        system = ActorSpaceSystem(topology=Topology.lan(4), seed=seed)
        kw.setdefault("rows", 3)
        kw.setdefault("cols", 3)
        kw.setdefault("hot_units", 36)
        kw.setdefault("max_time", 40)
        return run_diffusion(system, diffuse=diffuse, **kw)

    def test_all_work_completes(self):
        for diffuse in (True, False):
            result = self.run(diffuse)
            assert result.completed == result.injected

    def test_diffusion_spreads_load(self):
        result = self.run(True)
        assert result.transfers > 0
        # Find a sample with work outstanding and check spread.
        mid = next((loads for _t, loads in result.load_series
                    if 0 < sum(loads) <= 30), None)
        assert mid is not None
        assert sum(1 for l in mid if l > 0) > 1

    def test_no_diffusion_keeps_hot_spot(self):
        result = self.run(False)
        assert result.transfers == 0
        for _t, loads in result.load_series:
            assert all(l == 0 for l in loads[1:])  # only the corner works

    def test_diffusion_shortens_makespan(self):
        with_d = self.run(True)
        without = self.run(False)
        assert with_d.makespan is not None and without.makespan is not None
        assert with_d.makespan < without.makespan

    def test_variance_decays_with_diffusion(self):
        result = self.run(True)
        early = result.variance_at(1)
        # Find last sample with outstanding work.
        busy = [i for i, (_t, loads) in enumerate(result.load_series)
                if sum(loads) > 0]
        late = result.variance_at(busy[-1]) if busy else 0.0
        assert late <= early
