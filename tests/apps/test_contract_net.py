"""Tests: contract-net allocation over patterns."""

import pytest

from repro.apps.contract_net import Task, run_contract_net
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


def system(seed=0, nodes=4):
    return ActorSpaceSystem(topology=Topology.lan(nodes), seed=seed)


STANDARD_CONTRACTORS = [
    ("ada", ["solve", "verify"], 2.0),
    ("bob", ["solve"], 1.0),
    ("cyd", ["verify"], 1.5),
]


class TestContractNet:
    def test_all_tasks_complete(self):
        tasks = [Task("solve", 1.0) for _ in range(4)]
        result = run_contract_net(system(), STANDARD_CONTRACTORS, tasks)
        assert len(result.completed) == 4
        assert result.unawarded == []

    def test_only_matching_skills_bid(self):
        tasks = [Task("verify", 1.0)]
        result = run_contract_net(system(), STANDARD_CONTRACTORS, tasks)
        # ada and cyd have "verify"; bob does not.
        assert result.bids_per_task[tasks[0].task_id] == 2
        assert result.per_contractor["bob"] == 0

    def test_fastest_idle_expert_wins(self):
        tasks = [Task("solve", 2.0)]
        result = run_contract_net(system(), STANDARD_CONTRACTORS, tasks)
        winner, _t = result.completed[tasks[0].task_id]
        assert winner == "ada"  # speed 2.0 beats bob's 1.0

    def test_load_spreads_when_winner_busy(self):
        """Bids reflect busy_until: with equal speeds, the queued winner
        of task 1 loses task 2 to the idle peer."""
        peers = [("eve", ["solve"], 1.0), ("fay", ["solve"], 1.0)]
        tasks = [Task("solve", 4.0) for _ in range(2)]
        result = run_contract_net(system(), peers, tasks, bid_window=0.5)
        winners = {result.completed[t.task_id][0] for t in tasks}
        assert winners == {"eve", "fay"}

    def test_no_expert_means_unawarded(self):
        tasks = [Task("translate", 1.0)]
        result = run_contract_net(system(), STANDARD_CONTRACTORS, tasks)
        assert result.unawarded == [tasks[0].task_id]
        assert result.completed == {}

    def test_skill_patterns_are_open(self):
        """A contractor added with a new skill serves later tasks; no
        registry changes, just visibility."""
        sys_ = system()
        from repro.apps.contract_net import Contractor

        tasks = [Task("solve", 1.0)]
        result = run_contract_net(sys_, STANDARD_CONTRACTORS + [
            ("dee", ["solve"], 10.0)], tasks)
        assert result.completed[tasks[0].task_id][0] == "dee"

    def test_deterministic(self):
        tasks = [Task("solve", 1.5), Task("verify", 1.0)]
        a = run_contract_net(system(seed=3), STANDARD_CONTRACTORS,
                             [Task("solve", 1.5), Task("verify", 1.0)])
        b = run_contract_net(system(seed=3), STANDARD_CONTRACTORS,
                             [Task("solve", 1.5), Task("verify", 1.0)])
        assert a.per_contractor == b.per_contractor
        assert a.makespan == b.makespan

    def test_makespan_positive_and_bounded(self):
        tasks = [Task("solve", 1.0) for _ in range(3)]
        result = run_contract_net(system(), STANDARD_CONTRACTORS, tasks)
        assert result.makespan > 0
        # 3 tasks of size 1 at combined speed 3: well under 10 even with
        # bidding windows.
        assert result.makespan < 10
