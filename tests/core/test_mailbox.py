"""Unit tests: the three-port mailbox (section 7.2)."""

import pytest

from repro.core.addresses import ActorAddress
from repro.core.errors import MailboxClosedError
from repro.core.mailbox import Mailbox
from repro.core.messages import Envelope, Message, Mode, Port


def env(port=Port.INVOCATION, payload="x", rpc_id=None):
    headers = {"rpc_id": rpc_id} if rpc_id is not None else {}
    return Envelope(
        message=Message(payload, headers=headers),
        sender=ActorAddress(0, 0),
        mode=Mode.DIRECT,
        target=ActorAddress(0, 1),
        port=port,
    )


class TestDeliveryAndOrder:
    def test_invocations_fifo(self):
        mb = Mailbox()
        for i in range(3):
            mb.deliver(env(payload=i))
        got = [mb.next_ready().message.payload for _ in range(3)]
        assert got == [0, 1, 2]

    def test_behavior_port_outranks_invocation(self):
        mb = Mailbox()
        mb.deliver(env(payload="inv"))
        mb.deliver(env(port=Port.BEHAVIOR, payload="next-behavior"))
        assert mb.next_ready().message.payload == "next-behavior"
        assert mb.next_ready().message.payload == "inv"

    def test_empty_returns_none(self):
        assert Mailbox().next_ready() is None

    def test_pending_counts_all_ports(self):
        mb = Mailbox()
        mb.deliver(env())
        mb.deliver(env(port=Port.BEHAVIOR))
        mb.deliver(env(port=Port.RPC, rpc_id="r1"))
        assert mb.pending == 3
        assert not mb.is_empty

    def test_delivered_count_accumulates(self):
        mb = Mailbox()
        for _ in range(5):
            mb.deliver(env())
        mb.next_ready()
        assert mb.delivered_count == 5


class TestRpcPort:
    def test_rpc_claimed_by_id_not_order(self):
        mb = Mailbox()
        mb.deliver(env(port=Port.RPC, payload="first", rpc_id="a"))
        mb.deliver(env(port=Port.RPC, payload="second", rpc_id="b"))
        assert mb.take_rpc("b").message.payload == "second"
        assert mb.take_rpc("a").message.payload == "first"
        assert mb.take_rpc("a") is None

    def test_rpc_not_returned_by_next_ready(self):
        mb = Mailbox()
        mb.deliver(env(port=Port.RPC, rpc_id="x"))
        assert mb.next_ready() is None


class TestClose:
    def test_close_returns_leftovers_and_blocks_delivery(self):
        mb = Mailbox()
        mb.deliver(env(payload=1))
        mb.deliver(env(port=Port.RPC, rpc_id="r"))
        leftovers = mb.close()
        assert len(leftovers) == 2
        assert mb.closed
        assert mb.is_empty
        with pytest.raises(MailboxClosedError):
            mb.deliver(env())


class TestRpcCollisions:
    """Two replies sharing an rpc_id must both survive (regression:
    `deliver` used to overwrite the pending reply, deadlocking the
    waiting actor)."""

    def test_colliding_replies_queue_fifo(self):
        mb = Mailbox()
        mb.deliver(env(port=Port.RPC, payload="first", rpc_id="a"))
        mb.deliver(env(port=Port.RPC, payload="second", rpc_id="a"))
        assert mb.rpc_collisions == 1
        assert mb.take_rpc("a").message.payload == "first"
        assert mb.take_rpc("a").message.payload == "second"
        assert mb.take_rpc("a") is None

    def test_collision_counter_and_delivered_count(self):
        mb = Mailbox()
        for _ in range(3):
            mb.deliver(env(port=Port.RPC, rpc_id="dup"))
        assert mb.delivered_count == 3
        assert mb.rpc_collisions == 2
        assert mb.pending == 3

    def test_no_collision_across_distinct_ids(self):
        mb = Mailbox()
        mb.deliver(env(port=Port.RPC, rpc_id="a"))
        mb.deliver(env(port=Port.RPC, rpc_id="b"))
        assert mb.rpc_collisions == 0

    def test_close_drains_queued_rpc_replies(self):
        mb = Mailbox()
        mb.deliver(env(port=Port.RPC, payload=1, rpc_id="a"))
        mb.deliver(env(port=Port.RPC, payload=2, rpc_id="a"))
        leftovers = mb.close()
        assert len(leftovers) == 2
        assert mb.is_empty
