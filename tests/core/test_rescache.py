"""Unit + randomized tests: the epoch-invalidated resolution cache.

The cache memoizes ``resolve_actors``/``resolve_spaces`` keyed on
``(space, pattern)`` and revalidates on two tiers of epoch evidence:
the directory-wide epoch (nothing changed at all) and the per-space
epochs of the resolution path (nothing changed *where this resolution
looked*).  These tests pin the hit/miss/invalidation protocol, every
invalidation rule, and — via randomized op sequences — equivalence with
a fresh uncached walk.
"""

import random

import pytest

from repro.core.actorspace import SpaceRecord
from repro.core.addresses import ActorAddress, SpaceAddress
from repro.core.matching import (
    MatchStats,
    ResolutionCache,
    resolve_actors,
    resolve_destination,
    resolve_spaces,
)
from repro.core.messages import Destination
from repro.core.patterns import parse_pattern
from repro.core.visibility import Directory


def make_directory(n_spaces=3):
    d = Directory()
    spaces = [SpaceAddress(0, i) for i in range(n_spaces)]
    for s in spaces:
        d.add_space(SpaceRecord(s))
    return d, spaces


class TestHitMissProtocol:
    def test_repeat_resolution_hits(self):
        d, (root, *_r) = make_directory()
        a = ActorAddress(1, 0)
        d.make_visible(a, "svc/print", root)
        cache = ResolutionCache()
        stats = MatchStats()
        first = resolve_actors(d, "svc/*", root, stats, cache=cache)
        second = resolve_actors(d, "svc/*", root, stats, cache=cache)
        assert first == second == {a}
        assert (cache.hits, cache.misses, cache.invalidations) == (1, 1, 0)
        assert stats.cache_hits == 1 and stats.cache_misses == 1

    def test_hit_does_not_rewalk(self):
        d, (root, *_r) = make_directory()
        for i in range(20):
            d.make_visible(ActorAddress(1, i), f"svc/inst{i}", root)
        cache = ResolutionCache()
        resolve_actors(d, "svc/*", root, cache=cache)
        stats = MatchStats()
        resolve_actors(d, "svc/*", root, stats, cache=cache)
        assert stats.entries_examined == 0

    def test_cached_result_is_a_copy(self):
        d, (root, *_r) = make_directory()
        a = ActorAddress(1, 0)
        d.make_visible(a, "x", root)
        cache = ResolutionCache()
        got = resolve_actors(d, "x", root, cache=cache)
        got.add(ActorAddress(9, 9))
        assert resolve_actors(d, "x", root, cache=cache) == {a}

    def test_distinct_patterns_and_scopes_cached_separately(self):
        d, (s0, s1, _s2) = make_directory()
        a, b = ActorAddress(1, 0), ActorAddress(1, 1)
        d.make_visible(a, "x", s0)
        d.make_visible(b, "x", s1)
        cache = ResolutionCache()
        assert resolve_actors(d, "x", s0, cache=cache) == {a}
        assert resolve_actors(d, "x", s1, cache=cache) == {b}
        assert resolve_actors(d, "*", s0, cache=cache) == {a}
        assert cache.misses == 3 and cache.hits == 0
        assert len(cache) == 3

    def test_actor_and_space_resolutions_do_not_collide(self):
        d, (root, _s1, _s2) = make_directory()
        sub = SpaceAddress(0, 9)
        d.add_space(SpaceRecord(sub))
        d.make_visible(sub, "x", root)
        d.make_visible(ActorAddress(1, 0), "x", root)
        cache = ResolutionCache()
        assert resolve_actors(d, "x", root, cache=cache) == {ActorAddress(1, 0)}
        assert resolve_spaces(d, "x", root, cache=cache) == {sub}

    def test_lru_eviction_bounds_entries(self):
        d, (root, *_r) = make_directory()
        d.make_visible(ActorAddress(1, 0), "a", root)
        cache = ResolutionCache(max_entries=4)
        for i in range(10):
            resolve_actors(d, f"p{i}", root, cache=cache)
        assert len(cache) == 4
        # Oldest entries were evicted: re-resolving them misses again.
        before = cache.misses
        resolve_actors(d, "p0", root, cache=cache)
        assert cache.misses == before + 1


class TestInvalidationRules:
    def _cached(self, d, root, pattern="svc/*"):
        cache = ResolutionCache()
        resolve_actors(d, pattern, root, cache=cache)
        return cache

    def test_make_visible_on_path_invalidates(self):
        d, (root, *_r) = make_directory()
        a, b = ActorAddress(1, 0), ActorAddress(1, 1)
        d.make_visible(a, "svc/a", root)
        cache = self._cached(d, root)
        d.make_visible(b, "svc/b", root)
        assert resolve_actors(d, "svc/*", root, cache=cache) == {a, b}
        assert cache.invalidations == 1

    def test_make_invisible_on_path_invalidates(self):
        d, (root, *_r) = make_directory()
        a = ActorAddress(1, 0)
        d.make_visible(a, "svc/a", root)
        cache = self._cached(d, root)
        d.make_invisible(a, root)
        assert resolve_actors(d, "svc/*", root, cache=cache) == set()

    def test_change_attributes_on_path_invalidates(self):
        d, (root, *_r) = make_directory()
        a = ActorAddress(1, 0)
        d.make_visible(a, "svc/a", root)
        cache = self._cached(d, root)
        d.change_attributes(a, "other/a", root)
        assert resolve_actors(d, "svc/*", root, cache=cache) == set()

    def test_destroy_space_on_path_invalidates(self):
        d, (root, _s1, _s2) = make_directory()
        sub = SpaceAddress(0, 9)
        d.add_space(SpaceRecord(sub))
        d.make_visible(sub, "dept", root)
        a = ActorAddress(1, 0)
        d.make_visible(a, "kind/a", sub)
        cache = ResolutionCache()
        assert resolve_actors(d, "dept/kind/*", root, cache=cache) == {a}
        d.destroy_space(sub)
        assert resolve_actors(d, "dept/kind/*", root, cache=cache) == set()

    def test_mutation_in_nested_space_invalidates_outer_scope(self):
        d, (root, _s1, _s2) = make_directory()
        sub = SpaceAddress(0, 9)
        d.add_space(SpaceRecord(sub))
        d.make_visible(sub, "dept", root)
        cache = ResolutionCache()
        assert resolve_actors(d, "dept/**", root, cache=cache) == set()
        # The mutation touches only `sub`, but `sub` is on the path.
        a = ActorAddress(1, 0)
        d.make_visible(a, "kind/a", sub)
        assert resolve_actors(d, "dept/**", root, cache=cache) == {a}

    def test_space_added_after_dangling_reference_invalidates(self):
        # A space entry may reference an address the directory has not
        # seen yet (bus races); resolution through it finds nothing.
        # Creating the space later must invalidate, even though no
        # *visited live* registry changed.
        d, (root, *_r) = make_directory()
        ghost = SpaceAddress(7, 7)
        d.make_visible(ghost, "dept", root)
        cache = ResolutionCache()
        assert resolve_actors(d, "dept/*", root, cache=cache) == set()
        d.add_space(SpaceRecord(ghost))
        a = ActorAddress(1, 0)
        d.make_visible(a, "svc", ghost)
        assert resolve_actors(d, "dept/*", root, cache=cache) == {a}

    def test_unrelated_space_mutation_revalidates_without_rewalk(self):
        d, (root, other, _s2) = make_directory()
        a = ActorAddress(1, 0)
        d.make_visible(a, "svc/a", root)
        cache = self._cached(d, root)
        # Mutate a space the cached walk never visited.
        d.make_visible(ActorAddress(1, 1), "noise", other)
        stats = MatchStats()
        assert resolve_actors(d, "svc/*", root, stats, cache=cache) == {a}
        assert stats.cache_hits == 1
        assert stats.entries_examined == 0
        assert cache.invalidations == 0
        # The global epoch was refreshed: the next lookup is tier-1 again.
        stats2 = MatchStats()
        resolve_actors(d, "svc/*", root, stats2, cache=cache)
        assert stats2.cache_hits == 1

    def test_noop_make_invisible_keeps_cache_valid(self):
        d, (root, *_r) = make_directory()
        a = ActorAddress(1, 0)
        d.make_visible(a, "svc/a", root)
        cache = self._cached(d, root)
        epoch = d.epoch
        d.make_invisible(ActorAddress(9, 9), root)  # absent: no-op
        assert d.epoch == epoch
        stats = MatchStats()
        resolve_actors(d, "svc/*", root, stats, cache=cache)
        assert stats.cache_hits == 1 and cache.invalidations == 0

    def test_noop_change_attributes_keeps_cache_valid(self):
        d, (root, *_r) = make_directory()
        a = ActorAddress(1, 0)
        d.make_visible(a, "svc/a", root)
        cache = self._cached(d, root)
        epoch = d.epoch
        d.change_attributes(a, "svc/a", root)  # identical attributes
        assert d.epoch == epoch
        stats = MatchStats()
        resolve_actors(d, "svc/*", root, stats, cache=cache)
        assert stats.cache_hits == 1 and cache.invalidations == 0


class TestDestinationResolution:
    def test_pattern_space_spec_uses_cache(self):
        d, (root, _s1, _s2) = make_directory()
        sub = SpaceAddress(0, 9)
        d.add_space(SpaceRecord(sub))
        d.make_visible(sub, "pool", root)
        a = ActorAddress(1, 0)
        d.make_visible(a, "worker", sub)
        dest = Destination(parse_pattern("*"), parse_pattern("pool"))
        cache = ResolutionCache()
        assert resolve_destination(d, dest, root, cache=cache) == {a}
        hits_before = cache.hits
        assert resolve_destination(d, dest, root, cache=cache) == {a}
        # Both the space-spec and the per-space actor resolutions hit.
        assert cache.hits >= hits_before + 2


PANEL = [
    parse_pattern(p)
    for p in ("a", "a/b", "a/*", "*/b", "**", "a/**", "**/c", "*", "a/*/c",
              "[ab]", "[ab]/c", "{a,b}/*")
]


class TestRandomizedEquivalence:
    """Cached resolution must equal a fresh walk after *any* op sequence."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_ops_cached_equals_fresh(self, seed):
        rng = random.Random(seed)
        d = Directory()
        spaces = [SpaceAddress(0, i) for i in range(4)]
        actors = [ActorAddress(1, i) for i in range(6)]
        alive = []
        for s in spaces:
            d.add_space(SpaceRecord(s))
            alive.append(s)
        cache = ResolutionCache()
        atoms = ["a", "b", "c"]

        def random_attr():
            return "/".join(
                rng.choice(atoms) for _ in range(rng.randint(1, 3))
            )

        for _step in range(120):
            op = rng.random()
            try:
                if op < 0.45:
                    d.make_visible(rng.choice(actors), random_attr(),
                                   rng.choice(alive))
                elif op < 0.65:
                    d.make_invisible(rng.choice(actors), rng.choice(alive))
                elif op < 0.80:
                    d.make_visible(rng.choice(spaces), random_attr(),
                                   rng.choice(alive))
                elif op < 0.90:
                    d.change_attributes(rng.choice(actors), random_attr(),
                                        rng.choice(alive))
                elif op < 0.95 and len(alive) > 1:
                    victim = rng.choice(alive)
                    d.destroy_space(victim)
                    alive.remove(victim)
                else:
                    fresh = SpaceAddress(0, len(spaces) + _step)
                    d.add_space(SpaceRecord(fresh))
                    spaces.append(fresh)
                    alive.append(fresh)
            except Exception:
                # Cycle/capability/unknown errors are fine: the point is
                # the cache, not the op's preconditions.
                pass
            pattern = rng.choice(PANEL)
            scope = rng.choice(alive)
            cached = resolve_actors(d, pattern, scope, cache=cache)
            fresh_result = resolve_actors(d, pattern, scope)
            assert cached == fresh_result, (
                f"step {_step}: {pattern} @ {scope}: "
                f"cached={cached} fresh={fresh_result}"
            )
            cached_spaces = resolve_spaces(d, pattern, scope, cache=cache)
            fresh_spaces = resolve_spaces(d, pattern, scope)
            assert cached_spaces == fresh_spaces
        assert cache.hits > 0  # the scenario actually exercised reuse
