"""Unit tests: atoms and attribute paths."""

import pytest

from repro.core.atoms import (
    EMPTY_PATH,
    AttributePath,
    as_path,
    as_paths,
    check_atom,
    is_valid_atom,
)
from repro.core.errors import AttributeSyntaxError


class TestAtomValidation:
    def test_simple_atoms_are_valid(self):
        for atom in ("a", "print", "node-1", "v1.2", "x_y", "UPPER"):
            assert is_valid_atom(atom)

    def test_reserved_characters_rejected(self):
        for bad in ("a/b", "a*", "a?", "a[b]", "{a}", "~x", "a b", "a\tb", "a\nb"):
            assert not is_valid_atom(bad)

    def test_empty_and_nonstring_rejected(self):
        assert not is_valid_atom("")
        assert not is_valid_atom(123)
        assert not is_valid_atom(None)

    def test_check_atom_raises_with_offending_chars(self):
        with pytest.raises(AttributeSyntaxError) as err:
            check_atom("a*b")
        assert "*" in str(err.value)

    def test_check_atom_returns_value(self):
        assert check_atom("ok") == "ok"


class TestAttributePath:
    def test_from_string(self):
        p = AttributePath("a/b/c")
        assert p.atoms == ("a", "b", "c")
        assert str(p) == "a/b/c"
        assert len(p) == 3

    def test_from_iterable(self):
        assert AttributePath(["x", "y"]) == AttributePath("x/y")

    def test_copy_constructor_is_idempotent(self):
        p = AttributePath("a/b")
        assert AttributePath(p) == p

    def test_empty_string_rejected(self):
        with pytest.raises(AttributeSyntaxError):
            AttributePath("")

    def test_leading_trailing_slash_rejected(self):
        with pytest.raises(AttributeSyntaxError):
            AttributePath("/a")
        with pytest.raises(AttributeSyntaxError):
            AttributePath("a/")
        with pytest.raises(AttributeSyntaxError):
            AttributePath("a//b")

    def test_equality_with_strings(self):
        assert AttributePath("a/b") == "a/b"
        assert AttributePath("a/b") != "a/c"
        assert AttributePath("a/b") != "not//valid"

    def test_hashable_and_usable_in_sets(self):
        s = {AttributePath("a/b"), AttributePath("a/b"), AttributePath("c")}
        assert len(s) == 2

    def test_ordering_is_lexicographic_on_atoms(self):
        paths = sorted([AttributePath("b"), AttributePath("a/z"), AttributePath("a")])
        assert [str(p) for p in paths] == ["a", "a/z", "b"]

    def test_truediv_concatenates(self):
        assert AttributePath("a") / "b/c" == AttributePath("a/b/c")
        assert AttributePath("a") / AttributePath("b") == AttributePath("a/b")

    def test_empty_path_is_identity(self):
        assert EMPTY_PATH / "a" == AttributePath("a")
        assert AttributePath("a") / EMPTY_PATH == AttributePath("a")
        assert not EMPTY_PATH
        assert len(EMPTY_PATH) == 0

    def test_startswith_and_relative_to(self):
        p = AttributePath("a/b/c")
        assert p.startswith("a")
        assert p.startswith("a/b")
        assert p.startswith(p)
        assert not p.startswith("b")
        assert p.relative_to("a") == AttributePath("b/c")
        with pytest.raises(ValueError):
            p.relative_to("x")

    def test_parent_and_name(self):
        p = AttributePath("a/b/c")
        assert p.parent == AttributePath("a/b")
        assert p.name == "c"
        assert AttributePath("solo").parent == EMPTY_PATH

    def test_indexing_and_slicing(self):
        p = AttributePath("a/b/c")
        assert p[0] == "a"
        assert p[1:] == AttributePath("b/c")

    def test_iteration(self):
        assert list(AttributePath("x/y")) == ["x", "y"]


class TestCoercions:
    def test_as_path(self):
        assert as_path("a/b") == AttributePath("a/b")
        p = AttributePath("z")
        assert as_path(p) is p

    def test_as_paths_single(self):
        assert as_paths("a/b") == frozenset({AttributePath("a/b")})
        assert as_paths(AttributePath("a")) == frozenset({AttributePath("a")})

    def test_as_paths_iterable(self):
        got = as_paths(["a", "b/c", AttributePath("d")])
        assert got == frozenset(
            {AttributePath("a"), AttributePath("b/c"), AttributePath("d")}
        )

    def test_as_paths_dedupes(self):
        assert len(as_paths(["a", "a"])) == 1
