"""Unit tests: mail addresses and the per-node factory."""

from repro.core.addresses import (
    ActorAddress,
    AddressFactory,
    SpaceAddress,
    is_actor_address,
    is_space_address,
)


class TestAddresses:
    def test_equality_and_hash(self):
        assert ActorAddress(1, 2) == ActorAddress(1, 2)
        assert ActorAddress(1, 2) != ActorAddress(1, 3)
        assert ActorAddress(1, 2) != ActorAddress(2, 2)
        assert hash(ActorAddress(1, 2)) == hash(ActorAddress(1, 2))

    def test_actor_and_space_addresses_never_equal(self):
        """Section 5.7: type information distinguishes the two kinds."""
        assert ActorAddress(0, 0) != SpaceAddress(0, 0)
        assert hash(ActorAddress(0, 0)) != hash(SpaceAddress(0, 0))

    def test_kind_predicates(self):
        assert is_actor_address(ActorAddress(0, 1))
        assert not is_actor_address(SpaceAddress(0, 1))
        assert is_space_address(SpaceAddress(0, 1))
        assert not is_space_address("not an address")

    def test_ordering_is_total_and_stable(self):
        addrs = [ActorAddress(1, 0), ActorAddress(0, 1), SpaceAddress(0, 0)]
        ordered = sorted(addrs)
        assert sorted(reversed(ordered)) == ordered

    def test_repr_mentions_kind(self):
        assert "actor" in repr(ActorAddress(3, 4))
        assert "space" in repr(SpaceAddress(3, 4))


class TestFactory:
    def test_serials_increase_across_kinds(self):
        f = AddressFactory(2)
        a = f.new_actor_address()
        s = f.new_space_address()
        b = f.new_actor_address()
        assert (a.serial, s.serial, b.serial) == (0, 1, 2)
        assert a.node == s.node == b.node == 2

    def test_two_factories_never_collide_across_nodes(self):
        f0, f1 = AddressFactory(0), AddressFactory(1)
        made = [f0.new_actor_address() for _ in range(10)]
        made += [f1.new_actor_address() for _ in range(10)]
        assert len(set(made)) == 20
