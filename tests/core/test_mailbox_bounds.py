"""Bounded mailboxes: shed policies, accounting, and property tests.

The unit tests pin each :class:`ShedPolicy`'s observable contract; the
hypothesis tests drive random deliver/drain interleavings through every
policy and check the invariants that make bounded mailboxes safe to turn
on by default:

* the invocation port never exceeds ``capacity``;
* survivors preserve per-port FIFO order (a shed policy may drop
  envelopes, never reorder them);
* BEHAVIOR- and RPC-port envelopes are never shed (control traffic an
  actor cannot make progress without);
* the maintained ``pending`` counter always equals a recount;
* every envelope is accounted for: drained + shed + still-queued =
  delivered offers.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addresses import ActorAddress
from repro.core.mailbox import DEFAULT_MAILBOX_CAPACITY, Mailbox, ShedPolicy
from repro.core.messages import Envelope, Message, Mode, Port

_ids = itertools.count()


def env(port=Port.INVOCATION, payload=None, rpc_id=None):
    headers = {"rpc_id": rpc_id} if rpc_id is not None else {}
    return Envelope(
        message=Message(payload if payload is not None else next(_ids),
                        headers=headers),
        sender=ActorAddress(0, 0),
        mode=Mode.DIRECT,
        target=ActorAddress(0, 1),
        port=port,
    )


class TestShedPolicies:
    def test_parse_accepts_names_and_instances(self):
        assert ShedPolicy.parse("drop-oldest") is ShedPolicy.DROP_OLDEST
        assert ShedPolicy.parse(ShedPolicy.DROP_NEWEST) is ShedPolicy.DROP_NEWEST
        with pytest.raises(ValueError):
            ShedPolicy.parse("yolo")

    def test_unbounded_is_the_default(self):
        mb = Mailbox()
        for _ in range(DEFAULT_MAILBOX_CAPACITY + 10):
            assert mb.deliver(env()) == []
        assert mb.shed_count == 0

    def test_drop_oldest_evicts_head_admits_new(self):
        mb = Mailbox(capacity=2, shed_policy="drop-oldest")
        first = env(payload="a")
        mb.deliver(first)
        mb.deliver(env(payload="b"))
        shed = mb.deliver(env(payload="c"))
        assert shed == [first]
        assert mb.shed_count == 1
        got = [mb.next_ready().message.payload, mb.next_ready().message.payload]
        assert got == ["b", "c"]  # freshest-wins, order kept

    def test_drop_newest_refuses_the_offered_envelope(self):
        mb = Mailbox(capacity=2, shed_policy="drop-newest")
        mb.deliver(env(payload="a"))
        mb.deliver(env(payload="b"))
        refused = env(payload="c")
        assert mb.deliver(refused) == [refused]
        got = [mb.next_ready().message.payload, mb.next_ready().message.payload]
        assert got == ["a", "b"]  # oldest-wins

    def test_suspend_sender_defers_then_promotes_in_order(self):
        mb = Mailbox(capacity=2, shed_policy="suspend-sender")
        for payload in "abcd":
            assert mb.deliver(env(payload=payload)) == []
        assert mb.suspended == 2  # c, d deferred, not dropped
        assert mb.pending == 4
        got = [mb.next_ready().message.payload for _ in range(4)]
        assert got == ["a", "b", "c", "d"]  # stash drains back FIFO
        assert mb.shed_count == 0 and mb.suspended == 0

    def test_suspend_sender_stash_is_bounded_too(self):
        mb = Mailbox(capacity=2, shed_policy="suspend-sender")
        offered = [env(payload=i) for i in range(6)]
        shed = [victim for e in offered for victim in mb.deliver(e)]
        # 2 queued + 2 stashed; the stash sheds its head for 5th and 6th.
        assert [v.message.payload for v in shed] == [2, 3]
        assert mb.shed_count == 2
        assert mb.pending == 4

    def test_behavior_and_rpc_ports_are_exempt(self):
        mb = Mailbox(capacity=1, shed_policy="drop-newest")
        mb.deliver(env(payload="inv"))
        for _ in range(5):
            assert mb.deliver(env(port=Port.BEHAVIOR)) == []
            assert mb.deliver(env(port=Port.RPC, rpc_id=next(_ids))) == []
        assert mb.shed_count == 0

    def test_close_includes_stash_and_resets_pending(self):
        mb = Mailbox(capacity=1, shed_policy="suspend-sender")
        mb.deliver(env(payload="a"))
        mb.deliver(env(payload="b"))  # stashed
        assert mb.suspended == 1
        leftovers = mb.close()
        assert sorted(e.message.payload for e in leftovers) == ["a", "b"]
        assert mb.pending == 0 and mb.is_empty


# -- property tests ---------------------------------------------------------------

#: One abstract mailbox op: deliver to a port, or drain one envelope.
_OPS = st.lists(
    st.one_of(
        st.just(("deliver", Port.INVOCATION)),
        st.just(("deliver", Port.BEHAVIOR)),
        st.just(("deliver", Port.RPC)),
        st.just(("drain", None)),
        st.just(("take_rpc", None)),
    ),
    max_size=80,
)


@settings(max_examples=150, deadline=None)
@given(ops=_OPS, capacity=st.integers(min_value=1, max_value=5),
       policy=st.sampled_from(list(ShedPolicy)))
def test_bounded_mailbox_invariants(ops, capacity, policy):
    mb = Mailbox(capacity=capacity, shed_policy=policy)
    offered: list[Envelope] = []
    shed: list[Envelope] = []
    drained: list[Envelope] = []
    rpc_ids: list = []
    for op, port in ops:
        if op == "deliver":
            rpc_id = None
            if port is Port.RPC:
                rpc_id = next(_ids)
                rpc_ids.append(rpc_id)
            e = env(port=port, rpc_id=rpc_id)
            offered.append(e)
            shed.extend(mb.deliver(e))
        elif op == "drain":
            got = mb.next_ready()
            if got is not None:
                drained.append(got)
        elif op == "take_rpc" and rpc_ids:
            got = mb.take_rpc(rpc_ids[0])
            if got is not None:
                rpc_ids.pop(0)
                drained.append(got)
        # Invariants that must hold after *every* op:
        assert len(mb._invocation) <= capacity
        recount = (len(mb._behavior) + len(mb._invocation) + len(mb._stash)
                   + sum(len(q) for q in mb._rpc.values()))
        assert mb.pending == recount

    # Control traffic is never shed.
    assert all(e.port is Port.INVOCATION for e in shed)
    assert mb.shed_count == len(shed)
    # Conservation: every offered envelope is drained, shed, or queued.
    leftovers = mb.close()
    assert len(drained) + len(shed) + len(leftovers) == len(offered)
    # Survivors keep per-port FIFO: the drained+leftover invocation
    # sequence is a subsequence of the offered invocation sequence.
    survivors = [e.envelope_id for e in drained + leftovers
                 if e.port is Port.INVOCATION]
    offered_inv = [e.envelope_id for e in offered
                   if e.port is Port.INVOCATION]
    it = iter(offered_inv)
    assert all(eid in it for eid in survivors), \
        f"survivors {survivors} not a subsequence of {offered_inv}"


@settings(max_examples=60, deadline=None)
@given(n=st.integers(min_value=1, max_value=40),
       capacity=st.integers(min_value=1, max_value=5))
def test_suspend_sender_loses_nothing_until_stash_overflows(n, capacity):
    """Up to ``2 * capacity`` outstanding, SUSPEND_SENDER is lossless."""
    mb = Mailbox(capacity=capacity, shed_policy=ShedPolicy.SUSPEND_SENDER)
    shed = []
    for i in range(n):
        shed.extend(mb.deliver(env(payload=i)))
    expected_shed = max(0, n - 2 * capacity)
    assert len(shed) == expected_shed
    drained = []
    while (e := mb.next_ready()) is not None:
        drained.append(e.message.payload)
    # Everything that survived comes out in offer order.
    assert drained == sorted(drained)
    assert len(drained) == n - expected_shed
