"""Unit + property tests: garbage collection (section 5.5)."""

from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actorspace import SpaceRecord
from repro.core.addresses import ActorAddress, SpaceAddress
from repro.core.gc import GarbageCollector, scan_addresses
from repro.core.visibility import Directory


def actors(n):
    return [ActorAddress(0, i) for i in range(n)]


def directory_with(spaces):
    d = Directory()
    for s in spaces:
        d.add_space(SpaceRecord(s))
    return d


class TestScanAddresses:
    def test_finds_addresses_in_containers(self):
        a, b = ActorAddress(0, 1), SpaceAddress(0, 2)
        payload = {"x": [a, (1, {b})], 2: "noise"}
        assert set(scan_addresses(payload)) == {a, b}

    def test_dataclass_fields_scanned(self):
        @dataclass
        class Carrier:
            dest: ActorAddress
            note: str

        a = ActorAddress(0, 5)
        assert set(scan_addresses(Carrier(a, "hi"))) == {a}

    def test_addresses_hook_honoured(self):
        a = ActorAddress(0, 9)

        class Opaque:
            def __addresses__(self):
                return [a]

        assert set(scan_addresses(Opaque())) == {a}

    def test_opaque_without_hook_yields_nothing(self):
        assert list(scan_addresses(object())) == []

    def test_depth_bounded(self):
        nested = ActorAddress(0, 1)
        for _ in range(50):
            nested = [nested]
        assert list(scan_addresses(nested)) == []  # beyond depth cap


class TestMark:
    def test_roots_and_acquaintances_are_live(self):
        a = actors(4)
        d = directory_with([])
        gc = GarbageCollector(d, {a[0]: {a[1]}, a[1]: {a[2]}})
        live, _spaces = gc.mark(roots=[a[0]])
        assert live == {a[0], a[1], a[2]}

    def test_visible_members_of_live_space_are_live(self):
        a = actors(2)
        s = SpaceAddress(0, 100)
        d = directory_with([s])
        d.make_visible(a[0], "x", s)
        gc = GarbageCollector(d, {})
        live, spaces = gc.mark(roots=[s])
        assert a[0] in live and s in spaces
        assert a[1] not in live

    def test_nested_spaces_propagate(self):
        a = actors(1)
        s0, s1 = SpaceAddress(0, 100), SpaceAddress(0, 101)
        d = directory_with([s0, s1])
        d.make_visible(s1, "sub", s0)
        d.make_visible(a[0], "x", s1)
        gc = GarbageCollector(d, {})
        live, spaces = gc.mark(roots=[s0])
        assert spaces == {s0, s1}
        assert live == {a[0]}

    def test_in_flight_messages_pin(self):
        a = actors(2)
        gc = GarbageCollector(directory_with([]), {})
        live, _ = gc.mark(roots=[], in_flight=[a[1]])
        assert a[1] in live


class TestCollect:
    def test_unreachable_inactive_actor_collected(self):
        a = actors(3)
        gc = GarbageCollector(directory_with([]), {a[0]: {a[1]}})
        report = gc.collect(roots=[a[0]], all_actors=a)
        assert report.collected_actors == {a[2]}
        assert a[1] in report.live_actors

    def test_active_actor_reaching_live_computation_kept(self):
        """Section 5.5's refinement: unreachable-but-active actors that can
        still send into the live computation are retained."""
        a = actors(3)
        # a2 is unreachable from the root but knows a1 (which is live) and
        # has pending work.
        gc = GarbageCollector(directory_with([]), {a[0]: {a[1]}, a[2]: {a[1]}})
        report = gc.collect(roots=[a[0]], all_actors=a, active_actors=[a[2]])
        assert a[2] in report.kept_active
        assert a[2] not in report.collected_actors

    def test_active_actor_with_no_route_to_live_collected(self):
        a = actors(3)
        gc = GarbageCollector(directory_with([]), {a[0]: {a[1]}, a[2]: set()})
        report = gc.collect(roots=[a[0]], all_actors=a, active_actors=[a[2]])
        assert a[2] in report.collected_actors

    def test_unreachable_space_collected_without_inverse_reachability(self):
        s_live, s_dead = SpaceAddress(0, 100), SpaceAddress(0, 101)
        d = directory_with([s_live, s_dead])
        gc = GarbageCollector(d, {})
        report = gc.collect(roots=[s_live], all_actors=[])
        assert report.collected_spaces == {s_dead}

    def test_visible_actor_pinned_until_container_dies(self):
        a = actors(1)
        s = SpaceAddress(0, 100)
        d = directory_with([s])
        d.make_visible(a[0], "x", s)
        gc = GarbageCollector(d, {})
        # Space is a root: the actor is pinned.
        assert gc.collect(roots=[s], all_actors=a).collected_actors == set()
        # Space unreferenced: both go.
        report = gc.collect(roots=[], all_actors=a)
        assert report.collected_actors == {a[0]}
        assert report.collected_spaces == {s}


# -- property test: GC soundness -------------------------------------------------


@given(
    st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=30),
    st.sets(st.integers(0, 9), max_size=3),
)
@settings(max_examples=200)
def test_gc_never_collects_reachable(edges, root_ids):
    """No actor reachable from a root is ever collected."""
    a = actors(10)
    acquaintances: dict = {}
    for src, dst in edges:
        acquaintances.setdefault(a[src], set()).add(a[dst])
    gc = GarbageCollector(directory_with([]), acquaintances)
    roots = [a[i] for i in root_ids]
    report = gc.collect(roots=roots, all_actors=a)

    # Independent reachability computation.
    reachable = set(roots)
    frontier = list(roots)
    while frontier:
        node = frontier.pop()
        for nxt in acquaintances.get(node, ()):
            if nxt not in reachable:
                reachable.add(nxt)
                frontier.append(nxt)
    assert reachable.isdisjoint(report.collected_actors)
    assert reachable <= report.live_actors
