"""Unit tests: scoped resolution, nested descent, structured attributes."""

import pytest

from repro.core.actorspace import SpaceRecord
from repro.core.addresses import ActorAddress, SpaceAddress
from repro.core.matching import (
    MatchStats,
    group_size,
    resolve_actors,
    resolve_destination,
    resolve_destination_spaces,
    resolve_spaces,
)
from repro.core.messages import Destination
from repro.core.visibility import Directory


def build(n_spaces=4):
    d = Directory()
    spaces = [SpaceAddress(0, i) for i in range(n_spaces)]
    for s in spaces:
        d.add_space(SpaceRecord(s))
    return d, spaces


def actor(i):
    return ActorAddress(1, i)


class TestFlatResolution:
    def test_literal_and_wildcards(self):
        d, (root, *_r) = build()
        d.make_visible(actor(1), "services/print", root)
        d.make_visible(actor(2), "services/scan", root)
        d.make_visible(actor(3), "misc", root)
        assert resolve_actors(d, "services/print", root) == {actor(1)}
        assert resolve_actors(d, "services/*", root) == {actor(1), actor(2)}
        assert resolve_actors(d, "**", root) == {actor(1), actor(2), actor(3)}
        assert resolve_actors(d, "nothing/here", root) == set()

    def test_multi_attribute_entries_match_on_any(self):
        d, (root, *_r) = build()
        d.make_visible(actor(1), ["a/b", "c/d"], root)
        assert resolve_actors(d, "c/*", root) == {actor(1)}
        assert resolve_actors(d, "a/*", root) == {actor(1)}

    def test_unknown_space_resolves_empty(self):
        d, _ = build()
        assert resolve_actors(d, "x", SpaceAddress(9, 9)) == set()

    def test_group_size(self):
        d, (root, *_r) = build()
        for i in range(5):
            d.make_visible(actor(i), f"w/n{i}", root)
        assert group_size(d, "w/*", root) == 5


class TestNestedDescent:
    def test_structured_attribute_through_one_level(self):
        """Pattern a/b/c finds an actor with b/c inside a space visible as a."""
        d, (root, sub, *_r) = build()
        d.make_visible(sub, "dept", root)
        d.make_visible(actor(1), "print/color", sub)
        assert resolve_actors(d, "dept/print/color", root) == {actor(1)}
        assert resolve_actors(d, "dept/print/*", root) == {actor(1)}
        assert resolve_actors(d, "dept/**", root) == {actor(1)}

    def test_descent_two_levels(self):
        d, (root, a, b, _c) = build()
        d.make_visible(a, "org", root)
        d.make_visible(b, "team", a)
        d.make_visible(actor(7), "alice", b)
        assert resolve_actors(d, "org/team/alice", root) == {actor(7)}
        assert resolve_actors(d, "**/alice", root) == {actor(7)}

    def test_actor_in_space_not_directly_visible_outside(self):
        d, (root, sub, *_r) = build()
        d.make_visible(sub, "dept", root)
        d.make_visible(actor(1), "print", sub)
        # Pattern "print" in root does NOT see the nested actor; the
        # structured path "dept/print" is required.
        assert resolve_actors(d, "print", root) == set()

    def test_invisible_space_hides_members(self):
        d, (root, sub, *_r) = build()
        d.make_visible(actor(1), "x", sub)
        assert resolve_actors(d, "**", root) == set()  # sub not visible in root

    def test_overlapping_spaces_reach_same_actor(self):
        d, (root, a, b, _c) = build()
        d.make_visible(a, "left", root)
        d.make_visible(b, "right", root)
        d.make_visible(actor(1), "shared", a)
        d.make_visible(actor(1), "shared", b)
        assert resolve_actors(d, "*/shared", root) == {actor(1)}
        assert resolve_actors(d, "left/shared", root) == {actor(1)}

    def test_space_visible_under_multiple_attributes(self):
        d, (root, sub, *_r) = build()
        d.make_visible(sub, ["alias-a", "alias-b"], root)
        d.make_visible(actor(1), "x", sub)
        assert resolve_actors(d, "alias-a/x", root) == {actor(1)}
        assert resolve_actors(d, "alias-b/x", root) == {actor(1)}

    def test_multi_atom_space_attribute(self):
        d, (root, sub, *_r) = build()
        d.make_visible(sub, "eu/west", root)
        d.make_visible(actor(1), "db", sub)
        assert resolve_actors(d, "eu/west/db", root) == {actor(1)}
        assert resolve_actors(d, "eu/*/db", root) == {actor(1)}


class TestSpaceResolution:
    def test_resolve_spaces_matches_space_attributes(self):
        d, (root, a, b, _c) = build()
        d.make_visible(a, "pools/main", root)
        d.make_visible(b, "pools/backup", root)
        assert resolve_spaces(d, "pools/*", root) == {a, b}
        assert resolve_spaces(d, "pools/main", root) == {a}

    def test_nested_space_resolution(self):
        d, (root, a, b, _c) = build()
        d.make_visible(a, "org", root)
        d.make_visible(b, "pool", a)
        assert resolve_spaces(d, "org/pool", root) == {b}


class TestDestinationResolution:
    def test_none_space_uses_host(self):
        d, (root, *_r) = build()
        d.make_visible(actor(1), "x", root)
        dest = Destination("x")
        assert resolve_destination_spaces(d, dest, root) == [root]
        assert resolve_destination(d, dest, root) == {actor(1)}

    def test_explicit_space_address(self):
        d, (root, sub, *_r) = build()
        d.make_visible(actor(1), "x", sub)
        dest = Destination("x", sub)
        assert resolve_destination(d, dest, root) == {actor(1)}

    def test_pattern_space_spec(self):
        """Section 5.3: the actorSpace specification may itself be a pattern."""
        d, (root, a, b, _c) = build()
        d.make_visible(a, "pools/one", root)
        d.make_visible(b, "pools/two", root)
        d.make_visible(actor(1), "w", a)
        d.make_visible(actor(2), "w", b)
        dest = Destination("w", "pools/*")
        assert resolve_destination(d, dest, root) == {actor(1), actor(2)}

    def test_destroyed_space_resolves_empty(self):
        d, (root, sub, *_r) = build()
        d.make_visible(actor(1), "x", sub)
        d.destroy_space(sub)
        assert resolve_destination(d, Destination("x", sub), root) == set()


class TestStats:
    def test_stats_count_work(self):
        d, (root, sub, *_r) = build()
        d.make_visible(sub, "s", root)
        for i in range(10):
            d.make_visible(actor(i), f"a{i}", sub)
        stats = MatchStats()
        resolve_actors(d, "s/**", root, stats)
        assert stats.entries_examined >= 11
        assert stats.spaces_descended >= 1
