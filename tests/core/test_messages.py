"""Unit tests: messages, destinations, envelopes."""

import pytest

from repro.core.addresses import ActorAddress, SpaceAddress
from repro.core.errors import PatternSyntaxError
from repro.core.messages import (
    Destination,
    Envelope,
    Message,
    Mode,
    Port,
    parse_destination,
)
from repro.core.patterns import Pattern, parse_pattern


class TestDestination:
    def test_pattern_with_explicit_space_address(self):
        space = SpaceAddress(0, 7)
        d = Destination("a/*", space)
        assert d.pattern == parse_pattern("a/*")
        assert d.space == space

    def test_space_defaults_to_none(self):
        assert Destination("a").space is None

    def test_space_as_pattern_text(self):
        d = Destination("a", "pools/*")
        assert isinstance(d.space, Pattern)
        assert d.space.matches("pools/p1")

    def test_rejects_garbage_space(self):
        with pytest.raises(PatternSyntaxError):
            Destination("a", 3.14)

    def test_equality(self):
        s = SpaceAddress(0, 1)
        assert Destination("a/*", s) == Destination("a/*", s)
        assert Destination("a/*", s) != Destination("a/*", SpaceAddress(0, 2))
        assert Destination("a") == Destination("a")


class TestParseDestination:
    def test_plain_pattern(self):
        d = parse_destination("services/*")
        assert d.space is None
        assert d.pattern.matches("services/x")

    def test_pattern_at_space(self):
        d = parse_destination("workers/**@pools/main")
        assert isinstance(d.space, Pattern)
        assert d.space.matches("pools/main")

    def test_rejects_empty_sides(self):
        for bad in ("@x", "x@", "@", ""):
            with pytest.raises(PatternSyntaxError):
                parse_destination(bad)

    def test_rejects_non_strings(self):
        with pytest.raises(PatternSyntaxError):
            parse_destination(None)


class TestMessage:
    def test_ids_are_unique(self):
        a, b = Message(1), Message(2)
        assert a.message_id != b.message_id

    def test_defaults(self):
        m = Message("payload")
        assert m.reply_to is None
        assert m.headers == {}


class TestEnvelope:
    def _envelope(self, **kw):
        defaults = dict(
            message=Message("x"),
            sender=ActorAddress(0, 0),
            mode=Mode.BROADCAST,
            destination=Destination("a/*"),
            sent_at=1.0,
        )
        defaults.update(kw)
        return Envelope(**defaults)

    def test_defaults(self):
        e = self._envelope()
        assert e.port is Port.INVOCATION
        assert e.delivered_at is None
        assert e.trace == []

    def test_hop_records_nodes(self):
        e = self._envelope()
        e.hop(0)
        e.hop(3)
        assert e.trace == [0, 3]

    def test_clone_for_is_independent(self):
        e = self._envelope()
        e.hop(1)
        target = ActorAddress(2, 5)
        c = e.clone_for(target)
        assert c.target == target
        assert c.message is e.message  # payload shared, not copied
        assert c.trace == [1]
        c.hop(9)
        assert e.trace == [1]  # original unaffected
        assert c.envelope_id != e.envelope_id

    def test_envelope_ids_unique(self):
        assert self._envelope().envelope_id != self._envelope().envelope_id
