"""Unit tests: the pattern language (regular expressions over atoms)."""

import pytest

from repro.core.atoms import AttributePath
from repro.core.errors import PatternSyntaxError
from repro.core.patterns import (
    ANY,
    ANYWHERE,
    AnyAtom,
    AnySequence,
    LiteralAtom,
    Pattern,
    RegexAtom,
    literal_pattern,
    parse_atom_pattern,
    parse_pattern,
)


class TestAtomPatternParsing:
    def test_literal(self):
        m = parse_atom_pattern("print")
        assert isinstance(m, LiteralAtom)
        assert m.matches("print")
        assert not m.matches("printer")

    def test_star_is_any_single(self):
        assert isinstance(parse_atom_pattern("*"), AnyAtom)

    def test_double_star_is_sequence(self):
        assert isinstance(parse_atom_pattern("**"), AnySequence)

    def test_glob_becomes_regex(self):
        m = parse_atom_pattern("node-?")
        assert isinstance(m, RegexAtom)
        assert m.matches("node-1")
        assert m.matches("node-x")
        assert not m.matches("node-10")

    def test_glob_star_within_atom(self):
        m = parse_atom_pattern("serv*")
        assert m.matches("serv")
        assert m.matches("service")
        assert not m.matches("xserv")

    def test_character_class(self):
        m = parse_atom_pattern("v[0-9]")
        assert m.matches("v7")
        assert not m.matches("va")

    def test_negated_character_class(self):
        m = parse_atom_pattern("v[!0-9]")
        assert m.matches("va")
        assert not m.matches("v3")

    def test_alternation_braces(self):
        m = parse_atom_pattern("{gif,png}")
        assert m.matches("gif")
        assert m.matches("png")
        assert not m.matches("jpg")

    def test_raw_regex_with_tilde(self):
        m = parse_atom_pattern("~wor(ker|d)s?")
        assert m.matches("worker")
        assert m.matches("words")
        assert not m.matches("world")

    def test_bad_regex_raises(self):
        with pytest.raises(PatternSyntaxError):
            parse_atom_pattern("~(unclosed")

    def test_unterminated_class_raises(self):
        with pytest.raises(PatternSyntaxError):
            parse_atom_pattern("a[bc")

    def test_unterminated_braces_raises(self):
        with pytest.raises(PatternSyntaxError):
            parse_atom_pattern("{a,b")

    def test_empty_raises(self):
        with pytest.raises(PatternSyntaxError):
            parse_atom_pattern("")


class TestPatternMatching:
    @pytest.mark.parametrize(
        "pattern,path,expected",
        [
            ("a/b/c", "a/b/c", True),
            ("a/b/c", "a/b", False),
            ("a/b/c", "a/b/c/d", False),
            ("*", "anything", True),
            ("*", "two/atoms", False),
            ("a/*", "a/b", True),
            ("a/*", "a/b/c", False),
            ("a/*/c", "a/x/c", True),
            ("a/*/c", "a/x/y/c", False),
            ("**", "a", True),
            ("**", "a/b/c/d", True),
            ("a/**", "a", True),  # ** matches the empty sequence
            ("a/**", "a/b", True),
            ("a/**", "a/b/c", True),
            ("**/c", "c", True),
            ("**/c", "a/b/c", True),
            ("**/c", "a/b", False),
            ("a/**/c", "a/c", True),
            ("a/**/c", "a/x/c", True),
            ("a/**/c", "a/x/y/c", True),
            ("a/**/c", "a/x/y", False),
            ("**/b/**", "a/b/c", True),
            ("**/b/**", "b", True),
            ("serv*/p?", "service/p1", True),
            ("serv*/p?", "server/p12", False),
        ],
    )
    def test_matches(self, pattern, path, expected):
        assert parse_pattern(pattern).matches(path) is expected

    def test_matches_accepts_attribute_path_objects(self):
        assert parse_pattern("a/*").matches(AttributePath("a/b"))

    def test_consecutive_double_stars(self):
        p = parse_pattern("**/**")
        assert p.matches("a")
        assert p.matches("a/b/c")


class TestPatternClassification:
    def test_literal_detection(self):
        assert parse_pattern("a/b").is_literal
        assert not parse_pattern("a/*").is_literal
        assert not parse_pattern("a/b?").is_literal

    def test_literal_path_roundtrip(self):
        assert parse_pattern("a/b").literal_path == AttributePath("a/b")
        with pytest.raises(ValueError):
            parse_pattern("a/*").literal_path

    def test_literal_prefix(self):
        assert parse_pattern("a/b/*/d").literal_prefix == ("a", "b")
        assert parse_pattern("*/a").literal_prefix == ()
        assert parse_pattern("a/b").literal_prefix == ("a", "b")

    def test_min_length_and_has_multi(self):
        assert parse_pattern("a/*/c").min_length == 3
        assert parse_pattern("a/**").min_length == 1
        assert parse_pattern("a/**").has_multi
        assert not parse_pattern("a/*").has_multi


class TestResiduals:
    def test_literal_residual(self):
        [r] = parse_pattern("a/b/c").after_prefix("a")
        assert str(r) == "b/c"

    def test_no_residual_on_mismatch(self):
        assert parse_pattern("a/b").after_prefix("x") == []

    def test_full_consumption_leaves_nothing(self):
        # "a/b" consumed entirely: no non-empty residual remains.
        assert parse_pattern("a/b").after_prefix("a/b") == []

    def test_doublestar_residuals_branch(self):
        residuals = [r for r in parse_pattern("a/**/c").after_prefix("a")]
        # "**/c" subsumes the zero-absorption case: it matches "c" itself.
        assert {str(r) for r in residuals} == {"**/c"}
        assert any(r.matches("c") for r in residuals)
        assert any(r.matches("x/y/c") for r in residuals)

    def test_doublestar_absorbs_prefix(self):
        residuals = [r for r in parse_pattern("**/c").after_prefix("x/y")]
        assert {str(r) for r in residuals} == {"**/c"}
        assert any(r.matches("c") for r in residuals)

    def test_matches_prefix(self):
        p = parse_pattern("a/b/c")
        assert p.matches_prefix("a")
        assert p.matches_prefix("a/b")
        assert not p.matches_prefix("a/b/c")  # no strict extension matches
        assert not p.matches_prefix("b")

    def test_matches_prefix_with_doublestar(self):
        p = parse_pattern("a/**")
        assert p.matches_prefix("a")
        assert p.matches_prefix("a/b")  # a/b/c still matches


class TestParsing:
    def test_idempotent_coercion(self):
        p = parse_pattern("a/*")
        assert parse_pattern(p) is p

    def test_from_attribute_path(self):
        p = parse_pattern(AttributePath("a/b"))
        assert p.is_literal and str(p) == "a/b"

    def test_rejects_bad_shapes(self):
        for bad in ("", "/a", "a/", 42, None):
            with pytest.raises(PatternSyntaxError):
                parse_pattern(bad)

    def test_equality_and_hash(self):
        assert parse_pattern("a/*") == parse_pattern("a/*")
        assert hash(parse_pattern("a/*")) == hash(parse_pattern("a/*"))
        assert parse_pattern("a/*") != parse_pattern("a/**")

    def test_constants(self):
        assert ANY.matches("x")
        assert not ANY.matches("x/y")
        assert ANYWHERE.matches("x/y/z")

    def test_literal_pattern_helper(self):
        assert literal_pattern("a/b").matches("a/b")
        assert not literal_pattern("a/b").matches("a/c")

    def test_empty_matcher_list_rejected(self):
        with pytest.raises(PatternSyntaxError):
            Pattern([])
