"""Tests: sequenced group communication (the section-5.3 recipe)."""

import pytest

from repro.core.actor import Behavior
from repro.core.ordering import OrderedGroup, OrderedReceiver, SerializerBehavior
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


class Log(Behavior):
    def __init__(self):
        self.items = []

    def receive(self, ctx, message):
        self.items.append(message.payload)


def build_group(members=3, seed=0):
    system = ActorSpaceSystem(topology=Topology.lan(4), seed=seed)
    group = OrderedGroup(system, "team/*")
    logs = []
    for i in range(members):
        log = Log()
        wrapped = group.member(log)
        addr = system.create_actor(wrapped, node=i + 1 if i < 3 else 0)
        system.make_visible(addr, f"team/m{i}")
        logs.append((wrapped, log))
    system.run()
    return system, group, logs


class TestOrderedGroup:
    def test_single_post_reaches_all(self):
        system, group, logs = build_group()
        group.post("hello")
        system.run()
        assert all(log.items == ["hello"] for _w, log in logs)

    def test_burst_is_totally_ordered_everywhere(self):
        """Many same-instant posts: every member sees the same order."""
        for seed in range(10):
            system, group, logs = build_group(seed=seed)
            for i in range(10):
                group.post(i)
            system.run()
            reference = logs[0][1].items
            assert len(reference) == 10
            for _w, log in logs:
                assert log.items == reference

    def test_reordering_actually_happened_somewhere(self):
        """The hold-back buffer is not vacuous: across seeds, some member
        receives some message out of order (and repairs it)."""
        total_reordered = 0
        for seed in range(10):
            system, group, logs = build_group(seed=seed)
            for i in range(10):
                group.post(i)
            system.run()
            total_reordered += sum(w.reordered for w, _l in logs)
        assert total_reordered > 0

    def test_order_is_post_order(self):
        system, group, logs = build_group()
        for i in range(5):
            group.post(("msg", i))
            system.run()  # serialize posts so arrival at serializer is fixed
        assert logs[0][1].items == [("msg", i) for i in range(5)]

    def test_unstamped_messages_pass_through(self):
        system, group, logs = build_group(members=1)
        wrapped, log = logs[0]
        addr = next(
            a for c in system.coordinators for a, r in c.actors.items()
            if r.behavior is wrapped
        )
        system.send_to(addr, "direct")
        group.post("ordered")
        system.run()
        assert sorted(map(str, log.items)) == ["direct", "ordered"]

    def test_members_in_two_groups_disambiguate_by_id(self):
        system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)
        g1 = OrderedGroup(system, "both/*", group_id="one")
        g2 = OrderedGroup(system, "both/*", group_id="two")
        log = Log()
        wrapped = OrderedReceiver(OrderedReceiver(log, "two"), "one")
        addr = system.create_actor(wrapped)
        system.make_visible(addr, "both/m")
        system.run()
        g1.post("a")
        g2.post("b")
        system.run()
        assert sorted(log.items) == ["a", "b"]

    def test_held_back_counts_gaps(self):
        receiver = OrderedReceiver(Log(), "g")
        from repro.core.messages import Message

        class FakeCtx:
            pass

        receiver.receive(FakeCtx(), Message("later", headers={
            "ordered_seq": 2, "ordered_group": "g"}))
        assert receiver.held_back == 1
        assert receiver.reordered == 1
        receiver.receive(FakeCtx(), Message("first", headers={
            "ordered_seq": 0, "ordered_group": "g"}))
        assert receiver.held_back == 1  # seq 2 still waiting for 1
        receiver.receive(FakeCtx(), Message("middle", headers={
            "ordered_seq": 1, "ordered_group": "g"}))
        assert receiver.held_back == 0
        assert receiver.inner.items == ["first", "middle", "later"]
