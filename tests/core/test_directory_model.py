"""Model-based test: Directory + matcher against a brute-force reference.

A hypothesis ``RuleBasedStateMachine`` drives random sequences of
visibility operations against both the real :class:`Directory` and a
naive reference model (dicts + recursive enumeration).  After every step
it checks that scoped resolution agrees for a panel of patterns.  This is
the strongest correctness artillery in the suite: any divergence between
the optimized matcher (residual patterns, first-atom index) and the
obvious semantics fails here.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.actorspace import SpaceRecord
from repro.core.addresses import ActorAddress, SpaceAddress
from repro.core.errors import VisibilityCycleError
from repro.core.matching import ResolutionCache, resolve_actors
from repro.core.patterns import parse_pattern
from repro.core.visibility import Directory

N_SPACES = 4
N_ACTORS = 6
ATOMS = ["a", "b", "c"]

PANEL = [
    parse_pattern(p)
    for p in ("a", "a/b", "a/*", "*/b", "**", "a/**", "**/c", "*", "a/*/c")
]


class ReferenceModel:
    """The obvious semantics: dicts and exhaustive recursive matching."""

    def __init__(self):
        # space -> {target: set of attribute tuples}
        self.spaces: dict[SpaceAddress, dict] = {}

    def add_space(self, s):
        self.spaces[s] = {}

    def make_visible(self, target, attrs, space):
        self.spaces[space][target] = set(attrs)

    def make_invisible(self, target, space):
        self.spaces[space].pop(target, None)

    def would_cycle(self, target, space) -> bool:
        if not isinstance(target, SpaceAddress):
            return False
        # Does `space` occur within target's transitive contents (or equal)?
        seen = set()

        def reaches(src):
            if src == space:
                return True
            if src in seen:
                return False
            seen.add(src)
            return any(
                isinstance(t, SpaceAddress) and reaches(t)
                for t in self.spaces.get(src, {})
            )

        return reaches(target)

    def resolve(self, pattern, space, _depth=0) -> set:
        """Exhaustive structured-attribute enumeration, then plain match."""
        out = set()
        for path, target in self._structured(space, (), set()):
            if isinstance(target, ActorAddress) and pattern.matches(list(path)):
                out.add(target)
        return out

    def _structured(self, space, prefix, on_path):
        """Yield (attribute-path-atoms, actor) pairs reachable from space."""
        if space in on_path:
            return
        on_path = on_path | {space}
        for target, attrs in self.spaces.get(space, {}).items():
            for attr in attrs:
                full = prefix + tuple(attr)
                if isinstance(target, ActorAddress):
                    yield full, target
                else:
                    yield from self._structured(target, full, on_path)


class DirectoryMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.directory = Directory()
        self.model = ReferenceModel()
        #: One long-lived cache across every op the machine performs:
        #: a stale entry surviving an op it should not survive shows up
        #: as a divergence from the reference model.
        self.cache = ResolutionCache()
        self.spaces = [SpaceAddress(0, i) for i in range(N_SPACES)]
        self.actors = [ActorAddress(1, i) for i in range(N_ACTORS)]
        for s in self.spaces:
            self.directory.add_space(SpaceRecord(s))
            self.model.add_space(s)

    targets = st.integers(0, N_ACTORS - 1)
    space_idx = st.integers(0, N_SPACES - 1)
    attr = st.lists(st.sampled_from(ATOMS), min_size=1, max_size=3)
    attrs = st.lists(
        st.lists(st.sampled_from(ATOMS), min_size=1, max_size=3),
        min_size=1, max_size=2,
    )

    @rule(t=targets, s=space_idx, a=attrs)
    def show_actor(self, t, s, a):
        paths = ["/".join(p) for p in a]
        self.directory.make_visible(self.actors[t], paths, self.spaces[s])
        self.model.make_visible(self.actors[t], [tuple(p) for p in a],
                                self.spaces[s])

    @rule(t=targets, s=space_idx)
    def hide_actor(self, t, s):
        self.directory.make_invisible(self.actors[t], self.spaces[s])
        self.model.make_invisible(self.actors[t], self.spaces[s])

    @rule(child=space_idx, parent=space_idx, a=attr)
    def nest_space(self, child, parent, a):
        path = "/".join(a)
        expect_cycle = self.model.would_cycle(self.spaces[child],
                                              self.spaces[parent])
        try:
            self.directory.make_visible(self.spaces[child], path,
                                        self.spaces[parent])
            assert not expect_cycle, "directory accepted a cycle"
            self.model.make_visible(self.spaces[child], {tuple(a)},
                                    self.spaces[parent])
        except VisibilityCycleError:
            assert expect_cycle, "directory rejected an acyclic edge"

    @rule(child=space_idx, parent=space_idx)
    def unnest_space(self, child, parent):
        self.directory.make_invisible(self.spaces[child], self.spaces[parent])
        self.model.make_invisible(self.spaces[child], self.spaces[parent])

    @invariant()
    def resolution_agrees(self):
        for pattern in PANEL:
            for space in self.spaces:
                got = resolve_actors(self.directory, pattern, space)
                want = self.model.resolve(pattern, space)
                assert got == want, (
                    f"pattern {pattern} in {space}: real={got} ref={want}"
                )
                cached = resolve_actors(
                    self.directory, pattern, space, cache=self.cache
                )
                assert cached == want, (
                    f"stale cache: pattern {pattern} in {space}: "
                    f"cached={cached} ref={want}"
                )


TestDirectoryModel = DirectoryMachine.TestCase
TestDirectoryModel.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)
