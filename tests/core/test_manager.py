"""Unit tests: space managers (policies, arbitration)."""

import numpy as np
import pytest

from repro.core.addresses import ActorAddress, SpaceAddress
from repro.core.errors import NoMatchError
from repro.core.manager import (
    Arbitration,
    CyclePolicy,
    SpaceManager,
    UnmatchedPolicy,
    default_manager,
)
from repro.core.messages import Destination, Envelope, Message, Mode


def envelope(mode=Mode.SEND):
    return Envelope(
        message=Message("x"),
        sender=None,
        mode=mode,
        destination=Destination("a/*"),
    )


def members(n):
    return [ActorAddress(0, i) for i in range(n)]


class TestArbitration:
    def test_random_covers_all_members(self):
        m = SpaceManager(arbitration=Arbitration.RANDOM)
        rng = np.random.default_rng(0)
        group = members(4)
        chosen = {m.choose_receiver(group, rng) for _ in range(200)}
        assert chosen == set(group)

    def test_round_robin_cycles(self):
        m = SpaceManager(arbitration=Arbitration.ROUND_ROBIN)
        rng = np.random.default_rng(0)
        group = members(3)
        picks = [m.choose_receiver(group, rng) for _ in range(6)]
        assert picks == sorted(group) * 2

    def test_least_loaded_picks_minimum(self):
        m = SpaceManager(arbitration=Arbitration.LEAST_LOADED)
        rng = np.random.default_rng(0)
        group = members(3)
        loads = {group[0]: 5, group[1]: 1, group[2]: 3}
        assert m.choose_receiver(group, rng, loads.get) == group[1]

    def test_least_loaded_requires_load_fn(self):
        m = SpaceManager(arbitration=Arbitration.LEAST_LOADED)
        with pytest.raises(ValueError):
            m.choose_receiver(members(2), np.random.default_rng(0))

    def test_singleton_short_circuit(self):
        m = SpaceManager()
        [only] = members(1)
        assert m.choose_receiver([only], np.random.default_rng(0)) == only

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            SpaceManager().choose_receiver([], np.random.default_rng(0))

    def test_choice_is_deterministic_given_rng(self):
        group = members(5)
        a = [SpaceManager().choose_receiver(group, np.random.default_rng(9))
             for _ in range(1)]
        b = [SpaceManager().choose_receiver(group, np.random.default_rng(9))
             for _ in range(1)]
        assert a == b


class TestUnmatchedPolicy:
    def space(self):
        return SpaceAddress(0, 0)

    def test_default_is_suspend(self):
        assert default_manager().on_unmatched(envelope(), self.space()) == "suspend"

    def test_discard(self):
        m = SpaceManager(unmatched=UnmatchedPolicy.DISCARD)
        assert m.on_unmatched(envelope(), self.space()) == "discard"

    def test_error_raises(self):
        m = SpaceManager(unmatched=UnmatchedPolicy.ERROR)
        with pytest.raises(NoMatchError):
            m.on_unmatched(envelope(), self.space())

    def test_persistent_only_for_broadcasts(self):
        m = SpaceManager(unmatched=UnmatchedPolicy.PERSISTENT)
        assert m.on_unmatched(envelope(Mode.BROADCAST), self.space()) == "persist"
        assert m.on_unmatched(envelope(Mode.SEND), self.space()) == "suspend"


class TestCyclePolicy:
    def test_default_checks_dag(self):
        assert default_manager().check_cycles
        assert not SpaceManager(cycles=CyclePolicy.TAGGING).check_cycles

    def test_tagging_traps_long_traces(self):
        m = SpaceManager(cycles=CyclePolicy.TAGGING, max_forward_hops=4)
        e = envelope()
        for node in range(5):
            e.hop(node)
        assert m.trap_cycling(e)

    def test_tagging_passes_short_traces(self):
        m = SpaceManager(cycles=CyclePolicy.TAGGING, max_forward_hops=4)
        e = envelope()
        e.hop(0)
        assert not m.trap_cycling(e)

    def test_dag_check_never_traps(self):
        m = default_manager()
        e = envelope()
        for node in range(100):
            e.hop(node)
        assert not m.trap_cycling(e)
