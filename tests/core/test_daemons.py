"""Tests: monitoring daemons (the section-8 manager extension)."""

import pytest

from repro.core.daemons import (
    AttributeDaemon,
    ConstraintRule,
    install_daemon,
    predicate_rule,
    queue_depth_observation,
    threshold_rule,
)
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


class TestRules:
    def test_threshold_two_band(self):
        rule = threshold_rule("load", "queue", low_max=2)
        assert str(rule.derived({"queue": 0})) == "load/low"
        assert str(rule.derived({"queue": 2})) == "load/low"
        assert str(rule.derived({"queue": 3})) == "load/high"

    def test_threshold_three_band(self):
        rule = threshold_rule("load", "queue", low_max=1, high_min=5)
        assert str(rule.derived({"queue": 3})) == "load/mid"
        assert str(rule.derived({"queue": 9})) == "load/high"

    def test_missing_metric_publishes_nothing(self):
        rule = threshold_rule("load", "queue", low_max=2)
        assert rule.derived({}) is None

    def test_predicate_rule(self):
        rule = predicate_rule("state", "veteran",
                              lambda obs: obs.get("processed", 0) >= 3)
        assert rule.derived({"processed": 5}) is not None
        assert rule.derived({"processed": 1}) is None


def build(period=0.5):
    system = ActorSpaceSystem(topology=Topology.lan(2), seed=0)
    key = system.new_capability()
    space = system.create_space(capability=key)
    system.run()
    workers = []
    for i in range(3):
        addr = system.create_actor(lambda ctx, m: None, node=i % 2)
        system.make_visible(addr, f"w/n{i}", space, capability=key)
        workers.append(addr)
    system.run()
    return system, key, space, workers


class TestDaemon:
    def test_daemon_publishes_derived_attributes(self):
        system, key, space, workers = build()
        install_daemon(system, space,
                       [threshold_rule("load", "queue", low_max=2)],
                       capability=key, period=0.5)
        system.run(until=1.2)
        rec = system.directory_of(0).space(space)
        for w in workers:
            attrs = {str(a) for a in rec.lookup(w).attributes}
            assert "load/low" in attrs, attrs

    def test_identity_attributes_preserved(self):
        system, key, space, workers = build()
        install_daemon(system, space,
                       [threshold_rule("load", "queue", low_max=2)],
                       capability=key, period=0.5)
        system.run(until=1.2)
        rec = system.directory_of(0).space(space)
        attrs = {str(a) for a in rec.lookup(workers[0]).attributes}
        assert "w/n0" in attrs

    def test_attributes_track_observation_changes(self):
        system, key, space, workers = build()
        install_daemon(
            system, space,
            [predicate_rule("state", "veteran",
                            lambda obs: obs.get("processed", 0) >= 2)],
            capability=key, period=0.5,
        )
        system.run(until=1.2)
        rec = system.directory_of(0).space(space)
        attrs = {str(a) for a in rec.lookup(workers[0]).attributes}
        assert "state/veteran" not in attrs
        # Give worker 0 some processed messages, then sweep again.
        for _ in range(3):
            system.send_to(workers[0], "work")
        system.run(until=2.5)
        attrs = {str(a) for a in rec.lookup(workers[0]).attributes}
        assert "state/veteran" in attrs

    def test_patterns_can_target_derived_attributes(self):
        """The point of it all: constraints become destination patterns."""
        system, key, space, _workers = build()
        busy_got, idle_got = [], []
        busy = system.create_actor(lambda ctx, m: busy_got.append(m.payload),
                                   node=0)
        idle = system.create_actor(lambda ctx, m: idle_got.append(m.payload),
                                   node=1)
        system.make_visible(busy, "srv/busy", space, capability=key)
        system.make_visible(idle, "srv/idle", space, capability=key)
        system.run()
        observations = {busy: {"queue": 9}, idle: {"queue": 0}}
        install_daemon(
            system, space,
            [threshold_rule("load", "queue", low_max=2)],
            capability=key, period=0.3,
            observe=lambda sys_, addr: observations.get(addr, {}),
        )
        system.run(until=1.0)
        from repro.core.messages import Destination

        system.send(Destination("load/low", space), "prefer-idle")
        system.run(until=2.0)
        assert idle_got == ["prefer-idle"]
        assert busy_got == []

    def test_daemon_counts_work(self):
        system, key, space, _workers = build()
        addr = install_daemon(system, space,
                              [threshold_rule("load", "queue", low_max=2)],
                              capability=key, period=0.4)
        system.run(until=2.0)
        daemon = system.actor_record(addr).behavior
        assert daemon.sweeps >= 3
        assert daemon.updates >= 3  # first sweep adds load/low to 3 workers

    def test_daemon_stop(self):
        system, key, space, _workers = build()
        addr = install_daemon(system, space,
                              [threshold_rule("load", "queue", low_max=2)],
                              capability=key, period=0.4)
        system.run(until=1.0)
        system.send_to(addr, "stop")
        system.run(until=1.6)
        daemon = system.actor_record(addr).behavior
        sweeps = daemon.sweeps
        system.run(until=5.0)
        assert daemon.sweeps == sweeps  # no sweeps after stop
        assert system.actor_record(addr).terminated

    def test_daemon_dies_with_its_space(self):
        system, key, space, _workers = build()
        addr = install_daemon(system, space,
                              [threshold_rule("load", "queue", low_max=2)],
                              capability=key, period=0.4)
        system.run(until=1.0)
        system.destroy_space(space)
        system.run(until=3.0)
        assert system.actor_record(addr).terminated

    def test_uninstalled_daemon_asserts(self):
        daemon = AttributeDaemon(None, [], lambda s, a: {})
        with pytest.raises(AssertionError):
            daemon._sweep(None)
