"""Tests: application-level message tagging (section 5.7 alternative)."""

from repro.core.messages import Message
from repro.core.tagging import (
    forward_once,
    forward_to,
    has_cycle,
    seen_by_me,
    via_chain,
)
from repro.runtime.network import Topology
from repro.runtime.system import ActorSpaceSystem


def lan(seed=0):
    return ActorSpaceSystem(topology=Topology.lan(2), seed=seed)


class TestChainHelpers:
    def test_empty_chain(self):
        m = Message("x")
        assert via_chain(m) == ()
        assert not has_cycle(m)

    def test_cycle_detection(self):
        from repro.core.addresses import ActorAddress

        a = ActorAddress(0, 1)
        m = Message("x", headers={"via": [a, ActorAddress(0, 2), a]})
        assert has_cycle(m)


class TestForwardingLoopTrapped:
    def test_two_actor_loop_dies_after_one_round(self):
        """The integration suite shows an untagged loop lives forever;
        with tagging it traps after each actor forwarded once."""
        system = lan()
        trapped = []

        def relay(own_tag, other_pattern):
            def behavior(ctx, message):
                if not forward_once(ctx, other_pattern, message):
                    trapped.append(own_tag)
            return behavior

        a = system.create_actor(relay("a", "loop/b"), node=0)
        b = system.create_actor(relay("b", "loop/a"), node=1)
        system.make_visible(a, "loop/a")
        system.make_visible(b, "loop/b")
        system.run()
        system.send("loop/a", "hot-potato")
        system.run()   # terminates! the loop is finite now
        assert system.idle
        assert trapped  # someone refused to forward again

    def test_via_chain_records_the_route(self):
        system = lan()
        chains = []

        def hop(next_pattern):
            def behavior(ctx, message):
                if next_pattern is None:
                    chains.append(via_chain(message))
                else:
                    forward_once(ctx, next_pattern, message)
            return behavior

        last = system.create_actor(hop(None), node=1)
        mid = system.create_actor(hop("chain/last"), node=0)
        first = system.create_actor(hop("chain/mid"), node=1)
        system.make_visible(last, "chain/last")
        system.make_visible(mid, "chain/mid")
        system.make_visible(first, "chain/first")
        system.run()
        system.send("chain/first", "payload")
        system.run()
        assert chains == [(first, mid)]

    def test_forward_to_point_to_point(self):
        system = lan()
        got = []
        sink = system.create_actor(lambda ctx, m: got.append(via_chain(m)))

        def relay(ctx, message):
            forward_to(ctx, sink, message)

        r = system.create_actor(relay, node=1)
        system.send_to(r, "data")
        system.run()
        assert got == [(r,)]

    def test_reply_to_preserved_through_forwarding(self):
        system = lan()
        got = []
        origin = system.create_actor(lambda ctx, m: got.append(m.payload))

        def responder(ctx, message):
            ctx.send_to(message.reply_to, ("answer", message.payload))

        def relay(ctx, message):
            forward_once(ctx, "svc/responder", message)

        resp = system.create_actor(responder, node=1)
        rel = system.create_actor(relay, node=0)
        system.make_visible(resp, "svc/responder")
        system.run()
        system.send_to(rel, "question", reply_to=origin)
        system.run()
        assert got == [("answer", "question")]

    def test_broadcast_forwarding(self):
        system = lan()
        sinks = []
        for i in range(3):
            items = []
            addr = system.create_actor(
                lambda ctx, m, it=items: it.append(m.payload), node=i % 2)
            system.make_visible(addr, f"fan/s{i}")
            sinks.append(items)
        system.run()

        def fanout(ctx, message):
            forward_once(ctx, "fan/*", message, broadcast=True)

        f = system.create_actor(fanout)
        system.send_to(f, "blast")
        system.run()
        assert all(items == ["blast"] for items in sinks)
