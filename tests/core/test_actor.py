"""Unit tests: behaviors, become staging, actor records."""

import pytest

from repro.core.actor import (
    ActorRecord,
    Behavior,
    FunctionBehavior,
    as_behavior,
)
from repro.core.addresses import ActorAddress, SpaceAddress
from repro.core.messages import Message


class Ping(Behavior):
    def __init__(self, label="ping"):
        self.label = label
        self.seen = []

    def receive(self, ctx, message):
        self.seen.append(message.payload)


class TestAsBehavior:
    def test_instance_passthrough(self):
        b = Ping()
        assert as_behavior(b) is b

    def test_instance_with_args_rejected(self):
        with pytest.raises(TypeError):
            as_behavior(Ping(), "extra")

    def test_class_instantiation(self):
        b = as_behavior(Ping, "custom")
        assert isinstance(b, Ping)
        assert b.label == "custom"

    def test_callable_wrapping(self):
        calls = []
        b = as_behavior(lambda ctx, m: calls.append(m))
        assert isinstance(b, FunctionBehavior)
        b.receive(None, Message("hi"))
        assert len(calls) == 1

    def test_callable_with_args_rejected(self):
        with pytest.raises(TypeError):
            as_behavior(lambda ctx, m: None, 1)

    def test_noncallable_rejected(self):
        with pytest.raises(TypeError):
            as_behavior(42)

    def test_function_behavior_requires_callable(self):
        with pytest.raises(TypeError):
            FunctionBehavior("nope")


class TestActorRecord:
    def _record(self):
        return ActorRecord(
            ActorAddress(0, 0), Ping(), node=0, host_space=SpaceAddress(0, 99)
        )

    def test_become_takes_effect_only_on_install(self):
        rec = self._record()
        old = rec.behavior
        new = Ping("new")
        rec.stage_become(new)
        assert rec.behavior is old  # not yet!
        rec.install_pending()
        assert rec.behavior is new
        assert rec.pending_behavior is None

    def test_install_without_pending_is_noop(self):
        rec = self._record()
        b = rec.behavior
        rec.install_pending()
        assert rec.behavior is b

    def test_last_become_wins(self):
        rec = self._record()
        rec.stage_become(Ping("a"))
        final = Ping("b")
        rec.stage_become(final)
        rec.install_pending()
        assert rec.behavior is final

    def test_on_start_default_is_noop(self):
        Ping().on_start(None)  # must not raise
