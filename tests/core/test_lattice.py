"""Unit + property tests: the description lattice."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lattice import (
    BOTTOM,
    TOP,
    And,
    Bottom,
    Has,
    Or,
    Top,
    join,
    meet,
    subsumes,
)


class TestSatisfaction:
    def test_has_matches_any_advertised_attribute(self):
        d = Has("services/print")
        assert d.satisfied_by(["services/print", "other"])
        assert not d.satisfied_by(["services/scan"])

    def test_has_with_wildcards(self):
        d = Has("services/*")
        assert d.satisfied_by(["services/print"])
        assert not d.satisfied_by(["misc"])

    def test_and_requires_all(self):
        d = And([Has("a"), Has("b")])
        assert d.satisfied_by(["a", "b", "c"])
        assert not d.satisfied_by(["a"])

    def test_or_requires_any(self):
        d = Or([Has("a"), Has("b")])
        assert d.satisfied_by(["b"])
        assert not d.satisfied_by(["c"])

    def test_top_and_bottom(self):
        assert TOP.satisfied_by([])
        assert TOP.satisfied_by(["x"])
        assert not BOTTOM.satisfied_by(["x"])

    def test_operators_build_combinations(self):
        d = Has("a") & Has("b") | Has("c")
        assert d.satisfied_by(["c"])
        assert d.satisfied_by(["a", "b"])
        assert not d.satisfied_by(["a"])

    def test_strings_lift_to_has_inside_combinators(self):
        d = And(["a", "b"])
        assert d.satisfied_by(["a", "b"])


class TestAlgebra:
    def test_flattening_and_idempotence(self):
        assert And([And([Has("a"), Has("b")]), Has("c")]) == And(
            [Has("a"), Has("b"), Has("c")]
        )
        assert And([Has("a"), Has("a")]) == And([Has("a")])

    def test_meet_simplifications(self):
        assert meet(TOP, Has("a")) == Has("a")
        assert isinstance(meet(BOTTOM, Has("a")), Bottom)
        assert isinstance(meet(), Top)
        assert meet(Has("a")) == Has("a")

    def test_join_simplifications(self):
        assert join(BOTTOM, Has("a")) == Has("a")
        assert isinstance(join(TOP, Has("a")), Top)
        assert isinstance(join(), Bottom)

    def test_desc_values_are_immutable(self):
        d = Has("a")
        with pytest.raises(AttributeError):
            d.pattern = None

    def test_equality_is_structural(self):
        assert Has("a") == Has("a")
        assert Or([Has("a"), Has("b")]) == Or([Has("b"), Has("a")])
        assert And([Has("a")]) != Or([Has("a")])


class TestSubsumption:
    def test_top_subsumes_everything(self):
        for d in (TOP, BOTTOM, Has("a"), And([Has("a"), Has("b")])):
            assert subsumes(TOP, d)

    def test_everything_subsumes_bottom(self):
        for d in (TOP, Has("a"), Or([Has("a")])):
            assert subsumes(d, BOTTOM)

    def test_reflexive_on_leaves(self):
        assert subsumes(Has("a/b"), Has("a/b"))

    def test_general_pattern_subsumes_literal(self):
        assert subsumes(Has("services/*"), Has("services/print"))
        assert not subsumes(Has("services/print"), Has("services/*"))

    def test_and_on_specific_side(self):
        # a ∧ b is more specific than a.
        assert subsumes(Has("a"), And([Has("a"), Has("b")]))
        assert not subsumes(And([Has("a"), Has("b")]), Has("a"))

    def test_or_on_general_side(self):
        assert subsumes(Or([Has("a"), Has("b")]), Has("a"))
        assert not subsumes(Has("a"), Or([Has("a"), Has("b")]))

    def test_or_specific_requires_all_branches(self):
        assert subsumes(Or([Has("a"), Has("b")]), Or([Has("a"), Has("b")]))
        assert not subsumes(Has("a"), Or([Has("a"), Has("b")]))

    def test_anywhere_subsumes_any_pattern(self):
        assert subsumes(Has("**"), Has("x/*/y"))


# -- property tests -------------------------------------------------------------

atom = st.text(string.ascii_lowercase, min_size=1, max_size=3)
leaf = atom.map(Has)


def descs(depth=2):
    if depth == 0:
        return st.one_of(leaf, st.just(TOP), st.just(BOTTOM))
    sub = descs(depth - 1)
    return st.one_of(
        leaf,
        st.just(TOP),
        st.just(BOTTOM),
        st.lists(sub, min_size=1, max_size=3).map(And),
        st.lists(sub, min_size=1, max_size=3).map(Or),
    )


attr_sets = st.lists(atom, min_size=0, max_size=5)


@given(descs(), descs(), attr_sets)
@settings(max_examples=300)
def test_subsumption_is_sound(general, specific, attrs):
    """If g subsumes s, every attribute set satisfying s satisfies g."""
    if subsumes(general, specific) and specific.satisfied_by(attrs):
        assert general.satisfied_by(attrs)


@given(descs(), descs(), attr_sets)
@settings(max_examples=300)
def test_meet_is_conjunction(d1, d2, attrs):
    both = meet(d1, d2)
    assert both.satisfied_by(attrs) == (
        d1.satisfied_by(attrs) and d2.satisfied_by(attrs)
    )


@given(descs(), descs(), attr_sets)
@settings(max_examples=300)
def test_join_is_disjunction(d1, d2, attrs):
    either = join(d1, d2)
    assert either.satisfied_by(attrs) == (
        d1.satisfied_by(attrs) or d2.satisfied_by(attrs)
    )


@given(descs())
def test_meet_with_top_is_identity(d):
    assert meet(TOP, d) == d or isinstance(d, Top)


@given(descs(), attr_sets)
@settings(max_examples=200)
def test_self_subsumption_never_contradicts_satisfaction(d, attrs):
    # subsumes(d, d) may be False for syntactically distinct-but-equal
    # forms, but must never be True while breaking soundness; check the
    # reflexive case it does claim.
    if subsumes(d, d) and d.satisfied_by(attrs):
        assert d.satisfied_by(attrs)
