"""Unit tests: space records and registries."""

import pytest

from repro.core.actorspace import SpaceRecord
from repro.core.addresses import ActorAddress, SpaceAddress
from repro.core.atoms import AttributePath
from repro.core.errors import SpaceDestroyedError


def record():
    return SpaceRecord(SpaceAddress(0, 0))


class TestRegistry:
    def test_register_and_lookup(self):
        rec = record()
        actor = ActorAddress(0, 1)
        entry = rec.register(actor, "a/b", now=2.0)
        assert entry.attributes == frozenset({AttributePath("a/b")})
        assert entry.registered_at == 2.0
        assert rec.lookup(actor) is entry
        assert actor in rec
        assert rec.size == 1

    def test_register_multiple_attributes(self):
        rec = record()
        entry = rec.register(ActorAddress(0, 1), ["a", "b/c"])
        assert len(entry.attributes) == 2

    def test_reregister_replaces(self):
        rec = record()
        actor = ActorAddress(0, 1)
        rec.register(actor, "old")
        rec.register(actor, "new")
        assert rec.lookup(actor).attributes == frozenset({AttributePath("new")})
        assert rec.size == 1

    def test_unregister(self):
        rec = record()
        actor = ActorAddress(0, 1)
        rec.register(actor, "x")
        assert rec.unregister(actor)
        assert not rec.unregister(actor)
        assert rec.lookup(actor) is None

    def test_entry_kind_iteration(self):
        rec = record()
        rec.register(ActorAddress(0, 1), "a")
        rec.register(SpaceAddress(0, 2), "s")
        assert [e.target for e in rec.actor_entries()] == [ActorAddress(0, 1)]
        assert [e.target for e in rec.space_entries()] == [SpaceAddress(0, 2)]
        assert len(list(rec.entries())) == 2

    def test_entry_is_space_flag(self):
        rec = record()
        assert rec.register(SpaceAddress(0, 2), "s").is_space
        assert not rec.register(ActorAddress(0, 1), "a").is_space


class TestDestroy:
    def test_destroy_evicts_but_reports_members(self):
        rec = record()
        rec.register(ActorAddress(0, 1), "a")
        rec.register(ActorAddress(0, 2), "b")
        evicted = rec.destroy()
        assert len(evicted) == 2
        assert rec.destroyed
        assert rec.size == 0

    def test_operations_after_destroy_raise(self):
        rec = record()
        rec.destroy()
        with pytest.raises(SpaceDestroyedError):
            rec.register(ActorAddress(0, 1), "a")
        with pytest.raises(SpaceDestroyedError):
            rec.unregister(ActorAddress(0, 1))

    def test_first_atom_index_tracks_registrations(self):
        rec = record()
        a, b = ActorAddress(0, 1), ActorAddress(0, 2)
        rec.register(a, ["svc/print", "misc/a"])
        rec.register(b, "svc/scan")
        assert {e.target for e in rec.entries_with_first_atom("svc")} == {a, b}
        assert {e.target for e in rec.entries_with_first_atom("misc")} == {a}
        assert list(rec.entries_with_first_atom("ghost")) == []

    def test_first_atom_index_updates_on_reregister(self):
        rec = record()
        a = ActorAddress(0, 1)
        rec.register(a, "old/name")
        rec.register(a, "new/name")
        assert list(rec.entries_with_first_atom("old")) == []
        assert [e.target for e in rec.entries_with_first_atom("new")] == [a]

    def test_first_atom_index_updates_on_unregister(self):
        rec = record()
        a = ActorAddress(0, 1)
        rec.register(a, "svc/x")
        rec.unregister(a)
        assert list(rec.entries_with_first_atom("svc")) == []

    def test_snapshot_is_value_copy(self):
        rec = record()
        actor = ActorAddress(0, 1)
        rec.register(actor, "a")
        snap = rec.snapshot()
        rec.register(actor, "b")
        assert snap[actor] == frozenset({AttributePath("a")})
