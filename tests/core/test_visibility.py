"""Unit + property tests: the visibility directory and its DAG invariant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actorspace import SpaceRecord
from repro.core.addresses import ActorAddress, SpaceAddress
from repro.core.capabilities import Capability
from repro.core.errors import (
    CapabilityError,
    SpaceDestroyedError,
    UnknownAddressError,
    VisibilityCycleError,
)
from repro.core.visibility import Directory


def make_directory(n_spaces=3, capability=None):
    d = Directory()
    spaces = [SpaceAddress(0, i) for i in range(n_spaces)]
    for s in spaces:
        d.add_space(SpaceRecord(s, capability))
    return d, spaces


class TestSpaceLifecycle:
    def test_add_and_lookup(self):
        d, (s0, *_rest) = make_directory()
        assert d.has_space(s0)
        assert d.space(s0).address == s0

    def test_duplicate_add_rejected(self):
        d, (s0, *_r) = make_directory()
        with pytest.raises(ValueError):
            d.add_space(SpaceRecord(s0))

    def test_unknown_space_raises(self):
        d, _ = make_directory()
        with pytest.raises(UnknownAddressError):
            d.space(SpaceAddress(9, 9))

    def test_destroy_space(self):
        d, (s0, s1, _s2) = make_directory()
        actor = ActorAddress(0, 10)
        d.make_visible(actor, "a", s0)
        d.make_visible(s1, "sub", s0)
        d.destroy_space(s0)
        assert not d.has_space(s0)
        with pytest.raises(SpaceDestroyedError):
            d.space(s0)
        # Members survive and reverse index is cleaned.
        assert d.containers_of(actor) == frozenset()
        assert d.containers_of(s1) == frozenset()

    def test_destroying_member_space_removes_it_from_holders(self):
        d, (s0, s1, _s2) = make_directory()
        d.make_visible(s1, "sub", s0)
        d.destroy_space(s1)
        assert s1 not in d.space(s0)


class TestVisibilityOps:
    def test_make_visible_and_reverse_index(self):
        d, (s0, s1, _s2) = make_directory()
        actor = ActorAddress(0, 10)
        d.make_visible(actor, "a/b", s0)
        d.make_visible(actor, "c", s1)
        assert d.containers_of(actor) == frozenset({s0, s1})
        assert d.is_visible_anywhere(actor)

    def test_make_invisible(self):
        d, (s0, *_r) = make_directory()
        actor = ActorAddress(0, 10)
        d.make_visible(actor, "a", s0)
        assert d.make_invisible(actor, s0)
        assert not d.make_invisible(actor, s0)
        assert not d.is_visible_anywhere(actor)

    def test_change_attributes_requires_registration(self):
        d, (s0, *_r) = make_directory()
        actor = ActorAddress(0, 10)
        with pytest.raises(UnknownAddressError):
            d.change_attributes(actor, "x", s0)
        d.make_visible(actor, "a", s0)
        d.change_attributes(actor, ["x", "y"], s0)
        assert len(d.space(s0).lookup(actor).attributes) == 2

    def test_purge_target_removes_everywhere(self):
        d, (s0, s1, _s2) = make_directory()
        actor = ActorAddress(0, 10)
        d.make_visible(actor, "a", s0)
        d.make_visible(actor, "b", s1)
        assert d.purge_target(actor) == 2
        assert actor not in d.space(s0)
        assert actor not in d.space(s1)


class TestCapabilities:
    def test_space_capability_enforced(self):
        key = Capability(7)
        d, (s0, *_r) = make_directory(capability=key)
        actor = ActorAddress(0, 10)
        with pytest.raises(CapabilityError):
            d.make_visible(actor, "a", s0)
        with pytest.raises(CapabilityError):
            d.make_visible(actor, "a", s0, Capability(8))
        d.make_visible(actor, "a", s0, key)

    def test_target_capability_enforced(self):
        d, (s0, *_r) = make_directory()
        actor = ActorAddress(0, 10)
        key = Capability(5)
        d.bind_capability(actor, key)
        with pytest.raises(CapabilityError):
            d.make_visible(actor, "a", s0)
        d.make_visible(actor, "a", s0, key)
        with pytest.raises(CapabilityError):
            d.make_invisible(actor, s0, None)
        d.make_invisible(actor, s0, key)

    def test_one_key_can_guard_both(self):
        key = Capability(9)
        d = Directory()
        s = SpaceAddress(0, 0)
        d.add_space(SpaceRecord(s, key))
        actor = ActorAddress(0, 1)
        d.bind_capability(actor, key)
        d.make_visible(actor, "a", s, key)  # one key satisfies both checks


class TestCycles:
    def test_self_visibility_rejected(self):
        d, (s0, *_r) = make_directory()
        with pytest.raises(VisibilityCycleError):
            d.make_visible(s0, "me", s0)

    def test_two_step_cycle_rejected(self):
        d, (s0, s1, _s2) = make_directory()
        d.make_visible(s1, "down", s0)  # s0 contains s1
        with pytest.raises(VisibilityCycleError):
            d.make_visible(s0, "up", s1)  # would close the loop

    def test_three_step_cycle_rejected(self):
        d, (s0, s1, s2) = make_directory()
        d.make_visible(s1, "x", s0)
        d.make_visible(s2, "y", s1)
        with pytest.raises(VisibilityCycleError):
            d.make_visible(s0, "z", s2)

    def test_diamond_is_allowed(self):
        """Spaces may overlap arbitrarily — only cycles are banned."""
        d, (s0, s1, s2) = make_directory()
        d.make_visible(s2, "via-a", s0)
        d.make_visible(s2, "via-b", s1)  # two parents: fine (not a tree!)
        d.make_visible(s1, "link", s0)   # diamond closes: still acyclic

    def test_actors_never_cycle(self):
        d, (s0, *_r) = make_directory()
        assert not d.would_cycle(ActorAddress(0, 10), s0)

    def test_check_cycles_false_permits_cycle(self):
        """The message-tagging alternative (section 5.7) skips the check."""
        d, (s0, s1, _s2) = make_directory()
        d.make_visible(s1, "down", s0)
        d.make_visible(s0, "up", s1, check_cycles=False)
        assert d.reaches(s0, s1) and d.reaches(s1, s0)


# -- property test: the DAG invariant under arbitrary op sequences ---------------


@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=40),
       st.randoms())
@settings(max_examples=200)
def test_dag_invariant_under_arbitrary_ops(edges, pyrandom):
    """make_visible either succeeds or raises; the graph stays acyclic."""
    d = Directory()
    spaces = [SpaceAddress(0, i) for i in range(6)]
    for s in spaces:
        d.add_space(SpaceRecord(s))
    for child_i, parent_i in edges:
        try:
            d.make_visible(spaces[child_i], "e", spaces[parent_i])
        except VisibilityCycleError:
            pass
        if pyrandom.random() < 0.2 and edges:
            # interleave removals: they can only relax the graph
            a, b = edges[pyrandom.randrange(len(edges))]
            d.make_invisible(spaces[a], spaces[b])
    # Acyclicity: no space reaches itself through a nonempty path.
    for s in spaces:
        for child in d.contained_spaces(s):
            assert not d.reaches(child, s), f"cycle via {s} -> {child}"


class TestChurnHygiene:
    """Regressions: space churn must not leak reverse-index or capability
    state, and no-op operations must not move the epoch."""

    def test_destroy_space_purges_empty_holder_sets(self):
        d, (s0, *_r) = make_directory()
        actor = ActorAddress(0, 10)
        d.make_visible(actor, "a", s0)
        d.destroy_space(s0)
        assert actor not in d._containers
        assert s0 not in d._containers

    def test_destroy_space_keeps_nonempty_holder_sets(self):
        d, (s0, s1, _s2) = make_directory()
        actor = ActorAddress(0, 10)
        d.make_visible(actor, "a", s0)
        d.make_visible(actor, "a", s1)
        d.destroy_space(s0)
        assert d.containers_of(actor) == frozenset({s1})

    def test_destroy_space_drops_capability_binding(self):
        d = Directory()
        cap = Capability(123)
        s0 = SpaceAddress(0, 0)
        d.add_space(SpaceRecord(s0, cap))
        assert s0 in d._known_capabilities
        d.destroy_space(s0)
        assert s0 not in d._known_capabilities

    def test_space_churn_does_not_grow_directory_state(self):
        d, (s0, *_r) = make_directory()
        actor = ActorAddress(0, 10)
        for i in range(50):
            sub = SpaceAddress(1, i)
            cap = Capability(i)
            d.add_space(SpaceRecord(sub, cap))
            d.make_visible(sub, "sub", s0, capability=cap)
            d.make_visible(actor, "a", sub, capability=cap)
            d.destroy_space(sub)
        assert d.containers_of(actor) == frozenset()
        assert len(d._containers) == 0
        # Only the three base spaces keep capability bindings.
        assert len(d._known_capabilities) == 3

    def test_noop_make_invisible_does_not_bump_op_count(self):
        d, (s0, *_r) = make_directory()
        before = d.op_count
        assert d.make_invisible(ActorAddress(0, 99), s0) is False
        assert d.op_count == before

    def test_noop_change_attributes_does_not_bump_op_count(self):
        d, (s0, *_r) = make_directory()
        actor = ActorAddress(0, 10)
        d.make_visible(actor, ["a/b", "c"], s0)
        before = d.op_count
        d.change_attributes(actor, ["c", "a/b"], s0)  # same set, reordered
        assert d.op_count == before

    def test_noop_make_visible_does_not_bump_op_count(self):
        d, (s0, *_r) = make_directory()
        actor = ActorAddress(0, 10)
        d.make_visible(actor, "a", s0)
        before = d.op_count
        d.make_visible(actor, "a", s0)
        assert d.op_count == before

    def test_real_mutations_do_bump_epoch(self):
        d, (s0, *_r) = make_directory()
        actor = ActorAddress(0, 10)
        e0 = d.epoch
        d.make_visible(actor, "a", s0)
        e1 = d.epoch
        assert e1 > e0
        d.change_attributes(actor, "b", s0)
        e2 = d.epoch
        assert e2 > e1
        d.make_invisible(actor, s0)
        assert d.epoch > e2

    def test_space_epoch_tracks_registry_mutations(self):
        d, (s0, s1, _s2) = make_directory()
        actor = ActorAddress(0, 10)
        before = d.space_epoch(s0)
        d.make_visible(actor, "a", s0)
        assert d.space_epoch(s0) > before
        assert d.space_epoch(s1) == 0  # untouched
        assert d.space_epoch(SpaceAddress(9, 9)) == -1  # never known
        destroyed_before = d.space_epoch(s0)
        d.destroy_space(s0)
        assert d.space_epoch(s0) > destroyed_before
