"""Unit tests: capabilities (unforgeable keys, section 5.4)."""

import numpy as np
import pytest

from repro.core.capabilities import Capability, CapabilityIssuer, authorize


def issuer(seed=0):
    return CapabilityIssuer(np.random.default_rng(seed))


class TestCapability:
    def test_equality_by_token(self):
        a = Capability(42)
        assert a == Capability(42)
        assert a != Capability(43)
        assert hash(a) == hash(Capability(42))

    def test_copy_compares_equal(self):
        a = issuer().new_capability()
        assert a.copy() == a
        assert a.copy() is not a

    def test_token_bounds(self):
        with pytest.raises(ValueError):
            Capability(-1)
        with pytest.raises(ValueError):
            Capability(1 << 128)
        with pytest.raises(ValueError):
            Capability("not-an-int")

    def test_repr_does_not_leak_full_token(self):
        cap = Capability((1 << 128) - 1)
        assert f"{cap.token:x}" not in repr(cap)


class TestIssuer:
    def test_caps_are_unique(self):
        iss = issuer()
        caps = [iss.new_capability() for _ in range(500)]
        assert len({c.token for c in caps}) == 500
        assert iss.issued_count == 500

    def test_deterministic_given_seed(self):
        a_iss, b_iss = issuer(7), issuer(7)
        a = [a_iss.new_capability() for _ in range(5)]
        b = [b_iss.new_capability() for _ in range(5)]
        assert a == b

    def test_different_seeds_differ(self):
        assert issuer(1).new_capability() != issuer(2).new_capability()

    def test_was_issued(self):
        iss = issuer()
        cap = iss.new_capability()
        assert iss.was_issued(cap)
        assert iss.was_issued(cap.copy())

    def test_forged_capability_not_recognized(self):
        """Unforgeability: guessing tokens does not produce issued keys."""
        iss = issuer(3)
        for _ in range(100):
            iss.new_capability()
        attacker_rng = np.random.default_rng(999)
        for _ in range(1000):
            guess = Capability(int(attacker_rng.integers(0, 1 << 62)))
            assert not iss.was_issued(guess)


class TestAuthorize:
    def test_unprotected_accepts_anything(self):
        assert authorize(None, None)
        assert authorize(Capability(1), None)

    def test_protected_requires_equal_key(self):
        key = Capability(99)
        assert authorize(Capability(99), key)
        assert not authorize(Capability(98), key)
        assert not authorize(None, key)
