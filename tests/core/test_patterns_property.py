"""Property-based tests for the pattern engine (hypothesis)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import AttributePath
from repro.core.patterns import parse_pattern

atoms = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=4)
paths = st.lists(atoms, min_size=1, max_size=5).map(AttributePath)


def pattern_texts():
    """Patterns mixing literals, *, ** and simple globs."""
    atom_pattern = st.one_of(
        atoms,
        st.just("*"),
        st.just("**"),
        atoms.map(lambda a: a[:1] + "*"),
        atoms.map(lambda a: a + "?"),
    )
    return st.lists(atom_pattern, min_size=1, max_size=5).map("/".join)


@given(paths)
def test_every_path_matches_itself_as_literal_pattern(path):
    assert parse_pattern(path).matches(path)


@given(paths)
def test_anywhere_matches_everything(path):
    assert parse_pattern("**").matches(path)


@given(pattern_texts(), paths)
@settings(max_examples=300)
def test_min_length_is_sound(pattern_text, path):
    pattern = parse_pattern(pattern_text)
    if pattern.matches(path):
        assert len(path) >= pattern.min_length


@given(pattern_texts(), paths)
@settings(max_examples=300)
def test_without_multi_length_must_equal(pattern_text, path):
    pattern = parse_pattern(pattern_text)
    if not pattern.has_multi and pattern.matches(path):
        assert len(path) == len(pattern.matchers)


@given(pattern_texts(), paths, paths)
@settings(max_examples=300)
def test_residuals_are_exact(pattern_text, prefix, suffix):
    """path = prefix ++ suffix matches iff some residual of prefix matches suffix.

    This is the defining property of ``after_prefix``, which the
    nested-space descent relies on for correctness.
    """
    pattern = parse_pattern(pattern_text)
    combined = prefix / suffix
    via_residuals = any(r.matches(suffix) for r in pattern.after_prefix(prefix))
    assert via_residuals == pattern.matches(combined)


@given(pattern_texts(), paths)
@settings(max_examples=300)
def test_matches_prefix_iff_some_extension_matches(pattern_text, prefix):
    """matches_prefix must agree with an explicit (bounded) witness search."""
    pattern = parse_pattern(pattern_text)
    claimed = pattern.matches_prefix(prefix)
    residuals = pattern.after_prefix(prefix)
    # Soundness direction: a non-empty residual is a recipe for a witness.
    assert claimed == bool(residuals)


@given(pattern_texts())
def test_pattern_text_roundtrip_is_stable(pattern_text):
    p1 = parse_pattern(pattern_text)
    p2 = parse_pattern(str(p1))
    assert p1 == p2


@given(paths, paths)
def test_literal_prefix_residual_concatenation(prefix, suffix):
    """A literal pattern's residual after its own prefix is its suffix."""
    pattern = parse_pattern(prefix / suffix)
    residuals = pattern.after_prefix(prefix)
    assert any(r.matches(suffix) for r in residuals)
