"""Messages, destinations, and envelopes.

The communication model (paper section 5.3) has three ways to address a
message:

* **direct** — to an explicit actor mail address (plain actor semantics);
* **send** — ``send(pattern@actorSpace, message)``: one nondeterministically
  chosen actor among those whose visible attributes match the pattern;
* **broadcast** — ``broadcast(pattern@actorSpace, message)``: every matching
  actor receives the message.

A :class:`Destination` captures the ``pattern@actorSpace`` pair.  The
actorSpace part may itself be given by a pattern ("the actorSpace
specification ... may itself be pattern based"), which the matcher resolves
inside the sender's host space.

An :class:`Envelope` is the runtime's unit of transmission: the user
message plus routing metadata (sender, destination, delivery mode, target
port, timestamps).  User payloads are opaque to the runtime.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from .addresses import ActorAddress, MailAddress, SpaceAddress
from .atoms import AttributePath
from .errors import PatternSyntaxError
from .patterns import Pattern, parse_pattern


class Mode(enum.Enum):
    """How a message selects its receiver(s)."""

    DIRECT = "direct"      #: explicit mail address
    SEND = "send"          #: one matching actor, chosen nondeterministically
    BROADCAST = "broadcast"  #: all matching actors


class Port(enum.Enum):
    """The three message ports of an executing actor (paper section 7.2).

    * ``BEHAVIOR`` — carries the actor its next behavior (``become``).
    * ``INVOCATION`` — carries messages sent via ``send``/``broadcast``.
    * ``RPC`` — carries replies to system calls expecting a return value
      (e.g. the address of a newly created actor).
    """

    BEHAVIOR = "behavior"
    INVOCATION = "invocation"
    RPC = "rpc"


class Destination:
    """A ``pattern@space`` destination.

    Parameters
    ----------
    pattern:
        The attribute pattern selecting receivers (text or :class:`Pattern`).
    space:
        Where to resolve the pattern: an explicit :class:`SpaceAddress`, a
        pattern (text/:class:`Pattern`) resolved against the sender's host
        space, or ``None`` meaning "the sender's host space" (paper
        section 7.1: "patterns are resolved inside the sender's host
        actorSpace, unless the pattern explicitly refers to another
        actorSpace").
    """

    __slots__ = ("pattern", "space")

    def __init__(
        self,
        pattern: "Pattern | str | AttributePath",
        space: "SpaceAddress | Pattern | str | None" = None,
    ):
        self.pattern = parse_pattern(pattern)
        if space is None or isinstance(space, (SpaceAddress, Pattern)):
            self.space = space
        elif isinstance(space, (str, AttributePath)):
            self.space = parse_pattern(space)
        else:
            raise PatternSyntaxError(
                repr(space), "space must be a SpaceAddress, pattern, or None"
            )

    def __eq__(self, other):
        if isinstance(other, Destination):
            return self.pattern == other.pattern and self.space == other.space
        return NotImplemented

    def __hash__(self):
        return hash((self.pattern, self.space))

    def __repr__(self):
        at = "" if self.space is None else f"@{self.space}"
        return f"Destination({self.pattern}{at})"


def parse_destination(text: str) -> Destination:
    """Parse ``"pattern@spacepattern"`` or ``"pattern"`` destination text.

    The part after ``@`` (if present) is a pattern naming the target
    actorSpace, resolved in the sender's host space.  To target a space by
    explicit address, construct :class:`Destination` directly.
    """
    if not isinstance(text, str) or not text:
        raise PatternSyntaxError(repr(text), "destination must be non-empty text")
    if "@" in text:
        pat_text, _, space_text = text.partition("@")
        if not pat_text or not space_text:
            raise PatternSyntaxError(text, "both sides of '@' must be non-empty")
        return Destination(pat_text, space_text)
    return Destination(text)


_message_ids = itertools.count()


@dataclass(frozen=True)
class Message:
    """A user-level message.

    ``payload`` is arbitrary application data.  ``reply_to`` optionally
    carries the customer's mail address (the actor idiom for returning
    answers).  ``headers`` carries application metadata; the runtime never
    inspects it.
    """

    payload: Any
    reply_to: ActorAddress | None = None
    headers: dict = field(default_factory=dict)
    message_id: int = field(default_factory=lambda: next(_message_ids))

    def __repr__(self):
        return f"Message(#{self.message_id}, {self.payload!r})"


_envelope_ids = itertools.count()


@dataclass
class Envelope:
    """The runtime's unit of transmission: message + routing metadata.

    Attributes
    ----------
    message: the user message being carried.
    sender: mail address of the sending actor (``None`` for external input).
    mode: :class:`Mode` — direct, send, or broadcast.
    target: explicit receiver address for ``DIRECT`` envelopes.
    destination: the ``pattern@space`` for pattern-addressed envelopes.
    port: which actor port the message is for.
    sent_at: virtual time the envelope entered the system.
    delivered_at: virtual time of delivery (set by the scheduler).
    trace: list of node hops, appended by the routing layer (used by the
        locality experiments to count LAN vs WAN hops).
    origin_space: the host space of the sender, for relative resolution.
    trace_id: the root envelope of this envelope's causal tree.  A fresh
        envelope roots its own tree (``trace_id == envelope_id``); an
        envelope created while processing another (a reply, a fan-out
        clone) inherits the cause's ``trace_id``.
    parent_id: the envelope whose processing created this one (``None``
        for causal roots).  The flight recorder follows these links to
        reconstruct end-to-end message histories.
    """

    message: Message
    sender: ActorAddress | None
    mode: Mode
    target: MailAddress | None = None
    destination: Destination | None = None
    port: Port = Port.INVOCATION
    sent_at: float = 0.0
    delivered_at: float | None = None
    trace: list[int] = field(default_factory=list)
    origin_space: SpaceAddress | None = None
    envelope_id: int = field(default_factory=lambda: next(_envelope_ids))
    trace_id: int | None = None
    parent_id: int | None = None

    def __post_init__(self):
        if self.trace_id is None:
            self.trace_id = self.envelope_id

    def hop(self, node: int) -> None:
        """Record passage through ``node`` (routing bookkeeping)."""
        self.trace.append(node)

    def clone_for(self, target: MailAddress) -> "Envelope":
        """A per-receiver copy of a broadcast envelope.

        Broadcast fan-out happens at resolution time; each receiver gets
        its own envelope so per-receiver delivery times and traces stay
        independent.  The clone joins the original's causal tree with
        the original as its parent.
        """
        return Envelope(
            message=self.message,
            sender=self.sender,
            mode=self.mode,
            target=target,
            destination=self.destination,
            port=self.port,
            sent_at=self.sent_at,
            trace=list(self.trace),
            origin_space=self.origin_space,
            trace_id=self.trace_id,
            parent_id=self.envelope_id,
        )

    def __repr__(self):
        where = self.target if self.target is not None else self.destination
        return f"<Envelope #{self.envelope_id} {self.mode.value} -> {where!r}>"
