"""Atoms and attribute paths.

The prototype described in section 7.1 of the paper represents attributes as
*concatenations of atoms*, combined with a special ``/`` operator "much as
is the case with file names in a conventional file-system such as ... the
UNIX file-system".  This module provides that representation:

* an **atom** is a non-empty string that contains none of the reserved
  pattern metacharacters;
* an :class:`AttributePath` is an immutable sequence of atoms, rendered as
  ``atom/atom/...``;
* paths compose with ``/`` (:meth:`AttributePath.__truediv__`), which is how
  the attributes of nested actorSpaces combine with the attributes of the
  actors visible inside them to form *structured attributes*.

Attribute paths are pure values: hashable, ordered, and free of any
reference to the runtime, so they can be stored in registries, carried in
messages, and used as dictionary keys.
"""

from __future__ import annotations

import sys
from functools import total_ordering
from typing import Iterable, Iterator

from .errors import AttributeSyntaxError

#: Characters that may never appear inside an atom.  ``/`` is the path
#: separator; the rest are pattern metacharacters (see ``patterns.py``)
#: reserved so that any attribute path is also a valid (self-matching)
#: pattern.
RESERVED_CHARS = frozenset("/*?[]{}~ \t\n")


def is_valid_atom(text: str) -> bool:
    """Return ``True`` when ``text`` may be used as an attribute atom."""
    if not isinstance(text, str) or not text:
        return False
    return not any(ch in RESERVED_CHARS for ch in text)


def check_atom(text: str) -> str:
    """Validate ``text`` as an atom, returning its interned form.

    Atoms are interned (:func:`sys.intern`) so that the many places that
    compare or hash them — the per-registry first-atom index, the shard
    map's ``owner_of``, dict keys throughout resolution — hit CPython's
    pointer-equality fast path instead of character comparison.  Two
    paths parsed from equal text therefore share one atom object.

    Raises
    ------
    AttributeSyntaxError
        If ``text`` is empty or contains a reserved character.
    """
    if not isinstance(text, str):
        raise AttributeSyntaxError(f"atom must be a string, got {type(text).__name__}")
    if not text:
        raise AttributeSyntaxError("atom must be non-empty")
    bad = sorted(set(text) & RESERVED_CHARS)
    if bad:
        raise AttributeSyntaxError(f"atom {text!r} contains reserved characters {bad}")
    return sys.intern(text)


@total_ordering
class AttributePath:
    """An immutable path of atoms, e.g. ``services/print/color``.

    Instances may be built from a ``/``-separated string, from an iterable
    of atoms, or by joining existing paths with the ``/`` operator::

        AttributePath("services/print")
        AttributePath(["services", "print"])
        AttributePath("services") / "print"

    The empty path (``AttributePath(())``) is permitted as an identity for
    ``/`` — it arises when a space with no attribute prefix contributes
    nothing to a structured attribute — but cannot be produced from a
    string (the empty string is rejected, as are leading/trailing slashes).
    """

    __slots__ = ("_atoms", "_hash")

    def __init__(self, source: "AttributePath | str | Iterable[str]" = ()):
        if isinstance(source, AttributePath):
            atoms = source._atoms
        elif isinstance(source, str):
            if not source:
                raise AttributeSyntaxError("attribute path must be non-empty")
            atoms = tuple(check_atom(part) for part in source.split("/"))
        else:
            atoms = tuple(check_atom(part) for part in source)
        self._atoms: tuple[str, ...] = atoms
        self._hash = hash(atoms)

    # -- value semantics ----------------------------------------------------

    @property
    def atoms(self) -> tuple[str, ...]:
        """The atoms of this path, in order."""
        return self._atoms

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self) -> Iterator[str]:
        return iter(self._atoms)

    def __getitem__(self, index):
        result = self._atoms[index]
        if isinstance(index, slice):
            return AttributePath(result)
        return result

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if isinstance(other, AttributePath):
            return self._atoms == other._atoms
        if isinstance(other, str):
            try:
                return self._atoms == AttributePath(other)._atoms
            except AttributeSyntaxError:
                return False
        return NotImplemented

    def __lt__(self, other) -> bool:
        if isinstance(other, AttributePath):
            return self._atoms < other._atoms
        return NotImplemented

    def __str__(self) -> str:
        return "/".join(self._atoms)

    def __repr__(self) -> str:
        return f"AttributePath({str(self)!r})"

    def __bool__(self) -> bool:
        return bool(self._atoms)

    # -- path algebra ---------------------------------------------------------

    def __truediv__(self, other: "AttributePath | str") -> "AttributePath":
        """Concatenate two paths: the structured-attribute combinator ``/``."""
        if isinstance(other, str):
            other = AttributePath(other)
        if not isinstance(other, AttributePath):
            return NotImplemented
        return AttributePath(self._atoms + other._atoms)

    def startswith(self, prefix: "AttributePath | str") -> bool:
        """Return ``True`` when ``prefix`` is a (non-strict) prefix of this path."""
        if isinstance(prefix, str):
            prefix = AttributePath(prefix)
        n = len(prefix._atoms)
        return self._atoms[:n] == prefix._atoms

    def relative_to(self, prefix: "AttributePath | str") -> "AttributePath":
        """Strip ``prefix`` from this path.

        Raises
        ------
        ValueError
            If ``prefix`` is not actually a prefix of this path.
        """
        if isinstance(prefix, str):
            prefix = AttributePath(prefix)
        if not self.startswith(prefix):
            raise ValueError(f"{self!r} does not start with {prefix!r}")
        return AttributePath(self._atoms[len(prefix._atoms):])

    @property
    def parent(self) -> "AttributePath":
        """The path with the final atom removed (empty path for length-1 paths)."""
        return AttributePath(self._atoms[:-1])

    @property
    def name(self) -> str:
        """The final atom of the path.

        Raises
        ------
        IndexError
            If the path is empty.
        """
        return self._atoms[-1]


#: The empty attribute path — identity element of ``/``.
EMPTY_PATH = AttributePath(())


def as_path(value: "AttributePath | str | Iterable[str]") -> AttributePath:
    """Coerce ``value`` to an :class:`AttributePath` (idempotent)."""
    if isinstance(value, AttributePath):
        return value
    return AttributePath(value)


def as_paths(values) -> frozenset[AttributePath]:
    """Coerce a single attribute or an iterable of attributes to a frozenset.

    Actors may be registered under several attributes at once (a property
    list in the sense of section 5 of the paper); this helper normalises the
    common call shapes::

        as_paths("a/b")              -> {AttributePath("a/b")}
        as_paths(["a/b", "c"])       -> {AttributePath("a/b"), AttributePath("c")}
        as_paths(AttributePath("a")) -> {AttributePath("a")}
    """
    if isinstance(values, (AttributePath, str)):
        return frozenset({as_path(values)})
    return frozenset(as_path(v) for v in values)
