"""Customizable actorSpace managers.

"Corresponding to each actorSpace is a manager who validates capabilities
and enforces visibility changes.  Although we describe default policies
for actorSpaces, further customization may be obtained by manipulating
managers" (paper section 5).  Managers are the paradigm's extension point:
section 5.6 varies the semantics of unmatched sends/broadcasts, section
5.7 the cycle-handling strategy, and section 8 proposes replacing the
indeterminate choice of ``send`` with programmable arbitration.  All three
dimensions are policy knobs on :class:`SpaceManager`.

The manager itself is pure policy: it holds no message queues.  The node
coordinator asks it what to do and performs the mechanics (suspension
queues, delivery records, etc.), keeping the manager trivially
replicable across coordinator replicas.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from .addresses import ActorAddress, SpaceAddress
from .errors import NoMatchError
from .messages import Envelope


class UnmatchedPolicy(enum.Enum):
    """What to do with a ``send``/``broadcast`` whose pattern matches nobody.

    Section 5.6 enumerates the admissible semantics; ``SUSPEND`` is the
    paper's (and our) default: "in our current implementation, send and
    broadcast messages are suspended until at least one actor arrives
    whose attribute matches the pattern".
    """

    SUSPEND = "suspend"      #: hold until a matching actor appears
    DISCARD = "discard"      #: silently drop
    ERROR = "error"          #: raise at the sender (forces synchronization)
    PERSISTENT = "persistent"  #: broadcasts delivered to future matches exactly once


class CyclePolicy(enum.Enum):
    """How to defend against visibility/forwarding cycles (section 5.7)."""

    DAG_CHECK = "dag-check"  #: refuse make_visible that closes a cycle (default)
    TAGGING = "tagging"      #: allow, but tag messages and trap repeats at routing


class Arbitration(enum.Enum):
    """How ``send`` picks one receiver from the matching group.

    ``RANDOM`` is the paper's "indeterminate choice"; the alternatives are
    the customized arbitration mechanisms section 8 calls for, and they
    are ablated in experiment E2.
    """

    RANDOM = "random"          #: uniform over the group
    ROUND_ROBIN = "round-robin"  #: cycle deterministically through members
    LEAST_LOADED = "least-loaded"  #: member with fewest queued messages


class SpaceManager:
    """Policy bundle for one actorSpace.

    Parameters
    ----------
    unmatched:
        Policy for pattern messages with an empty receiver group.
    cycles:
        Cycle-defense strategy for this space's visibility operations.
    arbitration:
        Receiver-selection rule for ``send``.
    max_forward_hops:
        For ``CyclePolicy.TAGGING``: messages whose routing trace exceeds
        this many hops through the same space are dropped as cycling.
    """

    __slots__ = ("unmatched", "cycles", "arbitration", "max_forward_hops", "_rr_state")

    def __init__(
        self,
        unmatched: UnmatchedPolicy = UnmatchedPolicy.SUSPEND,
        cycles: CyclePolicy = CyclePolicy.DAG_CHECK,
        arbitration: Arbitration = Arbitration.RANDOM,
        max_forward_hops: int = 64,
    ):
        self.unmatched = unmatched
        self.cycles = cycles
        self.arbitration = arbitration
        self.max_forward_hops = max_forward_hops
        self._rr_state = 0

    # -- arbitration ------------------------------------------------------------

    def choose_receiver(
        self,
        candidates: Sequence[ActorAddress],
        rng: np.random.Generator,
        load_of=None,
    ) -> ActorAddress:
        """Pick one receiver for a ``send`` from a non-empty group.

        ``load_of`` is a callable ``address -> int`` giving current queue
        depth, required for ``LEAST_LOADED``.
        """
        if not candidates:
            raise ValueError("choose_receiver requires a non-empty group")
        ordered = sorted(candidates)  # determinism: set iteration order varies
        if len(ordered) == 1:
            return ordered[0]
        if self.arbitration is Arbitration.RANDOM:
            return ordered[int(rng.integers(0, len(ordered)))]
        if self.arbitration is Arbitration.ROUND_ROBIN:
            choice = ordered[self._rr_state % len(ordered)]
            self._rr_state += 1
            return choice
        if self.arbitration is Arbitration.LEAST_LOADED:
            if load_of is None:
                raise ValueError("LEAST_LOADED arbitration needs a load_of callable")
            return min(ordered, key=lambda a: (load_of(a), a))
        raise AssertionError(f"unhandled arbitration {self.arbitration}")

    # -- unmatched messages ---------------------------------------------------------

    def on_unmatched(self, envelope: Envelope, space: SpaceAddress) -> str:
        """Decide the fate of an unmatched pattern message.

        Returns one of ``"suspend"``, ``"discard"``, ``"persist"``; raises
        :class:`NoMatchError` under the ``ERROR`` policy.  (``PERSISTENT``
        only distinguishes broadcasts; an unmatched *send* under that
        policy suspends, since exactly-one-of-a-future-group is what
        suspension already provides.)
        """
        if self.unmatched is UnmatchedPolicy.ERROR:
            raise NoMatchError(envelope.destination)
        if self.unmatched is UnmatchedPolicy.DISCARD:
            return "discard"
        if self.unmatched is UnmatchedPolicy.PERSISTENT:
            from .messages import Mode

            return "persist" if envelope.mode is Mode.BROADCAST else "suspend"
        return "suspend"

    @property
    def check_cycles(self) -> bool:
        """True when make_visible must run the DAG check."""
        return self.cycles is CyclePolicy.DAG_CHECK

    def trap_cycling(self, envelope: Envelope) -> bool:
        """Tagging strategy: is this envelope looping?  (Routing-time check.)"""
        if self.cycles is not CyclePolicy.TAGGING:
            return False
        return len(envelope.trace) > self.max_forward_hops

    def __repr__(self):
        return (
            f"<SpaceManager unmatched={self.unmatched.value} "
            f"cycles={self.cycles.value} arbitration={self.arbitration.value}>"
        )


#: Managers used when a space is created without an explicit one.
def default_manager() -> SpaceManager:
    """A fresh manager with the paper's default policies."""
    return SpaceManager()
