"""Per-actor mailboxes with the prototype's three ports.

Section 7.2: "The executing actors are supplied with three different
message ports, each of which has a different purpose.  The Behavior-port
is used for sending the actor its next behavior.  The Invocation-port is
used for sending the actor any messages sent to it using send or
broadcast.  The RPC-port is used when an actor performs a system call
that expects a return value."

The mailbox preserves arrival order *within* a port (the runtime's
scheduler is what makes cross-message arrival order nondeterministic, by
delivering with randomized latencies).  Behavior messages take priority
over invocations: an actor must install its next behavior before it can
meaningfully process the next invocation — this implements the actor
model's rule that ``become`` determines the behavior used for the *next*
message.  RPC replies are matched by request id rather than drained in
order, because an actor may have several system calls outstanding.

Overload protection: a mailbox may be constructed with a ``capacity``
bound on the INVOCATION port, plus a :class:`ShedPolicy` that decides
what happens to the overflow.  The BEHAVIOR and RPC ports are exempt —
behavior installs are control traffic an actor cannot make progress
without, and RPC replies answer system calls that are already holding
resources; shedding either would wedge the actor, not protect it.
``deliver`` returns the envelopes it shed (normally empty) so the
runtime can route them into dead-letter accounting instead of letting
them vanish.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any

from .errors import MailboxClosedError
from .messages import Envelope, Port

#: Capacity used when a runtime asks for "bounded but roomy" mailboxes
#: (e.g. conformance runs): far above any conformance trace, so the
#: bound never changes observable behavior, but a runaway producer hits
#: a wall instead of exhausting memory.
DEFAULT_MAILBOX_CAPACITY = 1024


class ShedPolicy(enum.Enum):
    """What a full invocation port does with the overflow.

    * ``DROP_OLDEST`` — evict the head of the queue to admit the new
      arrival (freshest-wins; bounded staleness for admitted traffic).
    * ``DROP_NEWEST`` — refuse the new arrival (oldest-wins; admitted
      traffic is exactly the earliest ``capacity`` envelopes).
    * ``SUSPEND_SENDER`` — defer the new arrival in a bounded side
      stash that drains back into the invocation port as the actor
      catches up; the sender's traffic is absorbed with delay rather
      than dropped.  Only once the stash itself is full does the oldest
      stashed envelope shed.
    """

    DROP_OLDEST = "drop-oldest"
    DROP_NEWEST = "drop-newest"
    SUSPEND_SENDER = "suspend-sender"

    @classmethod
    def parse(cls, value: "ShedPolicy | str") -> "ShedPolicy":
        if isinstance(value, cls):
            return value
        for policy in cls:
            if policy.value == value:
                return policy
        raise ValueError(
            f"unknown shed policy {value!r}; "
            f"expected one of {[p.value for p in cls]}")


class Mailbox:
    """Three-port message queue for one executing actor."""

    __slots__ = ("_behavior", "_invocation", "_rpc", "_stash", "_closed",
                 "_pending", "capacity", "shed_policy",
                 "delivered_count", "rpc_collisions", "shed_count")

    def __init__(self, capacity: int | None = None,
                 shed_policy: ShedPolicy | str = ShedPolicy.DROP_OLDEST):
        self._behavior: deque[Envelope] = deque()
        self._invocation: deque[Envelope] = deque()
        #: rpc_id -> FIFO of replies.  Two replies sharing an id must both
        #: survive: overwriting would lose one and deadlock whichever
        #: system call is still waiting on it.
        self._rpc: dict[Any, deque[Envelope]] = {}
        #: SUSPEND_SENDER overflow, promoted back as the actor drains.
        self._stash: deque[Envelope] = deque()
        self._closed = False
        #: Maintained count of envelopes waiting on any port (including
        #: the stash).  Kept in lockstep by deliver/next_ready/take_rpc/
        #: close so :attr:`pending` is O(1) — it sits on the admission
        #: hot path now.
        self._pending = 0
        #: INVOCATION-port bound; ``None`` = unbounded (legacy behavior).
        self.capacity = capacity
        self.shed_policy = ShedPolicy.parse(shed_policy)
        #: Total envelopes ever enqueued (accounting for fairness tests).
        self.delivered_count = 0
        #: RPC replies that arrived while another reply with the same id
        #: was still pending (each one queued, none dropped).
        self.rpc_collisions = 0
        #: Envelopes this mailbox has shed (returned from deliver).
        self.shed_count = 0

    # -- enqueue ---------------------------------------------------------------

    def deliver(self, envelope: Envelope) -> list[Envelope]:
        """Enqueue ``envelope`` on the port it names.

        Returns the envelopes shed to make room (empty unless the
        mailbox is bounded and the invocation port overflowed).  The
        offered envelope itself appears in the result when the policy
        refused it.

        Raises
        ------
        MailboxClosedError
            If the actor has terminated.
        """
        if self._closed:
            raise MailboxClosedError(f"mailbox closed; dropped {envelope!r}")
        if envelope.port is Port.BEHAVIOR:
            self._behavior.append(envelope)
        elif envelope.port is Port.RPC:
            key = envelope.message.headers.get("rpc_id", envelope.envelope_id)
            queue = self._rpc.get(key)
            if queue is None:
                self._rpc[key] = deque((envelope,))
            else:
                queue.append(envelope)
                self.rpc_collisions += 1
        else:
            if (self.capacity is not None
                    and len(self._invocation) >= self.capacity):
                return self._overflow(envelope)
            self._invocation.append(envelope)
        self.delivered_count += 1
        self._pending += 1
        return []

    def _overflow(self, envelope: Envelope) -> list[Envelope]:
        """Apply the shed policy to a full invocation port."""
        policy = self.shed_policy
        if policy is ShedPolicy.DROP_NEWEST:
            self.shed_count += 1
            return [envelope]
        if policy is ShedPolicy.DROP_OLDEST:
            victim = self._invocation.popleft()
            self._invocation.append(envelope)
            self.delivered_count += 1
            self.shed_count += 1
            return [victim]
        # SUSPEND_SENDER: absorb into the stash; shed its head only when
        # the stash itself is at capacity.
        shed: list[Envelope] = []
        if len(self._stash) >= (self.capacity or 0):
            shed.append(self._stash.popleft())
            self._pending -= 1
            self.shed_count += 1
        self._stash.append(envelope)
        self.delivered_count += 1
        self._pending += 1
        return shed

    def _promote(self) -> None:
        """Refill the invocation port from the stash as room opens."""
        if not self._stash:
            return
        capacity = self.capacity if self.capacity is not None else len(
            self._stash) + len(self._invocation)
        while self._stash and len(self._invocation) < capacity:
            self._invocation.append(self._stash.popleft())

    # -- dequeue -----------------------------------------------------------------

    def next_ready(self) -> Envelope | None:
        """Dequeue the next processable envelope, or ``None`` if idle.

        Behavior messages outrank invocations; RPC replies are not
        returned here (they are claimed by :meth:`take_rpc`).
        """
        if self._behavior:
            self._pending -= 1
            return self._behavior.popleft()
        if self._invocation:
            self._pending -= 1
            envelope = self._invocation.popleft()
            self._promote()
            return envelope
        return None

    def take_rpc(self, rpc_id: Any) -> Envelope | None:
        """Claim the oldest RPC reply for ``rpc_id`` if one has arrived."""
        queue = self._rpc.get(rpc_id)
        if queue is None:
            return None
        envelope = queue.popleft()
        if not queue:
            del self._rpc[rpc_id]
        self._pending -= 1
        return envelope

    # -- state ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of envelopes waiting on any port (O(1))."""
        return self._pending

    @property
    def suspended(self) -> int:
        """Envelopes deferred in the SUSPEND_SENDER stash."""
        return len(self._stash)

    @property
    def is_empty(self) -> bool:
        return self._pending == 0

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> list[Envelope]:
        """Close the mailbox; return any still-queued mail.

        Callers own the leftovers: the runtime routes them into
        dead-letter accounting so terminated-actor mail is counted,
        never silently vanished.
        """
        self._closed = True
        leftovers = list(self._behavior) + list(self._invocation) \
            + list(self._stash)
        for queue in self._rpc.values():
            leftovers.extend(queue)
        self._behavior.clear()
        self._invocation.clear()
        self._stash.clear()
        self._rpc.clear()
        self._pending = 0
        return leftovers

    def __repr__(self):
        state = "closed" if self._closed else f"{self.pending} pending"
        return f"<Mailbox {state}>"
