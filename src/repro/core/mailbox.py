"""Per-actor mailboxes with the prototype's three ports.

Section 7.2: "The executing actors are supplied with three different
message ports, each of which has a different purpose.  The Behavior-port
is used for sending the actor its next behavior.  The Invocation-port is
used for sending the actor any messages sent to it using send or
broadcast.  The RPC-port is used when an actor performs a system call
that expects a return value."

The mailbox preserves arrival order *within* a port (the runtime's
scheduler is what makes cross-message arrival order nondeterministic, by
delivering with randomized latencies).  Behavior messages take priority
over invocations: an actor must install its next behavior before it can
meaningfully process the next invocation — this implements the actor
model's rule that ``become`` determines the behavior used for the *next*
message.  RPC replies are matched by request id rather than drained in
order, because an actor may have several system calls outstanding.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from .errors import MailboxClosedError
from .messages import Envelope, Port


class Mailbox:
    """Three-port message queue for one executing actor."""

    __slots__ = ("_behavior", "_invocation", "_rpc", "_closed",
                 "delivered_count", "rpc_collisions")

    def __init__(self):
        self._behavior: deque[Envelope] = deque()
        self._invocation: deque[Envelope] = deque()
        #: rpc_id -> FIFO of replies.  Two replies sharing an id must both
        #: survive: overwriting would lose one and deadlock whichever
        #: system call is still waiting on it.
        self._rpc: dict[Any, deque[Envelope]] = {}
        self._closed = False
        #: Total envelopes ever enqueued (accounting for fairness tests).
        self.delivered_count = 0
        #: RPC replies that arrived while another reply with the same id
        #: was still pending (each one queued, none dropped).
        self.rpc_collisions = 0

    # -- enqueue ---------------------------------------------------------------

    def deliver(self, envelope: Envelope) -> None:
        """Enqueue ``envelope`` on the port it names.

        Raises
        ------
        MailboxClosedError
            If the actor has terminated.
        """
        if self._closed:
            raise MailboxClosedError(f"mailbox closed; dropped {envelope!r}")
        self.delivered_count += 1
        if envelope.port is Port.BEHAVIOR:
            self._behavior.append(envelope)
        elif envelope.port is Port.RPC:
            key = envelope.message.headers.get("rpc_id", envelope.envelope_id)
            queue = self._rpc.get(key)
            if queue is None:
                self._rpc[key] = deque((envelope,))
            else:
                queue.append(envelope)
                self.rpc_collisions += 1
        else:
            self._invocation.append(envelope)

    # -- dequeue -----------------------------------------------------------------

    def next_ready(self) -> Envelope | None:
        """Dequeue the next processable envelope, or ``None`` if idle.

        Behavior messages outrank invocations; RPC replies are not
        returned here (they are claimed by :meth:`take_rpc`).
        """
        if self._behavior:
            return self._behavior.popleft()
        if self._invocation:
            return self._invocation.popleft()
        return None

    def take_rpc(self, rpc_id: Any) -> Envelope | None:
        """Claim the oldest RPC reply for ``rpc_id`` if one has arrived."""
        queue = self._rpc.get(rpc_id)
        if queue is None:
            return None
        envelope = queue.popleft()
        if not queue:
            del self._rpc[rpc_id]
        return envelope

    # -- state ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of envelopes waiting on any port."""
        return (
            len(self._behavior)
            + len(self._invocation)
            + sum(len(q) for q in self._rpc.values())
        )

    @property
    def is_empty(self) -> bool:
        return self.pending == 0

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> list[Envelope]:
        """Close the mailbox; return (and discard) any still-queued mail."""
        self._closed = True
        leftovers = list(self._behavior) + list(self._invocation)
        for queue in self._rpc.values():
            leftovers.extend(queue)
        self._behavior.clear()
        self._invocation.clear()
        self._rpc.clear()
        return leftovers

    def __repr__(self):
        state = "closed" if self._closed else f"{self.pending} pending"
        return f"<Mailbox {state}>"
