"""Error taxonomy for the ActorSpace reproduction.

Every exception raised by the library derives from :class:`ActorSpaceError`
so applications can catch paradigm-level failures with a single handler
while letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ActorSpaceError(Exception):
    """Base class for all errors raised by the ActorSpace runtime."""


class PatternSyntaxError(ActorSpaceError):
    """A destination pattern could not be parsed.

    Attributes
    ----------
    text:
        The offending pattern text.
    position:
        Character offset of the first unparsable token, or ``None``.
    """

    def __init__(self, text: str, reason: str, position: int | None = None):
        self.text = text
        self.reason = reason
        self.position = position
        where = f" at position {position}" if position is not None else ""
        super().__init__(f"bad pattern {text!r}{where}: {reason}")


class AttributeSyntaxError(ActorSpaceError):
    """An attribute path was malformed (empty atom, illegal character...)."""


class CapabilityError(ActorSpaceError):
    """A privileged operation was attempted with a missing or wrong capability."""


class VisibilityCycleError(ActorSpaceError):
    """A ``make_visible`` would create a cycle in the space-visibility DAG.

    The paper (section 5.7) forbids an actorSpace from being made visible
    in itself, directly or transitively, because a broadcast matching the
    space's own attributes would generate unboundedly many messages.
    """

    def __init__(self, space: object, target: object, path: tuple | None = None):
        self.space = space
        self.target = target
        self.path = path
        super().__init__(
            f"making {space!r} visible in {target!r} would create a visibility cycle"
            + (f" via {path!r}" if path else "")
        )


class NotASpaceError(ActorSpaceError):
    """A space-only operation was applied to an actor mail address.

    The prototype maintains type information distinguishing actor mail
    addresses from actorSpace mail addresses (paper section 5.7) precisely so
    that this error can be raised instead of sending bookkeeping messages
    to an encapsulated actor.
    """


class NotAnActorError(ActorSpaceError):
    """An actor-only operation was applied to an actorSpace mail address."""


class UnknownAddressError(ActorSpaceError):
    """A mail address does not denote any live actor or actorSpace."""


class SpaceDestroyedError(ActorSpaceError):
    """An operation referenced an actorSpace that has been destroyed.

    The prototype provides explicit destruction of actorSpaces because the
    globally visible root makes automatic collection of top-level spaces
    infeasible (paper section 7.1).
    """


class NoMatchError(ActorSpaceError):
    """Raised by managers whose unmatched-message policy is ``ERROR``.

    Section 5.6 lists treating an unmatched pattern send as an error as one
    admissible semantics; the default policy instead suspends the message.
    """

    def __init__(self, destination: object):
        self.destination = destination
        super().__init__(f"no visible actor matches {destination!r}")


class MailboxClosedError(ActorSpaceError):
    """A message was enqueued to an actor that has terminated."""


class DeadActorError(ActorSpaceError):
    """A direct send targeted an actor that has been garbage collected."""


class InterpreterError(ActorSpaceError):
    """Base class for errors from the behavior-script interpreter."""


class InterpreterSyntaxError(InterpreterError):
    """The behavior script could not be parsed."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        loc = f" (line {line}, col {col})" if line is not None else ""
        super().__init__(f"{message}{loc}")


class InterpreterRuntimeError(InterpreterError):
    """The behavior script failed during evaluation."""


class TransportError(ActorSpaceError):
    """A transport failed to deliver a payload (used by failure injection)."""


class NodeDownError(TransportError):
    """The destination node has crashed."""
