"""Capabilities: unforgeable keys for secure visibility control.

Section 5.4 of the paper: "Capabilities are unforgeable unique keys that
can only be created by calling the underlying system with the primitive
``new_capability()``.  Capabilities can be stored, compared, copied and,
in some systems, communicated in messages.  When creating an actor or an
actorSpace, a capability may be bound to it, and only if this capability
is presented, may an actor's visibility be changed.  A capability may also
be bound to more than one actor or actorSpace."

Design notes
------------
* A :class:`Capability` is a value wrapping a 128-bit token.  Equality and
  hashing are by token, so capabilities can be copied, stored in messages,
  and compared — exactly the operations the paper lists.
* Unforgeability is enforced at the *issuer*: tokens come only from a
  :class:`CapabilityIssuer`, which draws them from a seeded RNG stream
  that applications have no other access to.  Constructing a
  ``Capability`` by guessing a token is possible in Python (nothing stops
  ``Capability(n)``) but useless: the chance of colliding with an issued
  token is 2^-128 per guess, the same guarantee a real distributed system
  provides.  Tests exercise exactly this property.
* The issuer is deterministic given its seed, keeping whole-system runs
  reproducible, while remaining unpredictable to code that does not hold
  the issuer.
"""

from __future__ import annotations

import numpy as np


class Capability:
    """An unforgeable key (see module docstring).

    Do not instantiate directly in application code; call
    :meth:`CapabilityIssuer.new_capability` (exposed as
    ``system.new_capability()`` on the runtime facade).
    """

    __slots__ = ("_token",)

    def __init__(self, token: int):
        if not isinstance(token, int) or token < 0 or token >= 1 << 128:
            raise ValueError("capability token must be a 128-bit non-negative integer")
        self._token = token

    @property
    def token(self) -> int:
        """The raw 128-bit token (exposed for serialization)."""
        return self._token

    def __eq__(self, other) -> bool:
        if isinstance(other, Capability):
            return self._token == other._token
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._token)

    def __repr__(self) -> str:
        # Show only a short prefix: full tokens in logs would defeat the
        # point of treating them as secrets.
        return f"<Capability {self._token >> 96:08x}...>"

    def copy(self) -> "Capability":
        """Return an equal capability (capabilities are freely copyable)."""
        return Capability(self._token)


#: Sentinel meaning "no capability required / none presented".
NO_CAPABILITY: Capability | None = None


class CapabilityIssuer:
    """The single source of fresh capability tokens in a system.

    Parameters
    ----------
    rng:
        A ``numpy.random.Generator``.  The issuer consumes draws from it;
        seeding the system seeds the issuer, making runs reproducible.
    """

    __slots__ = ("_rng", "_issued")

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self._issued: set[int] = set()

    def new_capability(self) -> Capability:
        """Mint a fresh, never-before-issued capability."""
        while True:
            # Two 64-bit draws compose a 128-bit token.
            hi = int(self._rng.integers(0, 1 << 63, dtype=np.int64))
            lo = int(self._rng.integers(0, 1 << 63, dtype=np.int64))
            token = (hi << 64) | lo
            if token not in self._issued:
                self._issued.add(token)
                return Capability(token)

    @property
    def issued_count(self) -> int:
        """How many capabilities this issuer has minted (for accounting)."""
        return len(self._issued)

    def was_issued(self, capability: Capability) -> bool:
        """True when ``capability``'s token was minted by this issuer.

        Used by tests to demonstrate unforgeability: independently
        constructed tokens are, with overwhelming probability, not issued.
        """
        return capability.token in self._issued


def authorize(held: Capability | None, required: Capability | None) -> bool:
    """Check a presented capability against a requirement.

    * If ``required`` is ``None`` the resource is unprotected: anything
      (including nothing) is accepted.
    * Otherwise the presented capability must compare equal.
    """
    if required is None:
        return True
    return held is not None and held == required
