"""The description lattice over attribute expressions.

Section 5 of the paper notes that "attributes may be generalized and
specialized through conjunction and disjunction.  Thus attributes may be
embedded in a description lattice" (citing Attardi & Simi's Omega system).
This module provides that algebra:

* :class:`Desc` — an attribute *description*: a positive boolean
  combination (``And`` / ``Or``) of atom-level patterns.
* A description **denotes** the set of attribute paths satisfying it; the
  lattice order is denotation inclusion, approximated syntactically by
  :func:`subsumes` (sound, and complete for the And/Or/literal fragment).
* ``meet`` (conjunction — specialization) and ``join`` (disjunction —
  generalization) with :data:`TOP` (matches everything) and
  :data:`BOTTOM` (matches nothing) as extrema.

The runtime itself registers actors under plain *sets* of attribute paths
(a set acts as the disjunction of its elements when matched by a single
pattern: any one advertised attribute may satisfy the pattern).  The
lattice layer is used by applications that reason about interfaces — for
example the software-repository experiment (E12) stores class interface
descriptions and answers subsumption queries against query descriptions.
"""

from __future__ import annotations

from typing import Iterable

from .atoms import AttributePath, as_path
from .patterns import Pattern, parse_pattern


class Desc:
    """Base class of attribute descriptions.  Instances are immutable."""

    __slots__ = ()

    def satisfied_by(self, attributes: Iterable[AttributePath | str]) -> bool:
        """Does the given set of advertised attribute paths satisfy this description?"""
        paths = [as_path(a) for a in attributes]
        return self._sat(paths)

    def _sat(self, paths: list[AttributePath]) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- algebra -------------------------------------------------------------

    def __and__(self, other: "Desc") -> "Desc":
        return meet(self, other)

    def __or__(self, other: "Desc") -> "Desc":
        return join(self, other)

    def __eq__(self, other):
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self):
        return hash((type(self).__name__, self._key()))

    def _key(self):  # pragma: no cover - abstract
        raise NotImplementedError


class Top(Desc):
    """The top of the lattice: satisfied by any attribute set (even empty)."""

    __slots__ = ()

    def _sat(self, paths):
        return True

    def _key(self):
        return ()

    def __repr__(self):
        return "TOP"


class Bottom(Desc):
    """The bottom of the lattice: satisfied by nothing."""

    __slots__ = ()

    def _sat(self, paths):
        return False

    def _key(self):
        return ()

    def __repr__(self):
        return "BOTTOM"


TOP = Top()
BOTTOM = Bottom()


class Has(Desc):
    """Atomic description: *some advertised attribute matches this pattern*."""

    __slots__ = ("pattern",)

    def __init__(self, pattern: "Pattern | str | AttributePath"):
        object.__setattr__(self, "pattern", parse_pattern(pattern))

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError("Desc values are immutable")

    def _sat(self, paths):
        return any(self.pattern.matches(p) for p in paths)

    def _key(self):
        return self.pattern

    def __repr__(self):
        return f"Has({str(self.pattern)!r})"


class And(Desc):
    """Conjunction — specializes: all operands must be satisfied."""

    __slots__ = ("operands",)

    def __init__(self, operands: Iterable[Desc]):
        object.__setattr__(self, "operands", _flatten(And, operands))

    def __setattr__(self, name, value):
        raise AttributeError("Desc values are immutable")

    def _sat(self, paths):
        return all(op._sat(paths) for op in self.operands)

    def _key(self):
        return self.operands

    def __repr__(self):
        return "And(" + ", ".join(map(repr, self.operands)) + ")"


class Or(Desc):
    """Disjunction — generalizes: any operand satisfied suffices."""

    __slots__ = ("operands",)

    def __init__(self, operands: Iterable[Desc]):
        object.__setattr__(self, "operands", _flatten(Or, operands))

    def __setattr__(self, name, value):
        raise AttributeError("Desc values are immutable")

    def _sat(self, paths):
        return any(op._sat(paths) for op in self.operands)

    def _key(self):
        return self.operands

    def __repr__(self):
        return "Or(" + ", ".join(map(repr, self.operands)) + ")"


def _flatten(cls, operands: Iterable[Desc]) -> frozenset[Desc]:
    """Flatten nested same-kind operands and dedupe (associativity/idempotence)."""
    out: set[Desc] = set()
    for op in operands:
        if not isinstance(op, Desc):
            op = Has(op)  # convenience: strings/patterns lift to Has
        if isinstance(op, cls):
            out.update(op.operands)
        else:
            out.add(op)
    return frozenset(out)


# ---------------------------------------------------------------------------
# Lattice operations
# ---------------------------------------------------------------------------


def meet(*descs: Desc) -> Desc:
    """Greatest lower bound: the conjunction of the given descriptions."""
    ops = [d for d in descs if not isinstance(d, Top)]
    if any(isinstance(d, Bottom) for d in ops):
        return BOTTOM
    if not ops:
        return TOP
    if len(ops) == 1:
        return ops[0]
    return And(ops)


def join(*descs: Desc) -> Desc:
    """Least upper bound: the disjunction of the given descriptions."""
    ops = [d for d in descs if not isinstance(d, Bottom)]
    if any(isinstance(d, Top) for d in ops):
        return TOP
    if not ops:
        return BOTTOM
    if len(ops) == 1:
        return ops[0]
    return Or(ops)


def subsumes(general: Desc, specific: Desc) -> bool:
    """Sound syntactic test that ``specific`` entails ``general``.

    ``subsumes(g, s)`` is ``True`` only when every attribute set satisfying
    ``s`` also satisfies ``g`` (``s`` lies at or below ``g`` in the
    lattice).  The test is complete on the And/Or/Has fragment with *equal*
    leaf patterns; pattern-level containment is checked only for literal
    patterns (where it is decidable by equality) and the trivial wildcards.
    """
    if isinstance(general, Top) or isinstance(specific, Bottom):
        return True
    if isinstance(specific, Top):
        return isinstance(general, Top) or _leafless_top(general)
    if isinstance(general, Bottom):
        return _leafless_bottom(specific)
    # Disjunction on the specific side: every branch must be subsumed.
    if isinstance(specific, Or):
        return all(subsumes(general, s) for s in specific.operands)
    # Conjunction on the general side: every conjunct must be entailed.
    if isinstance(general, And):
        return all(subsumes(g, specific) for g in general.operands)
    # Conjunction on the specific side: some conjunct suffices.
    if isinstance(specific, And):
        return any(subsumes(general, s) for s in specific.operands)
    # Disjunction on the general side: some branch suffices.
    if isinstance(general, Or):
        return any(subsumes(g, specific) for g in general.operands)
    assert isinstance(general, Has) and isinstance(specific, Has)
    return _pattern_subsumes(general.pattern, specific.pattern)


def _leafless_top(d: Desc) -> bool:
    """True when ``d`` is equivalent to TOP by structure alone."""
    if isinstance(d, Top):
        return True
    if isinstance(d, And):
        return all(_leafless_top(op) for op in d.operands)
    if isinstance(d, Or):
        return any(_leafless_top(op) for op in d.operands)
    return False


def _leafless_bottom(d: Desc) -> bool:
    """True when ``d`` is equivalent to BOTTOM by structure alone."""
    if isinstance(d, Bottom):
        return True
    if isinstance(d, Or):
        return all(_leafless_bottom(op) for op in d.operands)
    if isinstance(d, And):
        return any(_leafless_bottom(op) for op in d.operands)
    return False


def _pattern_subsumes(general: Pattern, specific: Pattern) -> bool:
    """Sound containment check between two leaf patterns.

    Complete when ``specific`` is literal (then it is a membership test);
    otherwise falls back to equality and the universal wildcard.
    """
    if general == specific:
        return True
    if specific.is_literal:
        return general.matches(specific.literal_path)
    # ``**`` matches every attribute path.
    if len(general.matchers) == 1 and general.has_multi:
        return True
    return False
