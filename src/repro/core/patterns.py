"""Destination patterns: regular expressions over atoms.

Section 7.1 of the paper fixes the prototype's pattern representation:
attributes are concatenations of atoms and *patterns are regular
expressions over atoms*, analogous to paths in a UNIX file system.  This
module implements a pattern language with exactly that structure.

A pattern is a ``/``-separated sequence of **atom patterns**.  Each atom
pattern independently constrains one atom of an attribute path, except for
``**`` which absorbs any number of atoms (including zero).  Supported atom
patterns:

``literal``
    Matches exactly that atom (``print`` matches only ``print``).
``*``
    Matches exactly one arbitrary atom.  A bare ``*`` pattern therefore
    "matches any attribute" of length one — this is the wildcard used by
    the paper's process-pool example (``send(*@ProcPool, job, self)``).
``**``
    Matches any sequence of atoms, including the empty sequence.  This is
    the idiom for "anything visible here, at any nesting depth".
``glob``
    An atom containing ``*``, ``?``, ``[...]`` or ``{a,b}`` is a glob over
    the characters of a single atom (``node-?``, ``ver-[0-9]``,
    ``{gif,png}``).
``~regex``
    An atom beginning with ``~`` is a raw (anchored) Python regular
    expression over a single atom — the fully general "regular expression
    over atoms" of the paper.

Patterns are immutable values.  :meth:`Pattern.matches` tests a single
:class:`~repro.core.atoms.AttributePath`; scoped resolution against a whole
actorSpace (including descent into visible nested spaces) lives in
``matching.py``.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

from .atoms import AttributePath, as_path
from .errors import PatternSyntaxError

# ---------------------------------------------------------------------------
# Atom matchers
# ---------------------------------------------------------------------------


class AtomMatcher:
    """Base class for single-atom matchers.  Subclasses are values."""

    __slots__ = ()

    #: True when the matcher accepts any atom whatsoever.
    is_wild = False

    def matches(self, atom: str) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def __eq__(self, other):
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self):
        return hash((type(self).__name__, self._key()))

    def _key(self):  # pragma: no cover - abstract
        raise NotImplementedError


class LiteralAtom(AtomMatcher):
    """Matches one specific atom."""

    __slots__ = ("text",)

    def __init__(self, text: str):
        self.text = text

    def matches(self, atom: str) -> bool:
        return atom == self.text

    def _key(self):
        return self.text

    def __repr__(self):
        return f"LiteralAtom({self.text!r})"

    def __str__(self):
        return self.text


class AnyAtom(AtomMatcher):
    """``*`` — matches exactly one arbitrary atom."""

    __slots__ = ()
    is_wild = True

    def matches(self, atom: str) -> bool:
        return True

    def _key(self):
        return ()

    def __repr__(self):
        return "AnyAtom()"

    def __str__(self):
        return "*"


class AnySequence(AtomMatcher):
    """``**`` — matches any run of atoms, including none.

    This matcher is special-cased by the path-matching algorithm; its
    :meth:`matches` accepts any single atom so generic code treating it as
    a one-atom wildcard stays safe.
    """

    __slots__ = ()
    is_wild = True

    def matches(self, atom: str) -> bool:
        return True

    def _key(self):
        return ()

    def __repr__(self):
        return "AnySequence()"

    def __str__(self):
        return "**"


class RegexAtom(AtomMatcher):
    """A regular expression anchored over a single atom."""

    __slots__ = ("source", "_compiled")

    def __init__(self, source: str):
        self.source = source
        try:
            self._compiled = re.compile(source)
        except re.error as exc:
            raise PatternSyntaxError(source, f"bad regex: {exc}") from exc

    def matches(self, atom: str) -> bool:
        return self._compiled.fullmatch(atom) is not None

    def _key(self):
        return self.source

    def __repr__(self):
        return f"RegexAtom({self.source!r})"

    def __str__(self):
        return f"~{self.source}"


_GLOB_CHARS = frozenset("*?[]{}")


def _glob_to_regex(glob: str) -> str:
    """Translate a single-atom glob to an anchored regex source string.

    Supports ``*`` (any run of characters), ``?`` (one character),
    ``[...]`` character classes (with leading ``!`` or ``^`` negation) and
    ``{a,b,...}`` alternation.  Braces do not nest.
    """
    out: list[str] = []
    i, n = 0, len(glob)
    while i < n:
        ch = glob[i]
        if ch == "*":
            out.append("[^/]*")
            i += 1
        elif ch == "?":
            out.append("[^/]")
            i += 1
        elif ch == "[":
            j = i + 1
            if j < n and glob[j] in "!^":
                j += 1
            if j < n and glob[j] == "]":  # first ']' is literal
                j += 1
            while j < n and glob[j] != "]":
                j += 1
            if j >= n:
                raise PatternSyntaxError(glob, "unterminated character class", i)
            body = glob[i + 1 : j]
            if body.startswith("!"):
                body = "^" + body[1:]
            out.append(f"[{body}]")
            i = j + 1
        elif ch == "{":
            j = glob.find("}", i)
            if j < 0:
                raise PatternSyntaxError(glob, "unterminated alternation", i)
            alts = glob[i + 1 : j].split(",")
            out.append("(?:" + "|".join(re.escape(a) for a in alts) + ")")
            i = j + 1
        else:
            out.append(re.escape(ch))
            i += 1
    return "".join(out)


def parse_atom_pattern(text: str) -> AtomMatcher:
    """Parse one ``/``-free token into an :class:`AtomMatcher`."""
    if not text:
        raise PatternSyntaxError(text, "empty atom pattern")
    if text == "*":
        return AnyAtom()
    if text == "**":
        return AnySequence()
    if text.startswith("~"):
        return RegexAtom(text[1:])
    if any(c in _GLOB_CHARS for c in text):
        return RegexAtom(_glob_to_regex(text))
    return LiteralAtom(text)


# ---------------------------------------------------------------------------
# Path patterns
# ---------------------------------------------------------------------------


class Pattern:
    """An immutable destination pattern over attribute paths.

    Build one with :func:`parse_pattern` (or pass pattern text anywhere the
    public API accepts a pattern — coercion is automatic).
    """

    __slots__ = ("matchers", "_text", "_hash")

    def __init__(self, matchers: Sequence[AtomMatcher], text: str | None = None):
        self.matchers: tuple[AtomMatcher, ...] = tuple(matchers)
        if not self.matchers:
            raise PatternSyntaxError(text or "", "pattern must have at least one atom")
        self._text = text if text is not None else "/".join(str(m) for m in self.matchers)
        self._hash = hash(self.matchers)

    # -- classification -------------------------------------------------------

    @property
    def is_literal(self) -> bool:
        """True when the pattern contains no wildcards (it names one path)."""
        return all(isinstance(m, LiteralAtom) for m in self.matchers)

    @property
    def literal_path(self) -> AttributePath:
        """The unique path a literal pattern matches.

        Raises
        ------
        ValueError
            If the pattern is not literal.
        """
        if not self.is_literal:
            raise ValueError(f"{self!r} is not a literal pattern")
        return AttributePath([m.text for m in self.matchers])  # type: ignore[union-attr]

    @property
    def literal_prefix(self) -> tuple[str, ...]:
        """The longest run of leading literal atoms (used for indexing)."""
        prefix: list[str] = []
        for m in self.matchers:
            if isinstance(m, LiteralAtom):
                prefix.append(m.text)
            else:
                break
        return tuple(prefix)

    @property
    def min_length(self) -> int:
        """The minimum number of atoms a matching path must have."""
        return sum(0 if isinstance(m, AnySequence) else 1 for m in self.matchers)

    @property
    def has_multi(self) -> bool:
        """True when the pattern contains ``**``."""
        return any(isinstance(m, AnySequence) for m in self.matchers)

    # -- matching ---------------------------------------------------------------

    def matches(self, path: "AttributePath | str") -> bool:
        """Return ``True`` when ``path`` satisfies this pattern."""
        atoms = as_path(path).atoms
        return _match_seq(self.matchers, atoms)

    def matches_prefix(self, path: "AttributePath | str") -> bool:
        """Return ``True`` when ``path`` could be extended to match.

        Used during nested-space descent: if a space is visible under
        attribute prefix ``p`` and the pattern cannot match any extension of
        ``p``, the space need not be searched.
        """
        atoms = as_path(path).atoms if path else ()
        return _match_prefix(self.matchers, atoms)

    def after_prefix(self, path: "AttributePath | str") -> "list[Pattern]":
        """Residual patterns after consuming ``path`` as a prefix.

        Returns every pattern ``r`` such that ``path ++ q`` matches ``self``
        iff ``q`` matches some ``r``.  Multiple residuals arise from ``**``
        (it may absorb any amount of the prefix).  An empty list means the
        prefix cannot begin a match.
        """
        atoms = as_path(path).atoms if path else ()
        residual_suffixes = _residuals(self.matchers, atoms)
        out: list[Pattern] = []
        seen: set[tuple[AtomMatcher, ...]] = set()
        for suffix in residual_suffixes:
            if suffix and suffix not in seen:
                seen.add(suffix)
                out.append(Pattern(suffix))
        return out

    # -- value semantics ----------------------------------------------------------

    def __eq__(self, other):
        if isinstance(other, Pattern):
            return self.matchers == other.matchers
        return NotImplemented

    def __hash__(self):
        return self._hash

    def __str__(self):
        return self._text

    def __repr__(self):
        return f"Pattern({self._text!r})"


def _match_seq(matchers: tuple[AtomMatcher, ...], atoms: tuple[str, ...]) -> bool:
    """Match a matcher sequence against an atom sequence (handles ``**``)."""
    # Iterative two-pointer algorithm with backtracking over the most
    # recent ``**`` — the classic glob algorithm, O(len*len) worst case.
    mi = ai = 0
    star_mi = -1
    star_ai = 0
    nm, na = len(matchers), len(atoms)
    while ai < na:
        if mi < nm and isinstance(matchers[mi], AnySequence):
            star_mi, star_ai = mi, ai
            mi += 1
        elif mi < nm and matchers[mi].matches(atoms[ai]):
            mi += 1
            ai += 1
        elif star_mi >= 0:
            star_ai += 1
            mi, ai = star_mi + 1, star_ai
        else:
            return False
    while mi < nm and isinstance(matchers[mi], AnySequence):
        mi += 1
    return mi == nm


def _match_prefix(matchers: tuple[AtomMatcher, ...], atoms: tuple[str, ...]) -> bool:
    """True when some *strict* extension of ``atoms`` matches ``matchers``.

    Extensions are non-empty because attribute paths contributed by actors
    inside a nested space always have at least one atom.
    """
    return any(suffix for suffix in _residuals(matchers, atoms))


def _residuals(
    matchers: tuple[AtomMatcher, ...], atoms: tuple[str, ...]
) -> list[tuple[AtomMatcher, ...]]:
    """All matcher suffixes reachable after consuming ``atoms`` as a prefix."""
    # Breadth-first over (matcher-index) states; ``**`` induces branching.
    states = {0}
    for atom in atoms:
        next_states: set[int] = set()
        for mi in states:
            j = mi
            # ``**`` may absorb zero atoms: advance past runs of ** lazily.
            while j < len(matchers) and isinstance(matchers[j], AnySequence):
                # Option A: ** absorbs this atom, stay at j.
                next_states.add(j)
                # Option B: ** absorbs nothing, try the next matcher.
                j += 1
            if j < len(matchers) and matchers[j].matches(atom):
                next_states.add(j + 1)
        if not next_states:
            return []
        states = next_states
    return [matchers[mi:] for mi in sorted(states)]


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def parse_pattern(text: "str | Pattern | AttributePath") -> Pattern:
    """Parse pattern text into a :class:`Pattern` (idempotent coercion).

    ``AttributePath`` values become the literal pattern naming that path.
    """
    if isinstance(text, Pattern):
        return text
    if isinstance(text, AttributePath):
        return Pattern([LiteralAtom(a) for a in text.atoms], str(text))
    if not isinstance(text, str):
        raise PatternSyntaxError(repr(text), "pattern must be a string")
    if not text:
        raise PatternSyntaxError(text, "pattern must be non-empty")
    if text.startswith("/") or text.endswith("/"):
        raise PatternSyntaxError(text, "pattern must not begin or end with '/'")
    parts = text.split("/")
    return Pattern([parse_atom_pattern(p) for p in parts], text)


#: Pattern matching any single-atom attribute; the paper's ``*``.
ANY = parse_pattern("*")

#: Pattern matching every attribute at every depth.
ANYWHERE = parse_pattern("**")


def literal_pattern(path: "AttributePath | str") -> Pattern:
    """The pattern matching exactly ``path`` and nothing else."""
    return parse_pattern(as_path(path))
