"""ActorSpace records: passive containers with attribute registries.

"An actorSpace is a computationally passive container of actors and acts
as a context for matching patterns" (paper section 5.2).  A space holds no
code and sends no messages; all it owns is a *registry* mapping the mail
addresses of visible actors and actorSpaces to the attributes under which
they are visible — the "mailing list" of the paper's second metaphor.

Entries are keyed by mail address; each entry carries a ``frozenset`` of
:class:`~repro.core.atoms.AttributePath` (a property list: an actor may be
visible under several attributes at once, and a pattern matches the entry
if it matches *any* of them).  Registration records also remember the
registration's virtual time, which feeds the tracing layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .addresses import MailAddress, SpaceAddress, is_space_address
from .atoms import AttributePath, as_paths
from .capabilities import Capability
from .errors import SpaceDestroyedError


@dataclass(frozen=True)
class RegistryEntry:
    """One visible entity in one actorSpace."""

    target: MailAddress
    attributes: frozenset[AttributePath]
    registered_at: float = 0.0

    @property
    def is_space(self) -> bool:
        return is_space_address(self.target)


class SpaceRecord:
    """The runtime record of one actorSpace.

    Parameters
    ----------
    address:
        The space's unique mail address.
    capability:
        If not ``None``, visibility operations *inside* this space must
        present this capability (checked by the space's manager).
    node:
        The node on which the space was created (spaces are replicated
        state, but creation placement matters for accounting).
    created_at:
        Virtual creation time.
    """

    __slots__ = (
        "address",
        "capability",
        "node",
        "created_at",
        "shard",
        "_entries",
        "_by_first_atom",
        "destroyed",
        "epoch",
    )

    def __init__(
        self,
        address: SpaceAddress,
        capability: Capability | None = None,
        node: int = 0,
        created_at: float = 0.0,
        shard: int = 0,
    ):
        self.address = address
        self.capability = capability
        self.node = node
        self.created_at = created_at
        #: Home shard of this space under a partitioned visibility plane
        #: (0 when unsharded): actor-visibility ops inside the space are
        #: sequenced by this shard's sequencer.
        self.shard = shard
        self._entries: dict[MailAddress, RegistryEntry] = {}
        #: first atom of an attribute -> {target: entry}.  Lets literal-
        #: prefixed patterns resolve without scanning the whole registry
        #: (ablated in experiment E10c).
        self._by_first_atom: dict[str, dict[MailAddress, RegistryEntry]] = {}
        self.destroyed = False
        #: Monotonic counter bumped on every *mutation* of this registry
        #: (register with changed attributes, successful unregister,
        #: destroy).  Resolution caches key their validity on it.
        self.epoch = 0

    # -- registry ---------------------------------------------------------------

    def _check_alive(self) -> None:
        if self.destroyed:
            raise SpaceDestroyedError(f"{self.address!r} has been destroyed")

    def register(
        self, target: MailAddress, attributes, now: float = 0.0
    ) -> RegistryEntry:
        """Insert or replace the entry for ``target``.

        ``attributes`` accepts a single path/str or an iterable of them.
        Replacement (rather than union) matches ``change_attributes``
        semantics; callers that want additive registration read the old
        entry first.

        Re-registering a target under its *current* attribute set is a
        no-op: the existing entry is returned unchanged and the registry
        epoch does not move (spurious epoch bumps would invalidate
        resolution caches for nothing).
        """
        self._check_alive()
        paths = as_paths(attributes)
        old = self._entries.get(target)
        if old is not None:
            if old.attributes == paths:
                return old
            self._unindex(old)
        entry = RegistryEntry(target, paths, now)
        self._entries[target] = entry
        for path in entry.attributes:
            self._by_first_atom.setdefault(path.atoms[0], {})[target] = entry
        self.epoch += 1
        return entry

    def unregister(self, target: MailAddress) -> bool:
        """Remove ``target``; returns ``True`` if it was present."""
        self._check_alive()
        entry = self._entries.pop(target, None)
        if entry is None:
            return False
        self._unindex(entry)
        self.epoch += 1
        return True

    def _unindex(self, entry: RegistryEntry) -> None:
        for path in entry.attributes:
            bucket = self._by_first_atom.get(path.atoms[0])
            if bucket is not None:
                bucket.pop(entry.target, None)
                if not bucket:
                    del self._by_first_atom[path.atoms[0]]

    def touch(self) -> None:
        """Bump the epoch without mutating entries.

        Used by quarantine masking: the registry's *effective* contents
        (what resolution may return) changed even though the stored
        entries did not, so cached resolutions through it must
        invalidate.
        """
        self.epoch += 1

    def lookup(self, target: MailAddress) -> RegistryEntry | None:
        """The entry for ``target``, or ``None``."""
        return self._entries.get(target)

    def __contains__(self, target: MailAddress) -> bool:
        return target in self._entries

    def entries(self) -> Iterator[RegistryEntry]:
        """Iterate over all entries (actors and spaces)."""
        return iter(self._entries.values())

    def entries_with_first_atom(self, atom: str) -> Iterator[RegistryEntry]:
        """Entries having at least one attribute starting with ``atom``.

        The index behind the literal-prefix fast path: a pattern whose
        first matcher is the literal ``atom`` can only match these.
        """
        return iter(self._by_first_atom.get(atom, {}).values())

    def first_atoms(self) -> Iterator[str]:
        """The distinct first atoms present in the registry (index keys)."""
        return iter(self._by_first_atom)

    def entries_matching_first(self, matcher) -> Iterator[RegistryEntry]:
        """Entries whose some attribute's first atom satisfies ``matcher``.

        Extension of the first-atom index to *selective* non-literal
        matchers (globs, regex atoms): instead of scanning every entry,
        test the matcher once per distinct first atom and only walk the
        matching buckets.  Entries visible under several matching first
        atoms are deduplicated.  With ``k`` distinct first atoms over
        ``n`` entries this costs ``O(k + matching bucket sizes)`` instead
        of ``O(n)`` — the win E10c/E10d measure.
        """
        buckets = [
            bucket
            for atom, bucket in self._by_first_atom.items()
            if matcher.matches(atom)
        ]
        if len(buckets) == 1:
            return iter(buckets[0].values())
        seen: set[MailAddress] = set()
        out: list[RegistryEntry] = []
        for bucket in buckets:
            for target, entry in bucket.items():
                if target not in seen:
                    seen.add(target)
                    out.append(entry)
        return iter(out)

    def actor_entries(self) -> Iterator[RegistryEntry]:
        """Iterate over entries whose target is an actor."""
        return (e for e in self._entries.values() if not e.is_space)

    def space_entries(self) -> Iterator[RegistryEntry]:
        """Iterate over entries whose target is a nested actorSpace."""
        return (e for e in self._entries.values() if e.is_space)

    @property
    def size(self) -> int:
        """Number of visible entities in this space."""
        return len(self._entries)

    def destroy(self) -> list[RegistryEntry]:
        """Explicitly destroy the space (paper section 7.1).

        Members are *not* deleted — "when an actorSpace is garbage
        collected, the actors contained in that actorSpace themselves are
        not deleted" (section 5.5) — they merely stop being visible through
        it.  Returns the entries that were evicted, for bookkeeping.
        """
        evicted = list(self._entries.values())
        self._entries.clear()
        self._by_first_atom.clear()
        self.destroyed = True
        self.epoch += 1
        return evicted

    def snapshot(self) -> dict[MailAddress, frozenset[AttributePath]]:
        """An immutable view of the registry (used by coherence checks)."""
        return {t: e.attributes for t, e in self._entries.items()}

    def __repr__(self):
        state = "destroyed" if self.destroyed else f"{len(self._entries)} entries"
        return f"<SpaceRecord {self.address!r} {state}>"
