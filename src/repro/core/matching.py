"""Scoped pattern resolution, including nested-space descent.

"Abstractly, each actorSpace maps a pattern to a set of actor mail
addresses by matching on its list of registered attributes of visible
actors" (paper section 5.1).  With nesting, "the attributes of actorSpaces
and actors may be combined to form a structured attribute (with a special
combination operator '/')" (section 7.1) — so a pattern ``a/b/c`` resolved
in space ``S`` matches:

* an actor visible in ``S`` under attribute ``a/b/c`` itself, or
* an actor visible under ``b/c`` inside a space visible in ``S`` under
  ``a``, and so on recursively.

The resolver works with *residual patterns*: descending into a space
visible under attribute prefix ``p`` rewrites the pattern to the set of
residuals ``pattern.after_prefix(p)`` (several may arise from ``**``).
Because the visibility relation over spaces is a DAG (section 5.7), the
descent terminates; a visited-set additionally dedupes shared substructure
so each ``(space, residual)`` pair is expanded once.

The same machinery resolves pattern-based *space* specifications: "the
actorSpace specification ... may itself be pattern based" (section 5.3).
"""

from __future__ import annotations

from typing import Iterable

from .addresses import ActorAddress, MailAddress, SpaceAddress
from .messages import Destination
from .patterns import AnyAtom, AnySequence, LiteralAtom, Pattern, parse_pattern
from .visibility import Directory


class MatchStats:
    """Counters filled in by a resolution (feeds experiment E10)."""

    __slots__ = (
        "entries_examined",
        "spaces_descended",
        "residuals_generated",
        "cache_hits",
        "cache_misses",
        "cache_invalidations",
    )

    def __init__(self):
        self.entries_examined = 0
        self.spaces_descended = 0
        self.residuals_generated = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_invalidations = 0

    def __repr__(self):
        return (
            f"<MatchStats examined={self.entries_examined} "
            f"descended={self.spaces_descended} residuals={self.residuals_generated} "
            f"cache={self.cache_hits}h/{self.cache_misses}m/{self.cache_invalidations}i>"
        )


class ResolutionCache:
    """Memoized ``resolve_actors``/``resolve_spaces`` results with epoch
    invalidation.

    Each cached resolution records, besides its result set, the directory
    epoch at fill time and the per-space epoch of every space *visited*
    during the walk (its resolution path, including spaces that turned
    out to be missing, recorded with epoch ``-1``).  Validity is checked
    in two tiers:

    1. **Global**: the directory epoch has not moved — nothing changed
       anywhere, the entry is valid (one integer compare; this is the
       stable-visibility fast path that E10d measures).
    2. **Shard vector** (partitioned visibility plane only): the global
       epoch moved, but none of the *shards* whose spaces this walk
       crossed did — the mutation was sequenced on an unrelated shard.
       A handful of integer compares (one per shard touched, plus the
       quarantine-mask epoch) instead of one per visited space.  This
       is the per-shard generalization of the single directory epoch:
       under sharding the global epoch moves on every op anywhere, so
       tier 1 alone would degrade to a per-op invalidation storm.
    3. **Path**: some touched shard moved, but no space on the entry's
       resolution path did — the mutation happened somewhere this
       resolution never looked, so the result is still exact.  The
       global epoch is refreshed so the next lookup takes tier 1.

    Why the path check is sound: the walk descends into a space only
    through a registry entry of an already-visited space, and only when
    the pattern has residuals for that edge's attributes.  Any mutation
    that could alter the result therefore either edits a visited
    registry (bumping its epoch) or is unreachable by this pattern from
    this scope.  Spaces the walk *skipped* (no residuals) cannot
    contribute matches no matter what is registered inside them, and a
    skipped edge's attributes can only change by re-registering the
    child in the visited parent.

    Entries are evicted least-recently-used once ``max_entries`` is
    exceeded.  The cache is a per-replica structure (one per coordinator
    in the runtime): replicas apply visibility ops independently, so
    epochs are replica-local values.
    """

    __slots__ = ("max_entries", "hits", "misses", "invalidations",
                 "shard_hits", "_entries")

    def __init__(self, max_entries: int = 4096):
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: Hits that needed the shard-vector tier (tier 1 failed because
        #: an op landed somewhere, but not on any shard this walk saw).
        self.shard_hits = 0
        #: (kind, space, pattern) ->
        #:   [result, dir_epoch, {space: epoch}, shard_vector | None]
        #: where shard_vector is [{shard: epoch}, mask_epoch] under a
        #: partitioned plane and None otherwise.
        self._entries: dict[tuple, list] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Counter snapshot (surfaced by the runtime's tracer)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "shard_hits": self.shard_hits,
            "entries": len(self._entries),
        }

    # -- protocol used by the resolve functions ---------------------------------

    def lookup(
        self,
        kind: str,
        space: SpaceAddress,
        pattern: Pattern,
        directory: Directory,
        stats: MatchStats | None = None,
    ) -> "frozenset | None":
        key = (kind, space, pattern)
        entry = self._entries.get(key)
        if entry is not None:
            result, dir_epoch, path_epochs, shard_vector = entry
            valid = dir_epoch == directory.epoch
            if not valid and shard_vector is not None:
                shard_epochs, mask_epoch = shard_vector
                if mask_epoch == directory.mask_epoch and all(
                    directory.shard_epoch(k) == e
                    for k, e in shard_epochs.items()
                ):
                    valid = True
                    self.shard_hits += 1
            if valid or all(
                directory.space_epoch(s) == e for s, e in path_epochs.items()
            ):
                entry[1] = directory.epoch
                # Refresh LRU position.
                del self._entries[key]
                self._entries[key] = entry
                self.hits += 1
                if stats is not None:
                    stats.cache_hits += 1
                return result
            del self._entries[key]
            self.invalidations += 1
            if stats is not None:
                stats.cache_invalidations += 1
        self.misses += 1
        if stats is not None:
            stats.cache_misses += 1
        return None

    def store(
        self,
        kind: str,
        space: SpaceAddress,
        pattern: Pattern,
        directory: Directory,
        path_spaces: "Iterable[SpaceAddress]",
        result: "set",
    ) -> None:
        while len(self._entries) >= self.max_entries:
            self._entries.pop(next(iter(self._entries)))
        path_spaces = list(path_spaces)
        path_epochs = {s: directory.space_epoch(s) for s in path_spaces}
        shard_vector = None
        if directory.sharded:
            # Which shard streams can mutate the spaces this walk saw?
            # A registry is only ever mutated by its home shard's stream
            # or by shard 0 (space lifecycle + containment edges are
            # always sequenced there), so those epochs — plus the mask
            # epoch, because quarantine changes arrive outside any shard
            # stream — validate the entry with a handful of integer
            # compares (tier 2).  Shard 0 also covers spaces the walk
            # found missing: their eventual ADD_SPACE lands on shard 0.
            shard_epochs = {
                k: directory.shard_epoch(k)
                for k in directory.shards_of(path_spaces) | {0}
            }
            shard_vector = [shard_epochs, directory.mask_epoch]
        self._entries[(kind, space, pattern)] = [
            frozenset(result), directory.epoch, path_epochs, shard_vector,
        ]

    def __repr__(self):
        return (
            f"<ResolutionCache {len(self._entries)} entries "
            f"{self.hits}h/{self.misses}m/{self.invalidations}i>"
        )


def resolve_actors(
    directory: Directory,
    pattern: "Pattern | str",
    space: SpaceAddress,
    stats: MatchStats | None = None,
    cache: ResolutionCache | None = None,
) -> set[ActorAddress]:
    """All actor mail addresses matching ``pattern`` in ``space``.

    This is the group-membership function behind both ``send`` (which then
    picks one member) and ``broadcast`` (which fans out to all).  With a
    ``cache``, a previously computed resolution is reused while its epoch
    evidence holds (see :class:`ResolutionCache`).
    """
    pattern = parse_pattern(pattern)
    if cache is not None:
        cached = cache.lookup("actors", space, pattern, directory, stats)
        if cached is not None:
            return set(cached)
    results: set[ActorAddress] = set()
    visited: set[tuple[SpaceAddress, Pattern]] = set()
    _walk(directory, pattern, space, results, None, visited, stats)
    if cache is not None:
        cache.store(
            "actors", space, pattern, directory, {s for s, _ in visited}, results
        )
    return results


def resolve_spaces(
    directory: Directory,
    pattern: "Pattern | str",
    space: SpaceAddress,
    stats: MatchStats | None = None,
    cache: ResolutionCache | None = None,
) -> set[SpaceAddress]:
    """All actorSpace addresses matching ``pattern`` in ``space``.

    Used to resolve the ``@space`` part of a destination when it is itself
    a pattern; matching considers spaces visible in ``space``, recursively
    through structured attributes, exactly like actor resolution.
    """
    pattern = parse_pattern(pattern)
    if cache is not None:
        cached = cache.lookup("spaces", space, pattern, directory, stats)
        if cached is not None:
            return set(cached)
    results: set[SpaceAddress] = set()
    visited: set[tuple[SpaceAddress, Pattern]] = set()
    _walk(directory, pattern, space, None, results, visited, stats)
    if cache is not None:
        cache.store(
            "spaces", space, pattern, directory, {s for s, _ in visited}, results
        )
    return results


def _walk(
    directory: Directory,
    pattern: Pattern,
    space: SpaceAddress,
    actor_results: set[ActorAddress] | None,
    space_results: set[SpaceAddress] | None,
    visited: set[tuple[SpaceAddress, Pattern]],
    stats: MatchStats | None,
) -> None:
    """Expand one ``(space, pattern)`` state of the descent."""
    key = (space, pattern)
    if key in visited:
        return
    visited.add(key)
    if not directory.has_space(space):
        return
    rec = directory.space(space)
    # First-atom index fast paths (E10c measures the saving):
    # * literal first atom — only entries indexed under that atom can match;
    # * selective first matcher (glob/regex) — test it once per distinct
    #   first atom and walk only the matching buckets;
    # * `*` accepts every first atom and `**` may absorb none, so both
    #   fall back to the full registry scan.
    first = pattern.matchers[0]
    if isinstance(first, LiteralAtom):
        candidates = rec.entries_with_first_atom(first.text)
    elif isinstance(first, (AnyAtom, AnySequence)):
        candidates = rec.entries()
    else:
        candidates = rec.entries_matching_first(first)
    for entry in candidates:
        if stats is not None:
            stats.entries_examined += 1
        if entry.is_space:
            target_space: SpaceAddress = entry.target  # type: ignore[assignment]
            for attr in entry.attributes:
                # Direct match on the space itself (space-valued queries).
                if space_results is not None and pattern.matches(attr):
                    space_results.add(target_space)
                # Descend with residual patterns through this attribute.
                residuals = pattern.after_prefix(attr)
                if stats is not None:
                    stats.residuals_generated += len(residuals)
                for residual in residuals:
                    if stats is not None:
                        stats.spaces_descended += 1
                    _walk(
                        directory,
                        residual,
                        target_space,
                        actor_results,
                        space_results,
                        visited,
                        stats,
                    )
        else:
            if (
                actor_results is not None
                and any(pattern.matches(attr) for attr in entry.attributes)
                and not directory.is_masked(entry.target)
            ):
                actor_results.add(entry.target)  # type: ignore[arg-type]


def resolve_destination_spaces(
    directory: Directory,
    destination: Destination,
    host_space: SpaceAddress,
    cache: ResolutionCache | None = None,
) -> list[SpaceAddress]:
    """Resolve the ``@space`` part of a destination to concrete spaces.

    * explicit :class:`SpaceAddress` — used as is;
    * ``None`` — the sender's host space (section 7.1 default);
    * a pattern — every matching space visible from the host space.

    Destroyed/unknown explicit spaces yield an empty list (the message
    will be handled by the manager's unmatched policy).
    """
    spec = destination.space
    if spec is None:
        return [host_space] if directory.has_space(host_space) else []
    if isinstance(spec, SpaceAddress):
        return [spec] if directory.has_space(spec) else []
    assert isinstance(spec, Pattern)
    return sorted(resolve_spaces(directory, spec, host_space, cache=cache))


def resolve_destination(
    directory: Directory,
    destination: Destination,
    host_space: SpaceAddress,
    stats: MatchStats | None = None,
    cache: ResolutionCache | None = None,
) -> set[ActorAddress]:
    """Full destination resolution: spaces first, then actors in each."""
    receivers: set[ActorAddress] = set()
    for space in resolve_destination_spaces(
        directory, destination, host_space, cache=cache
    ):
        receivers |= resolve_actors(
            directory, destination.pattern, space, stats, cache=cache
        )
    return receivers


def group_size(
    directory: Directory, pattern: "Pattern | str", space: SpaceAddress
) -> int:
    """Convenience: how many actors currently form the group ``pattern@space``."""
    return len(resolve_actors(directory, pattern, space))
