"""Scoped pattern resolution, including nested-space descent.

"Abstractly, each actorSpace maps a pattern to a set of actor mail
addresses by matching on its list of registered attributes of visible
actors" (paper section 5.1).  With nesting, "the attributes of actorSpaces
and actors may be combined to form a structured attribute (with a special
combination operator '/')" (section 7.1) — so a pattern ``a/b/c`` resolved
in space ``S`` matches:

* an actor visible in ``S`` under attribute ``a/b/c`` itself, or
* an actor visible under ``b/c`` inside a space visible in ``S`` under
  ``a``, and so on recursively.

The resolver works with *residual patterns*: descending into a space
visible under attribute prefix ``p`` rewrites the pattern to the set of
residuals ``pattern.after_prefix(p)`` (several may arise from ``**``).
Because the visibility relation over spaces is a DAG (section 5.7), the
descent terminates; a visited-set additionally dedupes shared substructure
so each ``(space, residual)`` pair is expanded once.

The same machinery resolves pattern-based *space* specifications: "the
actorSpace specification ... may itself be pattern based" (section 5.3).
"""

from __future__ import annotations

from typing import Iterable

from .addresses import ActorAddress, SpaceAddress
from .messages import Destination
from .patterns import Pattern, parse_pattern
from .visibility import Directory


class MatchStats:
    """Counters filled in by a resolution (feeds experiment E10)."""

    __slots__ = ("entries_examined", "spaces_descended", "residuals_generated")

    def __init__(self):
        self.entries_examined = 0
        self.spaces_descended = 0
        self.residuals_generated = 0

    def __repr__(self):
        return (
            f"<MatchStats examined={self.entries_examined} "
            f"descended={self.spaces_descended} residuals={self.residuals_generated}>"
        )


def resolve_actors(
    directory: Directory,
    pattern: "Pattern | str",
    space: SpaceAddress,
    stats: MatchStats | None = None,
) -> set[ActorAddress]:
    """All actor mail addresses matching ``pattern`` in ``space``.

    This is the group-membership function behind both ``send`` (which then
    picks one member) and ``broadcast`` (which fans out to all).
    """
    pattern = parse_pattern(pattern)
    results: set[ActorAddress] = set()
    _walk(directory, pattern, space, results, None, set(), stats)
    return results


def resolve_spaces(
    directory: Directory,
    pattern: "Pattern | str",
    space: SpaceAddress,
    stats: MatchStats | None = None,
) -> set[SpaceAddress]:
    """All actorSpace addresses matching ``pattern`` in ``space``.

    Used to resolve the ``@space`` part of a destination when it is itself
    a pattern; matching considers spaces visible in ``space``, recursively
    through structured attributes, exactly like actor resolution.
    """
    pattern = parse_pattern(pattern)
    results: set[SpaceAddress] = set()
    _walk(directory, pattern, space, None, results, set(), stats)
    return results


def _walk(
    directory: Directory,
    pattern: Pattern,
    space: SpaceAddress,
    actor_results: set[ActorAddress] | None,
    space_results: set[SpaceAddress] | None,
    visited: set[tuple[SpaceAddress, Pattern]],
    stats: MatchStats | None,
) -> None:
    """Expand one ``(space, pattern)`` state of the descent."""
    key = (space, pattern)
    if key in visited:
        return
    visited.add(key)
    if not directory.has_space(space):
        return
    rec = directory.space(space)
    # Literal-prefix fast path: a pattern beginning with a literal atom
    # can only match entries indexed under that atom (E10c measures the
    # saving).  Wildcard-first patterns must scan the registry.
    prefix = pattern.literal_prefix
    candidates = (
        rec.entries_with_first_atom(prefix[0]) if prefix else rec.entries()
    )
    for entry in candidates:
        if stats is not None:
            stats.entries_examined += 1
        if entry.is_space:
            target_space: SpaceAddress = entry.target  # type: ignore[assignment]
            for attr in entry.attributes:
                # Direct match on the space itself (space-valued queries).
                if space_results is not None and pattern.matches(attr):
                    space_results.add(target_space)
                # Descend with residual patterns through this attribute.
                residuals = pattern.after_prefix(attr)
                if stats is not None:
                    stats.residuals_generated += len(residuals)
                for residual in residuals:
                    if stats is not None:
                        stats.spaces_descended += 1
                    _walk(
                        directory,
                        residual,
                        target_space,
                        actor_results,
                        space_results,
                        visited,
                        stats,
                    )
        else:
            if actor_results is not None and any(
                pattern.matches(attr) for attr in entry.attributes
            ):
                actor_results.add(entry.target)  # type: ignore[arg-type]


def resolve_destination_spaces(
    directory: Directory,
    destination: Destination,
    host_space: SpaceAddress,
) -> list[SpaceAddress]:
    """Resolve the ``@space`` part of a destination to concrete spaces.

    * explicit :class:`SpaceAddress` — used as is;
    * ``None`` — the sender's host space (section 7.1 default);
    * a pattern — every matching space visible from the host space.

    Destroyed/unknown explicit spaces yield an empty list (the message
    will be handled by the manager's unmatched policy).
    """
    spec = destination.space
    if spec is None:
        return [host_space] if directory.has_space(host_space) else []
    if isinstance(spec, SpaceAddress):
        return [spec] if directory.has_space(spec) else []
    assert isinstance(spec, Pattern)
    return sorted(resolve_spaces(directory, spec, host_space))


def resolve_destination(
    directory: Directory,
    destination: Destination,
    host_space: SpaceAddress,
    stats: MatchStats | None = None,
) -> set[ActorAddress]:
    """Full destination resolution: spaces first, then actors in each."""
    receivers: set[ActorAddress] = set()
    for space in resolve_destination_spaces(directory, destination, host_space):
        receivers |= resolve_actors(directory, destination.pattern, space, stats)
    return receivers


def group_size(
    directory: Directory, pattern: "Pattern | str", space: SpaceAddress
) -> int:
    """Convenience: how many actors currently form the group ``pattern@space``."""
    return len(resolve_actors(directory, pattern, space))
