"""Core ActorSpace semantics: the paper's contribution, runtime-independent.

Everything in this package is pure model logic — values, registries,
policies — with no event loop or network.  The ``repro.runtime`` package
executes these semantics on a simulated distributed system.
"""

from .actor import ActorContext, Behavior, FunctionBehavior, as_behavior
from .actorspace import RegistryEntry, SpaceRecord
from .addresses import (
    ActorAddress,
    AddressFactory,
    MailAddress,
    SpaceAddress,
    is_actor_address,
    is_space_address,
)
from .atoms import EMPTY_PATH, AttributePath, as_path, as_paths
from .capabilities import Capability, CapabilityIssuer, authorize
from .daemons import (
    AttributeDaemon,
    ConstraintRule,
    EventDrivenDaemon,
    install_daemon,
    install_event_daemon,
    predicate_rule,
    queue_depth_observation,
    threshold_rule,
)
from .errors import (
    ActorSpaceError,
    AttributeSyntaxError,
    CapabilityError,
    InterpreterError,
    NoMatchError,
    NotAnActorError,
    NotASpaceError,
    PatternSyntaxError,
    SpaceDestroyedError,
    TransportError,
    UnknownAddressError,
    VisibilityCycleError,
)
from .gc import GarbageCollector, GcReport, scan_addresses
from .lattice import BOTTOM, TOP, And, Desc, Has, Or, join, meet, subsumes
from .manager import (
    Arbitration,
    CyclePolicy,
    SpaceManager,
    UnmatchedPolicy,
    default_manager,
)
from .matching import (
    MatchStats,
    ResolutionCache,
    group_size,
    resolve_actors,
    resolve_destination,
    resolve_destination_spaces,
    resolve_spaces,
)
from .ordering import OrderedGroup, OrderedReceiver, SerializerBehavior
from .messages import Destination, Envelope, Message, Mode, Port, parse_destination
from .tagging import forward_once, forward_to, has_cycle, seen_by_me, via_chain
from .patterns import ANY, ANYWHERE, Pattern, literal_pattern, parse_pattern
from .visibility import Directory

__all__ = [
    "ANY",
    "AttributeDaemon",
    "ConstraintRule",
    "EventDrivenDaemon",
    "install_daemon",
    "install_event_daemon",
    "predicate_rule",
    "queue_depth_observation",
    "threshold_rule",
    "ANYWHERE",
    "ActorAddress",
    "ActorContext",
    "ActorSpaceError",
    "AddressFactory",
    "And",
    "Arbitration",
    "AttributePath",
    "AttributeSyntaxError",
    "BOTTOM",
    "Behavior",
    "Capability",
    "CapabilityError",
    "CapabilityIssuer",
    "CyclePolicy",
    "Desc",
    "Destination",
    "Directory",
    "EMPTY_PATH",
    "Envelope",
    "FunctionBehavior",
    "GarbageCollector",
    "GcReport",
    "Has",
    "InterpreterError",
    "MailAddress",
    "MatchStats",
    "ResolutionCache",
    "Message",
    "Mode",
    "NoMatchError",
    "NotAnActorError",
    "NotASpaceError",
    "OrderedGroup",
    "OrderedReceiver",
    "SerializerBehavior",
    "Or",
    "Pattern",
    "PatternSyntaxError",
    "Port",
    "RegistryEntry",
    "SpaceAddress",
    "SpaceDestroyedError",
    "SpaceManager",
    "SpaceRecord",
    "TOP",
    "TransportError",
    "UnknownAddressError",
    "UnmatchedPolicy",
    "VisibilityCycleError",
    "as_behavior",
    "as_path",
    "as_paths",
    "authorize",
    "forward_once",
    "forward_to",
    "has_cycle",
    "seen_by_me",
    "via_chain",
    "default_manager",
    "group_size",
    "is_actor_address",
    "is_space_address",
    "join",
    "literal_pattern",
    "meet",
    "parse_destination",
    "parse_pattern",
    "resolve_actors",
    "resolve_destination",
    "resolve_destination_spaces",
    "resolve_spaces",
    "scan_addresses",
    "subsumes",
]
