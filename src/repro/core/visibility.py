"""The visibility directory: all spaces, their registries, and the DAG.

This module is the single-copy semantics of ActorSpace visibility.  The
distributed runtime replicates one :class:`Directory` per node coordinator
and keeps the replicas coherent by applying visibility operations in the
total order imposed by the coordinator bus (paper section 7.3); the logic
here is deliberately independent of the replication machinery so it can be
tested exhaustively on its own.

Responsibilities:

* track every actorSpace record, and which entities are visible where;
* enforce capability checks on ``make_visible`` / ``make_invisible`` /
  ``change_attributes`` (section 5.4);
* enforce acyclicity of the space-visibility relation (section 5.7): "we
  do not allow an actorSpace to be made visible in itself, or recursively
  in any contained actorSpace.  This avoids cycles in the directed acyclic
  graph defined by the visibility relation";
* answer reverse queries (which spaces contain X?) for garbage collection.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from .actorspace import RegistryEntry, SpaceRecord
from .addresses import MailAddress, SpaceAddress, is_space_address
from .atoms import AttributePath, as_paths
from .capabilities import Capability, authorize
from .errors import (
    CapabilityError,
    SpaceDestroyedError,
    UnknownAddressError,
    VisibilityCycleError,
)


class Directory:
    """All actorSpace registries plus the visibility DAG over spaces."""

    __slots__ = ("_spaces", "_containers", "_known_capabilities", "_op_count",
                 "_quarantined", "_shard_epochs", "_mask_epoch", "sharded")

    def __init__(self):
        #: True when this replica lives under a partitioned visibility
        #: plane (set by the coordinator); gates the resolution cache's
        #: shard-vector tier so unsharded runs pay nothing new.
        self.sharded = False
        self._spaces: dict[SpaceAddress, SpaceRecord] = {}
        #: Reverse index: target address -> set of spaces it is visible in.
        self._containers: dict[MailAddress, set[SpaceAddress]] = {}
        #: Capability required to change each *entity's* own visibility,
        #: recorded at creation time (section 5.4 binds capabilities to
        #: actors and spaces, not only to spaces).
        self._known_capabilities: dict[MailAddress, Capability | None] = {}
        self._op_count = 0
        #: Nodes whose actor entries are masked from resolution (failure
        #: quarantine).  The mask is an overlay: the underlying entries —
        #: and therefore :meth:`snapshot` — are untouched, so replicas
        #: stay comparable while their quarantine views differ.
        self._quarantined: set[int] = set()
        #: Per-shard mutation epochs under a partitioned visibility plane:
        #: shard id -> count of mutating ops applied from that shard's
        #: stream.  The resolution cache validates cached walks against
        #: the epochs of only the shards its path crossed, so a mutation
        #: sequenced on an unrelated shard no longer invalidates anything
        #: (the per-shard generalization of the single directory epoch).
        self._shard_epochs: dict[int, int] = {}
        #: Quarantine-mask epoch: masks change outside the bus (no shard
        #: stream carries them), so shard-vector cache validation checks
        #: this alongside the shard epochs.
        self._mask_epoch = 0

    # -- space lifecycle ---------------------------------------------------------

    def add_space(self, record: SpaceRecord) -> None:
        """Register a newly created actorSpace."""
        if record.address in self._spaces:
            raise ValueError(f"duplicate space {record.address!r}")
        self._spaces[record.address] = record
        self._known_capabilities.setdefault(record.address, record.capability)
        self._op_count += 1

    def bind_capability(self, target: MailAddress, capability: Capability | None) -> None:
        """Record the capability bound to ``target`` at its creation."""
        self._known_capabilities[target] = capability

    def capability_bindings(self) -> Iterator[tuple[MailAddress, Capability | None]]:
        """Every known (target, capability) binding, for persistence.

        Includes the implicit bindings seeded by :meth:`add_space`;
        restoring them with :meth:`bind_capability` reproduces the
        authorization state exactly.
        """
        return iter(self._known_capabilities.items())

    def space(self, address: SpaceAddress) -> SpaceRecord:
        """Look up a live space record.

        Raises
        ------
        UnknownAddressError / SpaceDestroyedError
        """
        rec = self._spaces.get(address)
        if rec is None:
            raise UnknownAddressError(f"no such actorSpace: {address!r}")
        if rec.destroyed:
            raise SpaceDestroyedError(f"{address!r} has been destroyed")
        return rec

    def has_space(self, address: SpaceAddress) -> bool:
        rec = self._spaces.get(address)
        return rec is not None and not rec.destroyed

    def knows_space(self, address: SpaceAddress) -> bool:
        """Known live *or* tombstoned.

        The partitioned plane's dependency check: an op referencing a
        space this replica has never heard of must park until the
        space's ``ADD_SPACE`` arrives on the topology shard's stream; one
        referencing a tombstone applies (and rejects) immediately.
        """
        return address in self._spaces

    def spaces(self) -> Iterator[SpaceRecord]:
        """Iterate over live space records."""
        return (r for r in self._spaces.values() if not r.destroyed)

    def destroy_space(self, address: SpaceAddress) -> None:
        """Explicitly destroy a space (section 7.1); members survive."""
        rec = self.space(address)
        for entry in rec.destroy():
            holders = self._containers.get(entry.target)
            if holders:
                holders.discard(address)
                if not holders:
                    # Empty holder sets would otherwise accumulate forever
                    # under space churn.
                    del self._containers[entry.target]
        # The space may itself have been visible elsewhere; evict it.
        for holder in list(self._containers.get(address, ())):
            holder_rec = self._spaces.get(holder)
            if holder_rec is not None and not holder_rec.destroyed:
                holder_rec.unregister(address)
        self._containers.pop(address, None)
        # The destroyed space can never authenticate again; keeping its
        # capability binding would leak memory under churn.
        self._known_capabilities.pop(address, None)
        self._op_count += 1

    # -- capability discipline ------------------------------------------------------

    def _authorize(self, target: MailAddress, space_rec: SpaceRecord,
                   capability: Capability | None) -> None:
        """Validate a visibility operation on ``target`` within ``space_rec``.

        The presented capability must satisfy *both* keys that apply: the
        one bound to the target entity at creation, and the one bound to
        the space (authenticating operations in that space, section 5.2).
        Unprotected entities/spaces (no bound key) impose no requirement.
        """
        target_key = self._known_capabilities.get(target)
        if not authorize(capability, target_key):
            raise CapabilityError(
                f"capability does not authorize visibility change of {target!r}"
            )
        if not authorize(capability, space_rec.capability):
            raise CapabilityError(
                f"capability does not authorize operations in {space_rec.address!r}"
            )

    # -- the DAG -------------------------------------------------------------------

    def contained_spaces(self, space: SpaceAddress) -> Iterator[SpaceAddress]:
        """Spaces directly visible inside ``space``."""
        rec = self._spaces.get(space)
        if rec is None or rec.destroyed:
            return iter(())
        return (e.target for e in rec.space_entries())  # type: ignore[misc]

    def reaches(self, start: SpaceAddress, goal: SpaceAddress) -> bool:
        """True when ``goal`` is ``start`` or transitively visible inside it."""
        if start == goal:
            return True
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for child in self.contained_spaces(current):
                if child == goal:
                    return True
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return False

    def would_cycle(self, target: MailAddress, space: SpaceAddress) -> bool:
        """Would making ``target`` visible in ``space`` create a cycle?

        Only space targets can create cycles; actors are leaves.
        """
        if not is_space_address(target):
            return False
        return self.reaches(target, space)  # type: ignore[arg-type]

    def find_cycle(self) -> list[SpaceAddress] | None:
        """Search the visibility relation for a containment cycle.

        Returns one cycle as ``[s0, s1, ..., s0]`` or ``None`` when the
        relation is acyclic.  §5.7 promises the answer is always ``None``
        — this is the audit the property tests run after arbitrary op
        sequences; it is not on any hot path.
        """
        colors: dict[SpaceAddress, int] = {}  # 1 = on stack, 2 = done

        def visit(space: SpaceAddress, trail: list[SpaceAddress]):
            colors[space] = 1
            trail.append(space)
            for child in self.contained_spaces(space):
                state = colors.get(child)
                if state == 1:
                    return trail[trail.index(child):] + [child]
                if state is None:
                    found = visit(child, trail)
                    if found is not None:
                        return found
            trail.pop()
            colors[space] = 2
            return None

        for rec in list(self.spaces()):
            if rec.address not in colors:
                found = visit(rec.address, [])
                if found is not None:
                    return found
        return None

    # -- visibility operations --------------------------------------------------------

    def make_visible(
        self,
        target: MailAddress,
        attributes: "Iterable[AttributePath | str] | AttributePath | str",
        space: SpaceAddress,
        capability: Capability | None = None,
        now: float = 0.0,
        check_cycles: bool = True,
    ) -> RegistryEntry:
        """Subject ``target`` to pattern matching in ``space``.

        Raises :class:`CapabilityError` on bad keys and
        :class:`VisibilityCycleError` when the operation would make a space
        visible in itself or in a space it (transitively) contains.
        ``check_cycles=False`` selects the message-tagging alternative of
        section 5.7 (cycles tolerated here, trapped at routing time) — used
        by the E7 ablation via a customized manager.
        """
        rec = self.space(space)
        self._authorize(target, rec, capability)
        if check_cycles and self.would_cycle(target, space):
            raise VisibilityCycleError(target, space)
        before = rec.epoch
        entry = rec.register(target, as_paths(attributes), now)
        self._containers.setdefault(target, set()).add(space)
        if rec.epoch != before:
            self._op_count += 1
        return entry

    def restore_entry(
        self,
        target: MailAddress,
        attributes: "Iterable[AttributePath | str] | AttributePath | str",
        space: SpaceAddress,
        now: float = 0.0,
    ) -> RegistryEntry:
        """Recovery-only rebuild of a registration.

        Bypasses capability and cycle checks: both were enforced when
        the op originally applied, and re-checking would require the
        original *presented* capability, which is deliberately not
        persisted (only the bindings needed to verify future ops are).
        """
        rec = self.space(space)
        before = rec.epoch
        entry = rec.register(target, as_paths(attributes), now)
        self._containers.setdefault(target, set()).add(space)
        if rec.epoch != before:
            self._op_count += 1
        return entry

    def make_invisible(
        self,
        target: MailAddress,
        space: SpaceAddress,
        capability: Capability | None = None,
    ) -> bool:
        """Remove ``target`` from pattern matching in ``space``.

        Removing visibility in a space also removes it from "any other
        enclosing actorSpace" (section 5.4) in the sense that structured
        patterns entering through ``space`` no longer reach the target;
        entries the target holds in *other* spaces are untouched.
        """
        rec = self.space(space)
        self._authorize(target, rec, capability)
        removed = rec.unregister(target)
        if removed:
            holders = self._containers.get(target)
            if holders:
                holders.discard(space)
                if not holders:
                    del self._containers[target]
            # Only an actual mutation moves the epoch; a no-op removal
            # must not invalidate caches or skew the coherence counter.
            self._op_count += 1
        return removed

    def change_attributes(
        self,
        target: MailAddress,
        attributes: "Iterable[AttributePath | str] | AttributePath | str",
        space: SpaceAddress,
        capability: Capability | None = None,
        now: float = 0.0,
    ) -> RegistryEntry:
        """Replace the attributes of an existing registration (section 5.4).

        Raises
        ------
        UnknownAddressError
            If ``target`` is not currently visible in ``space``.
        """
        rec = self.space(space)
        self._authorize(target, rec, capability)
        if target not in rec:
            raise UnknownAddressError(
                f"{target!r} is not visible in {space!r}; make_visible first"
            )
        before = rec.epoch
        entry = rec.register(target, as_paths(attributes), now)
        if rec.epoch != before:
            self._op_count += 1
        return entry

    # -- reverse queries (GC support) ------------------------------------------------

    def containers_of(self, target: MailAddress) -> frozenset[SpaceAddress]:
        """The spaces in which ``target`` is currently visible."""
        return frozenset(self._containers.get(target, ()))

    def is_visible_anywhere(self, target: MailAddress) -> bool:
        return bool(self._containers.get(target))

    def purge_target(self, target: MailAddress, shard: "int | None" = None) -> int:
        """Remove every registration of ``target`` (used when it is collected).

        With ``shard`` given (partitioned plane), only registries of
        spaces *homed on that shard* are purged — the purge is fanned
        across shards as one slice per stream, preserving the invariant
        that a registry is mutated only by its home shard's stream (what
        keeps the resolution cache's shard-vector tier sound).

        Returns the number of registries it was removed from.
        """
        if shard is None:
            holders = self._containers.pop(target, set())
        else:
            holders = {
                s for s in self._containers.get(target, ())
                if (rec := self._spaces.get(s)) is not None
                and rec.shard == shard
            }
        n = 0
        for space in holders:
            rec = self._spaces.get(space)
            if rec is not None and not rec.destroyed and rec.unregister(target):
                n += 1
        if shard is not None:
            remaining = self._containers.get(target)
            if remaining is not None:
                remaining -= holders
                if not remaining:
                    del self._containers[target]
            # The capability binding goes with the last slice to leave
            # the target registered anywhere; the shard-0 slice also
            # covers targets that were never registered at all.
            if target not in self._containers:
                if shard == 0 or holders:
                    self._known_capabilities.pop(target, None)
        else:
            self._known_capabilities.pop(target, None)
        if n:
            self._op_count += 1
        return n

    # -- failure quarantine ----------------------------------------------------------

    def _touch_spaces_hosting(self, node: int) -> int:
        """Bump the epoch of every live registry with actor entries on ``node``.

        Returns the number of masked/unmasked entries.  Bumping only the
        *hosting* registries keeps the resolution cache's path check
        sound: a cached walk that never saw an entry from ``node`` stays
        valid, one that did is invalidated.
        """
        touched = 0
        for rec in self._spaces.values():
            if rec.destroyed:
                continue
            hosted = sum(
                1 for e in rec.entries()
                if not e.is_space and e.target.node == node
            )
            if hosted:
                rec.touch()
                touched += hosted
        return touched

    def quarantine_node(self, node: int) -> int:
        """Mask every actor entry homed on ``node`` from resolution.

        Called when a failure detector confirms the node down: sends and
        broadcasts stop resolving to its (unreachable) actors without
        mutating the replicated registries.  Bumps the directory epoch
        and the epoch of each hosting registry so cached resolutions
        invalidate.  Returns the number of entries masked; idempotent.
        """
        if node in self._quarantined:
            return 0
        self._quarantined.add(node)
        masked = self._touch_spaces_hosting(node)
        self._op_count += 1
        self._mask_epoch += 1
        return masked

    def unquarantine_node(self, node: int) -> int:
        """Lift the mask on ``node`` (recovery); returns entries unmasked."""
        if node not in self._quarantined:
            return 0
        self._quarantined.discard(node)
        unmasked = self._touch_spaces_hosting(node)
        self._op_count += 1
        self._mask_epoch += 1
        return unmasked

    def is_masked(self, target: MailAddress) -> bool:
        """Is ``target`` hidden from resolution by a node quarantine?

        Only actor entries are masked: spaces are replicated state that
        every live replica still holds, so structured-pattern descent
        through a crashed node's spaces keeps working.
        """
        return (
            target.node in self._quarantined
            and not is_space_address(target)
        )

    @property
    def quarantined_nodes(self) -> frozenset[int]:
        return frozenset(self._quarantined)

    @property
    def op_count(self) -> int:
        """Number of mutating operations applied (replica coherence checks)."""
        return self._op_count

    @property
    def epoch(self) -> int:
        """Directory-wide cache epoch: moves iff some resolution may have.

        Derived from :attr:`op_count`, which — after the no-op audit —
        is bumped only by operations that actually mutate visibility
        state.  A resolution cached at epoch ``e`` is trivially still
        valid while ``epoch == e``.
        """
        return self._op_count

    def note_shard_op(self, shard: int) -> None:
        """Record that a mutating op from ``shard``'s stream applied."""
        self._shard_epochs[shard] = self._shard_epochs.get(shard, 0) + 1

    def shard_epoch(self, shard: int) -> int:
        """Mutation epoch of one shard's slice of the directory."""
        return self._shard_epochs.get(shard, 0)

    @property
    def mask_epoch(self) -> int:
        """Epoch of the quarantine mask overlay (moves outside the bus)."""
        return self._mask_epoch

    def shards_of(self, spaces) -> "set[int]":
        """The home shards of the given space addresses (known ones)."""
        shards: set[int] = set()
        for address in spaces:
            rec = self._spaces.get(address)
            if rec is not None:
                shards.add(rec.shard)
        return shards

    def space_epoch(self, address: SpaceAddress) -> int:
        """The per-registry epoch of ``address``; ``-1`` if never known.

        Destroyed spaces keep their (final, bumped-at-destroy) epoch so a
        cached resolution that saw the live space is correctly
        invalidated.  Epochs are comparable only for the same address.
        """
        rec = self._spaces.get(address)
        return rec.epoch if rec is not None else -1

    def snapshot(self) -> dict:
        """Deep value snapshot of all registries, for replica comparison."""
        return {
            addr: rec.snapshot()
            for addr, rec in self._spaces.items()
            if not rec.destroyed
        }

    def __repr__(self):
        live = sum(1 for r in self._spaces.values() if not r.destroyed)
        return f"<Directory {live} live spaces, {self._op_count} ops>"
