"""Mail addresses for actors and actorSpaces.

Every actor has "a unique mail address determined at the time of its
creation" (paper section 4); ``create_actorSpace`` likewise "returns a unique
actorSpace mail address" (section 5.2).  Section 5.7 further requires the
implementation to keep *type information* distinguishing actor addresses
from actorSpace addresses, so that spaces are never sent bookkeeping
messages meant for actors and vice versa.  We encode the distinction in
the address type itself.

An address is a pure value ``(node, serial)``: the node where the entity
was created plus a node-local serial number.  Uniqueness is therefore
structural — no global coordination is needed to mint addresses, exactly
as in the actor model, and address creation is deterministic for
reproducible runs.
"""

from __future__ import annotations

from functools import total_ordering


@total_ordering
class MailAddress:
    """Base class of actor and actorSpace mail addresses (a pure value)."""

    __slots__ = ("node", "serial", "_hash")

    #: Short tag used in ``repr`` and traces; overridden by subclasses.
    kind = "addr"

    def __init__(self, node: int, serial: int):
        self.node = int(node)
        self.serial = int(serial)
        self._hash = hash((type(self).__name__, self.node, self.serial))

    def __eq__(self, other) -> bool:
        if isinstance(other, MailAddress):
            return (
                type(self) is type(other)
                and self.node == other.node
                and self.serial == other.serial
            )
        return NotImplemented

    def __lt__(self, other) -> bool:
        if isinstance(other, MailAddress):
            return (self.kind, self.node, self.serial) < (
                other.kind,
                other.node,
                other.serial,
            )
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"<{self.kind} {self.node}.{self.serial}>"


class ActorAddress(MailAddress):
    """The mail address of an actor."""

    __slots__ = ()
    kind = "actor"


class SpaceAddress(MailAddress):
    """The mail address of an actorSpace."""

    __slots__ = ()
    kind = "space"


def is_actor_address(addr: object) -> bool:
    """True when ``addr`` is an actor mail address."""
    return isinstance(addr, ActorAddress)


def is_space_address(addr: object) -> bool:
    """True when ``addr`` is an actorSpace mail address."""
    return isinstance(addr, SpaceAddress)


class AddressFactory:
    """Mints fresh addresses for one node (deterministic, collision-free)."""

    __slots__ = ("node", "_next_serial")

    def __init__(self, node: int):
        self.node = int(node)
        self._next_serial = 0

    def new_actor_address(self) -> ActorAddress:
        """Mint the next actor address on this node."""
        addr = ActorAddress(self.node, self._next_serial)
        self._next_serial += 1
        return addr

    def new_space_address(self) -> SpaceAddress:
        """Mint the next actorSpace address on this node."""
        addr = SpaceAddress(self.node, self._next_serial)
        self._next_serial += 1
        return addr
