"""Sequenced group communication: the section-5.3 recipe, packaged.

The paradigm deliberately does not order broadcasts: "broadcasts may be
received by two actors in a different order and point to point messages
may be interleaved between two broadcasts."  When an application wants a
total order on one group's traffic, the paper gives the recipe: "sending
all messages that are to be broadcast to a special actor whose sole
purpose is to receive messages from group members, and then broadcast
these serially to the group using some agreed upon protocol (cf.
sequenced send in the actor language HAL)".

This module packages both halves of that protocol:

* :class:`SerializerBehavior` — the special actor: stamps each posted
  payload with a group sequence number and broadcasts it;
* :class:`OrderedReceiver` — a behavior decorator for group members: a
  hold-back buffer that releases stamped messages to the wrapped behavior
  strictly in sequence (two broadcasts fired back-to-back may still
  arrive inverted at one member — the stamp, not the network, defines the
  order);
* :class:`OrderedGroup` — driver-side convenience wiring the two.

Unstamped messages pass through the receiver untouched, so a member can
take part in ordered *and* ordinary traffic.
"""

from __future__ import annotations

from typing import Any

from .actor import ActorContext, Behavior, as_behavior
from .addresses import ActorAddress, SpaceAddress
from .messages import Destination, Message

#: Header marking a serializer-stamped message.
_STAMP = "ordered_seq"
_GROUP = "ordered_group"


class SerializerBehavior(Behavior):
    """The group's serializer: posts in, stamped broadcasts out.

    Post payloads with ``ctx.send_to(serializer, payload)``; every member
    matching ``destination`` receives the payload wrapped with a sequence
    stamp that :class:`OrderedReceiver` understands.
    """

    def __init__(self, destination: "Destination | str", group_id: str = "g"):
        self.destination = destination
        self.group_id = group_id
        self.next_seq = 0

    def receive(self, ctx: ActorContext, message: Message) -> None:
        seq = self.next_seq
        self.next_seq += 1
        ctx.broadcast(
            self.destination,
            message.payload,
            reply_to=message.reply_to,
            headers={_STAMP: seq, _GROUP: self.group_id},
        )


class OrderedReceiver(Behavior):
    """Hold-back decorator releasing stamped messages in sequence.

    Wraps any behavior.  Stamped messages (from a matching serializer)
    are buffered until their predecessors have been delivered; everything
    else is forwarded immediately.  The wrapped behavior sees ordinary
    :class:`Message` objects and never learns about the protocol.
    """

    def __init__(self, inner: "Behavior | Any", group_id: str = "g"):
        self.inner = as_behavior(inner)
        self.group_id = group_id
        self.expected = 0
        self._buffer: dict[int, Message] = {}
        #: Stamped messages that arrived out of order (accounting).
        self.reordered = 0

    def on_start(self, ctx: ActorContext) -> None:
        self.inner.on_start(ctx)

    def receive(self, ctx: ActorContext, message: Message) -> None:
        headers = message.headers
        if headers.get(_GROUP) != self.group_id or _STAMP not in headers:
            self.inner.receive(ctx, message)
            return
        seq = headers[_STAMP]
        if seq != self.expected:
            self.reordered += 1
        self._buffer[seq] = message
        while self.expected in self._buffer:
            ready = self._buffer.pop(self.expected)
            self.expected += 1
            self.inner.receive(ctx, ready)

    @property
    def held_back(self) -> int:
        """Messages currently waiting for a predecessor."""
        return len(self._buffer)

    def __repr__(self):
        return f"<OrderedReceiver expecting={self.expected} inner={self.inner!r}>"


class OrderedGroup:
    """Driver-side wiring for one totally-ordered group.

    >>> group = OrderedGroup(system, "team/*")          # doctest: +SKIP
    ... member = system.create_actor(group.member(my_behavior))
    ... system.make_visible(member, "team/m1")
    ... group.post("first"); group.post("second")       # ordered for all
    """

    def __init__(
        self,
        system,
        destination: "Destination | str",
        group_id: str = "g",
        node: int = 0,
    ):
        self.system = system
        self.group_id = group_id
        self.serializer: ActorAddress = system.create_actor(
            SerializerBehavior(destination, group_id), node=node
        )

    def member(self, behavior: "Behavior | Any") -> OrderedReceiver:
        """Wrap a member behavior for this group's ordered traffic."""
        return OrderedReceiver(behavior, self.group_id)

    def post(self, payload: Any, *, reply_to: ActorAddress | None = None) -> None:
        """Submit a payload for ordered broadcast to the group."""
        self.system.send_to(self.serializer, payload, reply_to=reply_to)
