"""Garbage collection of actors and actorSpaces.

Section 5.5 of the paper fixes the rules this module implements:

* "As long as an actor (or actorSpace) is visible in an actorSpace, it may
  be potentially reachable and thus cannot be garbage collected until the
  container actorSpace has been garbage collected."
* "An actorSpace may be deleted if no actor has a way of accessing it
  (and, as with actors, no messages containing its mail address are
  pending)."
* "When an actor is no longer reachable, and furthermore cannot
  potentially reach a reachable actor, a garbage collection algorithm may
  be able to delete it."  (The second condition is the classic actor-GC
  refinement: an unreachable-but-*active* actor that could still send a
  message into the live computation must be kept.)
* "Since actorSpaces are viewed as passive containers, garbage collecting
  them is simpler than actors: inverse reachability need not be
  considered."

The collector is a mark phase over a conservative acquaintance graph the
runtime maintains: an actor's acquaintances are every mail address that
has appeared in its creation arguments or in messages it has received.
Roots are the external handles the application driver holds plus the
targets and contents of in-flight envelopes.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Any, Iterable, Iterator, Mapping

from .addresses import ActorAddress, MailAddress, SpaceAddress, is_space_address
from .visibility import Directory


def scan_addresses(payload: Any, _depth: int = 0) -> Iterator[MailAddress]:
    """Yield every mail address conservatively discoverable in ``payload``.

    Walks the common container types plus dataclasses.  Opaque objects may
    hide addresses; applications that smuggle addresses through opaque
    state should expose them via an ``__addresses__()`` method, which this
    scanner honours.  Depth is bounded to keep the scan linear even on
    pathological nesting.
    """
    if _depth > 32:
        return
    if isinstance(payload, MailAddress):
        yield payload
        return
    if isinstance(payload, Mapping):
        for k, v in payload.items():
            yield from scan_addresses(k, _depth + 1)
            yield from scan_addresses(v, _depth + 1)
        return
    if isinstance(payload, (list, tuple, set, frozenset)):
        for item in payload:
            yield from scan_addresses(item, _depth + 1)
        return
    if is_dataclass(payload) and not isinstance(payload, type):
        for f in fields(payload):
            yield from scan_addresses(getattr(payload, f.name), _depth + 1)
        return
    hook = getattr(payload, "__addresses__", None)
    if callable(hook):
        for item in hook():
            if isinstance(item, MailAddress):
                yield item


class GcReport:
    """Outcome of one collection cycle."""

    __slots__ = (
        "live_actors",
        "live_spaces",
        "collected_actors",
        "collected_spaces",
        "kept_active",
    )

    def __init__(self):
        self.live_actors: set[ActorAddress] = set()
        self.live_spaces: set[SpaceAddress] = set()
        self.collected_actors: set[ActorAddress] = set()
        self.collected_spaces: set[SpaceAddress] = set()
        #: Unreachable-but-active actors retained because they can still
        #: reach the live computation.
        self.kept_active: set[ActorAddress] = set()

    @property
    def collected_count(self) -> int:
        return len(self.collected_actors) + len(self.collected_spaces)

    def __repr__(self):
        return (
            f"<GcReport live={len(self.live_actors)}a/{len(self.live_spaces)}s "
            f"collected={len(self.collected_actors)}a/{len(self.collected_spaces)}s "
            f"kept_active={len(self.kept_active)}>"
        )


class GarbageCollector:
    """Mark-phase collector over the runtime's conservative world view.

    Parameters
    ----------
    directory:
        The visibility directory (container relation + registries).
    acquaintances:
        ``address -> set of addresses`` the actor knows (runtime-maintained).
    """

    __slots__ = ("directory", "acquaintances")

    def __init__(
        self,
        directory: Directory,
        acquaintances: Mapping[ActorAddress, set[MailAddress]],
    ):
        self.directory = directory
        self.acquaintances = acquaintances

    # -- mark ---------------------------------------------------------------------

    def mark(
        self,
        roots: Iterable[MailAddress],
        in_flight: Iterable[MailAddress] = (),
    ) -> tuple[set[ActorAddress], set[SpaceAddress]]:
        """Forward-reachable actors and spaces from ``roots`` + ``in_flight``.

        Propagation rules:

        * actor -> each acquaintance;
        * space -> every member visible in it (actors *and* nested spaces):
          a reachable space makes its members matchable, hence reachable.
        """
        live_actors: set[ActorAddress] = set()
        live_spaces: set[SpaceAddress] = set()
        stack: list[MailAddress] = list(roots) + list(in_flight)
        while stack:
            addr = stack.pop()
            if is_space_address(addr):
                if addr in live_spaces:
                    continue
                if not self.directory.has_space(addr):  # destroyed: not live
                    continue
                live_spaces.add(addr)  # type: ignore[arg-type]
                rec = self.directory.space(addr)  # type: ignore[arg-type]
                stack.extend(e.target for e in rec.entries())
            else:
                if addr in live_actors:
                    continue
                live_actors.add(addr)  # type: ignore[arg-type]
                stack.extend(self.acquaintances.get(addr, ()))  # type: ignore[arg-type]
        return live_actors, live_spaces

    def _can_reach(
        self,
        start: ActorAddress,
        goal_actors: set[ActorAddress],
        goal_spaces: set[SpaceAddress],
    ) -> bool:
        """Can ``start`` reach any live entity through acquaintance/space edges?"""
        seen: set[MailAddress] = {start}
        stack: list[MailAddress] = [start]
        while stack:
            addr = stack.pop()
            if addr != start and (addr in goal_actors or addr in goal_spaces):
                return True
            if is_space_address(addr):
                if self.directory.has_space(addr):  # type: ignore[arg-type]
                    rec = self.directory.space(addr)  # type: ignore[arg-type]
                    children = [e.target for e in rec.entries()]
                else:
                    children = []
            else:
                children = list(self.acquaintances.get(addr, ()))  # type: ignore[arg-type]
            for child in children:
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return False

    # -- collect ---------------------------------------------------------------------

    def collect(
        self,
        roots: Iterable[MailAddress],
        all_actors: Iterable[ActorAddress],
        active_actors: Iterable[ActorAddress] = (),
        in_flight: Iterable[MailAddress] = (),
    ) -> GcReport:
        """Run one collection cycle (mark only; the caller deletes).

        Parameters
        ----------
        roots:
            External handles held by the application driver.
        all_actors:
            Every live actor address in the system.
        active_actors:
            Actors with pending messages or scheduled work — candidates
            for the "can still reach the live computation" retention rule.
        in_flight:
            Addresses appearing in undelivered envelopes (targets, senders,
            payload-scanned addresses): per the paper, pending messages pin
            their contents.
        """
        report = GcReport()
        live_actors, live_spaces = self.mark(roots, in_flight)
        report.live_actors = set(live_actors)
        report.live_spaces = set(live_spaces)

        active = set(active_actors)
        for actor in all_actors:
            if actor in live_actors:
                continue
            if actor in active and self._can_reach(actor, live_actors, live_spaces):
                report.kept_active.add(actor)
                report.live_actors.add(actor)
            else:
                report.collected_actors.add(actor)

        # Spaces: no inverse reachability — simply unreachable means dead.
        for rec in self.directory.spaces():
            if rec.address not in live_spaces:
                report.collected_spaces.add(rec.address)
        return report
