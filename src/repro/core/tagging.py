"""Message tagging: the section-5.7 alternative cycle defence, app-level.

"An alternate strategy is to tag messages and compare tags with those of
previously sent messages.  This may offer a way of trapping cycles of
messages simply forwarded by actors as well."

The space-manager ``CyclePolicy.TAGGING`` traps *routing*-level loops by
hop budget; this module supplies the *application*-level half the quote
points at: actors that forward messages stamp them with their own
address, and refuse to forward a message that already carries their
stamp.  A two-actor forwarding loop then dies after one round instead of
spinning forever.

Usage inside a behavior::

    from repro.core.tagging import forward_once, seen_by_me

    def relay(ctx, message):
        if seen_by_me(ctx, message):
            return                       # trapped: we already forwarded this
        forward_once(ctx, "peers/*", message)

``forward_once`` preserves the full ``via`` chain, so diagnostics can see
the loop's shape; :func:`via_chain` extracts it.
"""

from __future__ import annotations

from typing import Any

from .actor import ActorContext
from .addresses import ActorAddress
from .messages import Destination, Message

#: Header key carrying the list of forwarders' addresses.
VIA = "via"


def via_chain(message: Message) -> tuple[ActorAddress, ...]:
    """The addresses that have forwarded this message, oldest first."""
    return tuple(message.headers.get(VIA, ()))


def seen_by_me(ctx: ActorContext, message: Message) -> bool:
    """Has *this* actor already forwarded this message?"""
    return ctx.self_address in via_chain(message)


def has_cycle(message: Message) -> bool:
    """Does the via chain already contain a repeat (any forwarder twice)?"""
    chain = via_chain(message)
    return len(set(chain)) != len(chain)


def forward_once(
    ctx: ActorContext,
    destination: "Destination | str",
    message: Message,
    *,
    broadcast: bool = False,
) -> bool:
    """Forward ``message`` pattern-wise unless this actor already did.

    Returns ``True`` when forwarded, ``False`` when trapped.  The sender's
    address is appended to the ``via`` chain; ``reply_to`` is preserved so
    the eventual receiver can still answer the originator.
    """
    if seen_by_me(ctx, message):
        return False
    headers = dict(message.headers)
    headers[VIA] = list(via_chain(message)) + [ctx.self_address]
    send = ctx.broadcast if broadcast else ctx.send
    send(destination, message.payload, reply_to=message.reply_to,
         headers=headers)
    return True


def forward_to(
    ctx: ActorContext,
    target: ActorAddress,
    message: Message,
) -> bool:
    """Point-to-point variant of :func:`forward_once`."""
    if seen_by_me(ctx, message):
        return False
    headers = dict(message.headers)
    headers[VIA] = list(via_chain(message)) + [ctx.self_address]
    ctx.send_to(target, message.payload, reply_to=message.reply_to,
                headers=headers)
    return True
