"""Actors: behaviors, ``become``, and the actor-side context API.

The actor primitives (paper section 4):

* ``create`` — make an actor from a behavior description and parameters;
* ``send to`` — asynchronous message to a known mail address;
* ``become`` — replace the actor's behavior for subsequent messages.

ActorSpace adds the pattern-directed primitives (section 5): ``send`` /
``broadcast`` with ``pattern@space`` destinations, ``create_actorspace``,
``make_visible`` / ``make_invisible`` / ``change_attributes``, and
``new_capability``.  Actors reach *all* of these through the
:class:`ActorContext` handed to their behavior on each message — the
behavior code itself never touches the runtime directly, which is what
lets the same behavior run on any node (and is the moral equivalent of
the prototype's ActorInterface).

A behavior is either:

* a subclass of :class:`Behavior` implementing ``receive``, or
* any callable ``fn(ctx, message)`` (wrapped by :class:`FunctionBehavior`).

``become`` accepts a new behavior; per the actor model it takes effect for
the *next* message, not the remainder of the current one.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Iterable

from .addresses import ActorAddress, MailAddress, SpaceAddress
from .atoms import AttributePath
from .capabilities import Capability
from .mailbox import Mailbox
from .messages import Destination, Message
from .patterns import Pattern


class ActorContext(abc.ABC):
    """The API surface an actor may use while processing a message.

    Concrete contexts are provided by the node coordinator; behaviors must
    treat this object as ephemeral (valid only during the current
    ``receive`` call).
    """

    # -- identity ---------------------------------------------------------------

    @property
    @abc.abstractmethod
    def self_address(self) -> ActorAddress:
        """This actor's own mail address (``self`` in the paper's examples)."""

    @property
    @abc.abstractmethod
    def host_space(self) -> SpaceAddress:
        """The actorSpace this actor was created in (section 7.1)."""

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """Current virtual time."""

    # -- classic actor primitives ---------------------------------------------

    @abc.abstractmethod
    def create(
        self,
        behavior: "Behavior | Callable",
        *args: Any,
        space: SpaceAddress | None = None,
        capability: Capability | None = None,
        node: int | None = None,
        **kwargs: Any,
    ) -> ActorAddress:
        """Create a new actor; returns its fresh mail address.

        ``space`` selects the host actorSpace (defaults to the creator's);
        ``capability`` binds a key controlling the new actor's visibility;
        ``node`` optionally pins placement (defaults to the creator's node).
        """

    @abc.abstractmethod
    def send_to(self, target: ActorAddress, payload: Any, *,
                reply_to: ActorAddress | None = None,
                headers: dict | None = None) -> None:
        """Point-to-point asynchronous send to an explicit mail address."""

    @abc.abstractmethod
    def become(self, behavior: "Behavior | Callable", *args: Any, **kwargs: Any) -> None:
        """Replace this actor's behavior, effective from the next message."""

    # -- ActorSpace primitives ---------------------------------------------------

    @abc.abstractmethod
    def send(self, destination: "Destination | str", payload: Any, *,
             reply_to: ActorAddress | None = None,
             headers: dict | None = None) -> None:
        """Pattern-directed send: one matching actor, chosen by the system."""

    @abc.abstractmethod
    def broadcast(self, destination: "Destination | str", payload: Any, *,
                  reply_to: ActorAddress | None = None,
                  headers: dict | None = None) -> None:
        """Pattern-directed broadcast: every matching actor receives it."""

    @abc.abstractmethod
    def create_actorspace(
        self,
        capability: Capability | None = None,
        *,
        space: SpaceAddress | None = None,
        attributes: "Iterable[AttributePath | str] | AttributePath | str | None" = None,
    ) -> SpaceAddress:
        """Create a new actorSpace; returns its unique mail address.

        ``capability`` authenticates future visibility operations inside
        the new space.  If ``attributes`` is given the new space is also
        made visible under them in ``space`` (defaulting to the creator's
        host space) as a convenience.
        """

    @abc.abstractmethod
    def make_visible(
        self,
        target: MailAddress,
        attributes: "Iterable[AttributePath | str] | AttributePath | str",
        space: SpaceAddress | None = None,
        capability: Capability | None = None,
    ) -> None:
        """Subject ``target`` to pattern matching in ``space`` under ``attributes``."""

    @abc.abstractmethod
    def make_invisible(
        self,
        target: MailAddress,
        space: SpaceAddress | None = None,
        capability: Capability | None = None,
    ) -> None:
        """Remove ``target`` from pattern matching in ``space``."""

    @abc.abstractmethod
    def change_attributes(
        self,
        target: MailAddress,
        attributes: "Iterable[AttributePath | str] | AttributePath | str",
        space: SpaceAddress | None = None,
        capability: Capability | None = None,
    ) -> None:
        """Replace the attributes under which ``target`` is visible in ``space``."""

    @abc.abstractmethod
    def new_capability(self) -> Capability:
        """Mint a fresh unforgeable capability (section 5.4)."""

    # -- misc ----------------------------------------------------------------------

    @abc.abstractmethod
    def terminate(self) -> None:
        """Mark this actor finished; it will accept no further messages."""

    @abc.abstractmethod
    def schedule(self, delay: float, payload: Any) -> None:
        """Send ``payload`` to *self* after ``delay`` units of virtual time."""


class Behavior(abc.ABC):
    """A behavior description: the code + state an actor runs per message."""

    @abc.abstractmethod
    def receive(self, ctx: ActorContext, message: Message) -> None:
        """Process one message.  All effects go through ``ctx``."""

    def on_start(self, ctx: ActorContext) -> None:
        """Hook run once when an actor is created with this behavior.

        The default does nothing.  ``become`` does *not* re-run it.
        """

    def __repr__(self):
        return f"<{type(self).__name__}>"


class FunctionBehavior(Behavior):
    """Adapter turning a plain callable ``fn(ctx, message)`` into a behavior."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[ActorContext, Message], None]):
        if not callable(fn):
            raise TypeError(f"behavior function must be callable, got {fn!r}")
        self.fn = fn

    def receive(self, ctx: ActorContext, message: Message) -> None:
        self.fn(ctx, message)

    def __repr__(self):
        name = getattr(self.fn, "__name__", repr(self.fn))
        return f"<FunctionBehavior {name}>"


def as_behavior(behavior: "Behavior | Callable", *args: Any, **kwargs: Any) -> Behavior:
    """Coerce ``behavior`` to a :class:`Behavior` instance.

    Accepts a ``Behavior`` instance (args must then be empty), a
    ``Behavior`` subclass (instantiated with the given args), or a plain
    callable (wrapped; args must be empty).
    """
    if isinstance(behavior, Behavior):
        if args or kwargs:
            raise TypeError("args given with an already-instantiated Behavior")
        return behavior
    if isinstance(behavior, type) and issubclass(behavior, Behavior):
        return behavior(*args, **kwargs)
    if callable(behavior):
        if args or kwargs:
            raise TypeError("args given with a function behavior")
        return FunctionBehavior(behavior)
    raise TypeError(f"not a behavior: {behavior!r}")


class ActorRecord:
    """The runtime's record of one live actor (internal).

    Holds the current behavior, the mailbox, and lifecycle flags.  This is
    deliberately separate from :class:`Behavior` (pure user code) and from
    the address (a pure value): the record is the *only* mutable runtime
    state per actor.
    """

    __slots__ = (
        "address",
        "behavior",
        "pending_behavior",
        "mailbox",
        "node",
        "host_space",
        "capability",
        "terminated",
        "processed_count",
        "created_at",
    )

    def __init__(
        self,
        address: ActorAddress,
        behavior: Behavior,
        node: int,
        host_space: SpaceAddress,
        capability: Capability | None = None,
        created_at: float = 0.0,
    ):
        self.address = address
        self.behavior = behavior
        #: Behavior staged by ``become``, installed before the next message.
        self.pending_behavior: Behavior | None = None
        self.mailbox = Mailbox()
        self.node = node
        self.host_space = host_space
        self.capability = capability
        self.terminated = False
        self.processed_count = 0
        self.created_at = created_at

    def stage_become(self, behavior: Behavior) -> None:
        """Stage ``behavior`` to take effect for the next message."""
        self.pending_behavior = behavior

    def install_pending(self) -> None:
        """Install a staged behavior (called by the scheduler between messages)."""
        if self.pending_behavior is not None:
            self.behavior = self.pending_behavior
            self.pending_behavior = None

    def __repr__(self):
        flags = " terminated" if self.terminated else ""
        return f"<ActorRecord {self.address!r} {self.behavior!r}{flags}>"
