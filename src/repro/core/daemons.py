"""Monitoring daemons: the section-8 manager extension.

"More powerful managers could use daemons to monitor actors in an
actorSpace and update attributes in order to maintain specified
coordination constraints."

A :class:`AttributeDaemon` periodically observes every actor visible in
one actorSpace and rewrites the *managed suffix* of its attributes from a
policy function.  Actors keep their stable identity attributes; the
daemon appends derived ones (``.../load/low``, ``.../state/draining``)
that senders can match on — coordination constraints become ordinary
destination patterns.

Because actorSpaces are passive and actors are encapsulated ("actors ...
should not be sent arbitrary bookkeeping messages", section 5.7), the
daemon runs with *manager privilege*: it holds the capability for the
space and performs ``change_attributes`` through the ordinary replicated
operation stream, so its updates are totally ordered with everyone
else's.

The module also provides :class:`ConstraintRule` helpers for the common
cases (thresholded metrics, predicates) and a :func:`load_metric` that
reads the same queue-depth signal the ``LEAST_LOADED`` arbitration uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from .actor import ActorContext, Behavior
from .addresses import ActorAddress, SpaceAddress
from .atoms import AttributePath, as_path
from .capabilities import Capability
from .messages import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.system import ActorSpaceSystem


@dataclass(frozen=True)
class ConstraintRule:
    """One managed attribute: a name plus a classifier over observations.

    ``classify(observation) -> str | None`` returns the value atom to
    publish under ``prefix`` (e.g. ``low``/``high``), or ``None`` to
    publish nothing for this actor.
    """

    prefix: str
    classify: Callable[[dict], str | None]

    def derived(self, observation: dict) -> AttributePath | None:
        value = self.classify(observation)
        if value is None:
            return None
        return as_path(self.prefix) / value


def threshold_rule(prefix: str, metric: str, low_max: float,
                   high_min: float | None = None) -> ConstraintRule:
    """Classify a numeric metric into ``low`` / ``mid`` / ``high`` atoms.

    ``high_min`` defaults to ``low_max`` (two bands, no ``mid``).
    """
    cut_high = low_max if high_min is None else high_min

    def classify(observation: dict) -> str | None:
        value = observation.get(metric)
        if value is None:
            return None
        if value <= low_max:
            return "low"
        if value > cut_high:
            return "high"
        return "mid"

    return ConstraintRule(prefix, classify)


def predicate_rule(prefix: str, value: str,
                   predicate: Callable[[dict], bool]) -> ConstraintRule:
    """Publish ``prefix/value`` exactly when ``predicate`` holds."""

    def classify(observation: dict) -> str | None:
        return value if predicate(observation) else None

    return ConstraintRule(prefix, classify)


class AttributeDaemon(Behavior):
    """An actor that maintains derived attributes in one space.

    Parameters
    ----------
    space:
        The monitored actorSpace.
    rules:
        The managed attributes.
    observe:
        ``(system-like observer, actor-address) -> dict`` producing the
        observation a rule classifies.  The default reads queue depth.
    capability:
        The manager key authorizing attribute changes in ``space``.
    period:
        Virtual time between sweeps.
    managed_prefixes:
        Attribute prefixes the daemon owns: it replaces those and only
        those, preserving every identity attribute the actor set itself.
        Defaults to the rules' prefixes.
    """

    def __init__(
        self,
        space: SpaceAddress,
        rules: Iterable[ConstraintRule],
        observe: Callable[["ActorSpaceSystem", ActorAddress], dict],
        capability: Capability | None = None,
        period: float = 0.5,
        system: "ActorSpaceSystem | None" = None,
        max_sweeps: int | None = None,
    ):
        self.space = space
        self.rules = list(rules)
        self.observe = observe
        self.capability = capability
        self.period = period
        self.system = system  # injected by install_daemon
        #: Retire after this many sweeps (None = run until stopped).  A
        #: perpetual daemon keeps the event queue non-empty, so bounded
        #: experiment drivers either set this or use ``run(until=...)``.
        self.max_sweeps = max_sweeps
        self.sweeps = 0
        self.updates = 0
        self._managed = [as_path(r.prefix) for r in self.rules]

    # -- behavior protocol ------------------------------------------------------

    def on_start(self, ctx: ActorContext) -> None:
        ctx.schedule(self.period, ("sweep",))

    def receive(self, ctx: ActorContext, message: Message) -> None:
        kind = message.payload[0] if isinstance(message.payload, tuple) else message.payload
        if kind == "sweep":
            alive = self._sweep(ctx)
            if not alive:
                return
            if self.max_sweeps is not None and self.sweeps >= self.max_sweeps:
                ctx.terminate()
            else:
                ctx.schedule(self.period, ("sweep",))
        elif kind == "stop":
            ctx.terminate()

    # -- the sweep ------------------------------------------------------------------

    def _is_managed(self, path: AttributePath) -> bool:
        return any(path.startswith(prefix) for prefix in self._managed)

    def _sweep(self, ctx: ActorContext) -> bool:
        """Observe every visible actor; rewrite its managed attributes.

        Returns ``False`` when the daemon retired itself (space gone).
        """
        assert self.system is not None, "daemon not installed via install_daemon"
        self.sweeps += 1
        directory = self.system.coordinators[0].directory
        if not directory.has_space(self.space):
            ctx.terminate()
            return False
        rec = directory.space(self.space)
        sweep_updates = 0
        for entry in list(rec.actor_entries()):
            observation = self.observe(self.system, entry.target)  # type: ignore[arg-type]
            stable = {a for a in entry.attributes if not self._is_managed(a)}
            derived = set()
            for rule in self.rules:
                path = rule.derived(observation)
                if path is not None:
                    derived.add(path)
            desired = frozenset(stable | derived)
            if desired != entry.attributes and desired:
                self.updates += 1
                sweep_updates += 1
                ctx.change_attributes(entry.target, desired, self.space,
                                      self.capability)
        if sweep_updates:
            self.system.tracer.on_daemon_fired(
                0, self.system.clock.now, self.space, sweep_updates,
                kind="poll",
            )
        return True

    def __repr__(self):
        return f"<AttributeDaemon space={self.space!r} rules={len(self.rules)}>"


def queue_depth_observation(system: "ActorSpaceSystem",
                            address: ActorAddress) -> dict:
    """Default observation: pending + in-flight messages for the actor."""
    record = system.coordinators[address.node].actors.get(address)
    queued = record.mailbox.pending if record is not None else 0
    en_route = sum(
        1 for e in system.in_flight.values() if e.target == address
    )
    processed = record.processed_count if record is not None else 0
    return {"queue": queued + en_route, "processed": processed}


class EventDrivenDaemon:
    """A section-8 daemon driven by the flight recorder's event stream.

    Where :class:`AttributeDaemon` *polls* every ``period`` — observing
    every visible actor whether or not anything changed — this daemon
    subscribes to the system's :class:`~repro.runtime.eventlog.EventLog`
    and re-classifies an actor exactly when its observable state moved:
    on ``enqueued`` (mail arrived; queue-up edge) and ``invoked`` (a
    message left the mailbox for processing; queue-down edge).  Between
    those edges the queue depth cannot change, so event triggering loses
    nothing relative to polling while doing no idle work.

    Requires the system to be constructed with ``trace=True`` (or an
    explicit event log); updates flow through the same replicated
    ``change_attributes`` stream as the polling daemon's, so they stay
    totally ordered with everyone else's visibility changes.

    The daemon is a plain subscriber, not an actor: it represents the
    *manager's* monitoring infrastructure, which the paper places outside
    the actor population.  Call :meth:`close` to detach it.
    """

    def __init__(
        self,
        system: "ActorSpaceSystem",
        space: SpaceAddress,
        rules: Iterable[ConstraintRule],
        capability: Capability | None = None,
        observe: Callable[["ActorSpaceSystem", ActorAddress], dict] | None = None,
    ):
        if not system.event_log.enabled:
            raise ValueError(
                "EventDrivenDaemon needs the flight recorder: construct the "
                "system with trace=True (or install an enabled EventLog)"
            )
        self.system = system
        self.space = space
        self.rules = list(rules)
        self.capability = capability
        self.observe = observe or queue_depth_observation
        #: Events that concerned an actor visible in the monitored space.
        self.reactions = 0
        #: Attribute rewrites actually issued.
        self.updates = 0
        self._managed = [as_path(r.prefix) for r in self.rules]
        #: Last attribute set *submitted* per target.  Replicas apply ops
        #: with bus latency, so comparing desired attributes against the
        #: applied entry would race our own in-flight updates and skip
        #: the final corrective rewrite when edges arrive in a burst.
        self._last_desired: dict[ActorAddress, frozenset] = {}
        self._unsubscribe = system.event_log.subscribe(self._on_event)
        self._closed = False
        # Prime the derived attributes for actors already in the space:
        # until the first mailbox edge fires there would otherwise be no
        # ``load/...`` attributes for senders to match on.
        directory = system.coordinators[0].directory
        if directory.has_space(space):
            for entry in list(directory.space(space).actor_entries()):
                if isinstance(entry.target, ActorAddress):
                    self._reclassify(entry.target, entry)

    def close(self) -> None:
        """Detach from the event stream (idempotent)."""
        if not self._closed:
            self._closed = True
            self._unsubscribe()

    def _is_managed(self, path: AttributePath) -> bool:
        return any(path.startswith(prefix) for prefix in self._managed)

    def _on_event(self, event) -> None:
        if event.kind not in ("enqueued", "invoked"):
            return
        target = event.data.get("receiver") or event.data.get("actor")
        if not isinstance(target, ActorAddress):
            return
        directory = self.system.coordinators[0].directory
        if not directory.has_space(self.space):
            self.close()
            return
        entry = directory.space(self.space).lookup(target)
        if entry is None:
            return
        self.reactions += 1
        self._reclassify(target, entry)

    def _reclassify(self, target: ActorAddress, entry) -> None:
        observation = self.observe(self.system, target)
        stable = {a for a in entry.attributes if not self._is_managed(a)}
        derived = set()
        for rule in self.rules:
            path = rule.derived(observation)
            if path is not None:
                derived.add(path)
        desired = frozenset(stable | derived)
        current = self._last_desired.get(target, entry.attributes)
        if desired != current and desired:
            self.updates += 1
            self._last_desired[target] = desired
            self.system.change_attributes(target, desired, self.space,
                                          self.capability)
            self.system.tracer.on_daemon_fired(
                0, self.system.clock.now, self.space, 1, kind="event",
            )

    def __repr__(self):
        state = "closed" if self._closed else "live"
        return (
            f"<EventDrivenDaemon space={self.space!r} {state} "
            f"reactions={self.reactions} updates={self.updates}>"
        )


def install_event_daemon(
    system: "ActorSpaceSystem",
    space: SpaceAddress,
    rules: Iterable[ConstraintRule],
    capability: Capability | None = None,
    observe: Callable[["ActorSpaceSystem", ActorAddress], dict] | None = None,
) -> EventDrivenDaemon:
    """Attach an :class:`EventDrivenDaemon` to ``space``.

    The event-driven twin of :func:`install_daemon`: no period — it
    reacts to the flight recorder's mailbox edges instead of sweeping.
    Returns the daemon; call its :meth:`~EventDrivenDaemon.close` to
    retire it.
    """
    return EventDrivenDaemon(system, space, rules, capability=capability,
                             observe=observe)


def install_daemon(
    system: "ActorSpaceSystem",
    space: SpaceAddress,
    rules: Iterable[ConstraintRule],
    capability: Capability | None = None,
    period: float = 0.5,
    observe: Callable[["ActorSpaceSystem", ActorAddress], dict] | None = None,
    node: int = 0,
    max_sweeps: int | None = None,
) -> ActorAddress:
    """Create and start an :class:`AttributeDaemon` for ``space``.

    Returns the daemon's mail address (send ``"stop"`` to retire it).
    A running daemon keeps the event queue non-empty; drivers that rely
    on ``system.run()`` draining to quiescence should pass ``max_sweeps``
    or use ``system.run(until=...)``.
    """
    daemon = AttributeDaemon(
        space,
        rules,
        observe or queue_depth_observation,
        capability=capability,
        period=period,
        system=system,
        max_sweeps=max_sweeps,
    )
    return system.create_actor(daemon, node=node)
