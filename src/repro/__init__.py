"""Reproduction of *ActorSpace: An Open Distributed Programming Paradigm*
(Gul Agha & Christian J. Callsen, PPOPP 1993).

The package provides:

* ``repro.core`` — the ActorSpace semantics (patterns, visibility,
  capabilities, managers, GC) as pure, runtime-independent model logic;
* ``repro.runtime`` — a deterministic discrete-event simulation of the
  paper's section-7 architecture (coordinators, bus, nodes, transports);
* ``repro.interp`` — the prototype's small behavior-script interpreter;
* ``repro.baselines`` — the section-3 comparison systems (Linda, name
  server, static groups, Concurrent Aggregates);
* ``repro.apps`` — the applications used by the examples and experiments.

Quickstart::

    from repro import ActorSpaceSystem, Topology

    system = ActorSpaceSystem(topology=Topology.lan(4), seed=1)

    def greeter(ctx, message):
        print("hello,", message.payload)

    actor = system.create_actor(greeter, node=1)
    system.make_visible(actor, "services/greeter")
    system.send("services/*", "world")
    system.run()
"""

from repro.core import (
    ANY,
    ANYWHERE,
    ActorAddress,
    ActorContext,
    ActorSpaceError,
    Arbitration,
    AttributePath,
    Behavior,
    Capability,
    CapabilityError,
    CyclePolicy,
    Destination,
    FunctionBehavior,
    Message,
    NoMatchError,
    Pattern,
    SpaceAddress,
    SpaceManager,
    UnmatchedPolicy,
    VisibilityCycleError,
    parse_destination,
    parse_pattern,
)
from repro.runtime import (
    ActorSpaceSystem,
    EventLog,
    JsonlSink,
    LatencyModel,
    MetricsRegistry,
    Topology,
)

__version__ = "1.0.0"

__all__ = [
    "ANY",
    "ANYWHERE",
    "ActorAddress",
    "ActorContext",
    "ActorSpaceError",
    "ActorSpaceSystem",
    "Arbitration",
    "AttributePath",
    "Behavior",
    "Capability",
    "CapabilityError",
    "CyclePolicy",
    "Destination",
    "EventLog",
    "FunctionBehavior",
    "JsonlSink",
    "LatencyModel",
    "Message",
    "MetricsRegistry",
    "NoMatchError",
    "Pattern",
    "SpaceAddress",
    "SpaceManager",
    "Topology",
    "UnmatchedPolicy",
    "VisibilityCycleError",
    "parse_destination",
    "parse_pattern",
    "__version__",
]
