"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``demo``
    Run the quickstart scenario inline (no file paths needed).
``examples``
    List the example scripts shipped in ``examples/``.
``experiments``
    List the experiment benchmarks and what each reproduces.
``trace <example> [--out FILE] [--crash T:NODE ...] [--recover T:NODE ...]``
    Run an example with the flight recorder on and export a Chrome
    ``trace_event`` file (open in chrome://tracing or Perfetto).
    ``--crash``/``--recover`` (repeatable) inject a node crash or
    recovery at virtual time ``T`` into every system the example
    builds — failure drills on unmodified examples.
``trace --cluster [--cluster-file DIR|FILE] [--out FILE]``
    Attach to a *running* TCP cluster instead, merge every node's
    flight recorder onto one clock-aligned timeline, and export a
    single Chrome trace with cross-node flow arrows.
``top [--cluster-file DIR|FILE | --ports P0,P1,...] [--interval S]``
    Live per-node telemetry view of a running TCP cluster: actors,
    queues, wire-frame rates, shed/batch counters, clock offsets,
    and wire-path stage-latency histograms.
``check [--seeds N] [--walks N] [--explore N] [--inject NAME] ...``
    Conformance sweep: co-execute generated scenarios against the
    executable §5 reference model, diff observable state at every
    quiescent boundary, and shrink any divergence to a replayable
    ``.repro.json`` artifact (``--replay FILE`` re-runs one).
    ``--transport tcp`` additionally diffs a real localhost TCP
    cluster against the single-process oracle.
``serve --node I --ports P0,P1,... [--seed N] [--heartbeat S]``
    Run ONE node as this process, speaking the framed TCP protocol
    (normally spawned by ``cluster``, but usable standalone).
``cluster <example> [--nodes N] [--stall NODE | --kill NODE] [--out DIR]``
    Spawn N localhost node processes, run a shipped example across
    them over real sockets, optionally drill a mid-run node failure
    (quarantine + dead-letter redelivery), and collect snapshots.
``replay <data-dir> [--until SEQ] [--diff A:B] [--check] [...]``
    Offline time-travel debugger: re-drive a node's persisted
    visibility log (``serve --data-dir``) deterministically, inspect
    the directory at any seq, diff two points in history, run the
    conformance oracle over the log, and export a Chrome trace.
``durability [--nodes N] [--wave N] [--probes N] [--out DIR]``
    Total-crash drill: SIGKILL a whole TCP cluster mid-traffic and
    prove it recovers from its data directories — directories equal
    the pre-crash state, dead letters re-adopted, zero silent loss.
``shard [--nodes N] [--shards K] [--rebalance] [--kill-sequencers]``
    Partitioned-visibility-plane drill over TCP: shard-affine spaces,
    per-shard sequencing load, an optional live sequencer rebalance
    and per-shard sequencer-kill failovers — directories stay
    coherent and message conservation closes (zero silent loss).
``version``
    Print the package version.
"""

from __future__ import annotations

import sys
from pathlib import Path

EXPERIMENTS = [
    ("E1", "Fig. 1 / §6", "dynamic process pool", "test_bench_e1_process_pool"),
    ("E2", "§5.3", "send() load-balances replicas", "test_bench_e2_load_balance"),
    ("E3", "§5.3", "broadcast bounds prune TSP", "test_bench_e3_tsp"),
    ("E4", "§6", "nested spaces localize traffic", "test_bench_e4_nesting"),
    ("E5", "§3", "ActorSpace vs Linda", "test_bench_e5_linda"),
    ("E6", "§5.6", "unmatched-message policies", "test_bench_e6_suspension"),
    ("E7", "§5.7", "cycle prevention cost", "test_bench_e7_cycles"),
    ("E8", "§5.5", "garbage collection", "test_bench_e8_gc"),
    ("E9", "Fig. 3 / §7.3", "coordinator-bus coherence", "test_bench_e9_bus"),
    ("E10", "§5.1/§7.1", "pattern matching at scale", "test_bench_e10_matching"),
    ("E11", "§1/§5.3", "replication for reliability", "test_bench_e11_reliability"),
    ("E12", "§1", "software repository retrieval", "test_bench_e12_repository"),
    ("E13", "Fig. 2 / §7.2", "interpreter pipeline", "test_bench_e13_interp"),
    ("E14", "§1", "diffusion scheduling", "test_bench_e14_diffusion"),
    ("E15", "§8", "monitoring daemons", "test_bench_e15_daemons"),
    ("E16", "§5.3", "cost of ordering broadcasts", "test_bench_e16_ordering"),
    ("E17", "(modern)", "patterns vs topic pub/sub", "test_bench_e17_pubsub"),
]

EXAMPLES = [
    ("quickstart.py", "the paradigm in five scenes"),
    ("process_pool.py", "Figure 1: masterless divide-and-conquer"),
    ("tsp_search.py", "bound broadcasting prunes search"),
    ("replicated_service.py", "load balance + crash tolerance"),
    ("software_repository.py", "interface-attribute retrieval"),
    ("script_actors.py", "the behavior-script interpreter"),
    ("linda_vs_actorspace.py", "suspension vs polling"),
    ("contract_net.py", "open expert marketplace"),
]


def _demo() -> int:
    from repro import ActorSpaceSystem, Topology

    print("ActorSpace demo: pattern-directed coordination on a 3-node LAN\n")
    system = ActorSpaceSystem(topology=Topology.lan(3), seed=0)

    def worker(name):
        def behavior(ctx, message):
            print(f"  [{name}] handled {message.payload!r} at t={ctx.now:.3f}")
        return behavior

    for i in range(3):
        addr = system.create_actor(worker(f"w{i}"), node=i)
        system.make_visible(addr, f"pool/w{i}")
    system.run()
    print("send('pool/*') x3 — one arbitrary worker each:")
    for i in range(3):
        system.send("pool/*", ("job", i))
    system.run()
    print("broadcast('pool/**') — everyone:")
    system.broadcast("pool/**", "shutdown-warning")
    system.run()
    print(f"\nreplicas coherent: {system.replicas_coherent()}  "
          f"virtual time: {system.clock.now:.3f}")
    return 0


def examples_dir() -> Path:
    """The shipped ``examples/`` directory (repo layout)."""
    return Path(__file__).resolve().parents[2] / "examples"


def experiments_drift() -> tuple[list[str], list[str]]:
    """Compare the EXPERIMENTS table against ``benchmarks/`` on disk.

    Returns ``(missing, untracked)``: table entries with no benchmark
    file, and ``test_bench_e*.py`` files absent from the table.  Both
    empty means the table is in sync (the CI drift check asserts this).
    """
    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
    listed = {target for _, _, _, target in EXPERIMENTS}
    on_disk = {p.stem for p in bench_dir.glob("test_bench_e*.py")}
    missing = sorted(listed - on_disk)
    untracked = sorted(on_disk - listed)
    return missing, untracked


def _parse_fault_schedule(args: list[str], flag: str) -> "list[tuple[float, int]] | None":
    """Collect repeatable ``flag T:NODE`` occurrences; ``None`` on a bad spec."""
    schedule: list[tuple[float, int]] = []
    for idx, arg in enumerate(args):
        if arg != flag:
            continue
        if idx + 1 >= len(args):
            print(f"trace: {flag} needs a T:NODE argument", file=sys.stderr)
            return None
        spec = args[idx + 1]
        t_text, sep, node_text = spec.partition(":")
        try:
            if not sep:
                raise ValueError(spec)
            schedule.append((float(t_text), int(node_text)))
        except ValueError:
            print(f"trace: bad {flag} spec {spec!r} (expected T:NODE, "
                  f"e.g. {flag} 0.5:2)", file=sys.stderr)
            return None
    return schedule


def _trace(args: list[str]) -> int:
    """Run an example under the flight recorder; export a Chrome trace."""
    import runpy

    from repro.runtime.eventlog import chrome_trace, validate_chrome_trace
    from repro.runtime.system import ActorSpaceSystem

    if not args or args[0].startswith("-"):
        print("usage: python -m repro trace <example.py> [--out FILE] "
              "[--crash T:NODE ...] [--recover T:NODE ...]",
              file=sys.stderr)
        return 2
    script = Path(args[0])
    if not script.exists():
        candidate = examples_dir() / script.name
        if candidate.exists():
            script = candidate
        else:
            print(f"trace: no such example: {args[0]}", file=sys.stderr)
            return 2
    out = Path("run.trace.json")
    if "--out" in args:
        idx = args.index("--out")
        if idx + 1 >= len(args):
            print("trace: --out needs a file argument", file=sys.stderr)
            return 2
        out = Path(args[idx + 1])
    crashes = _parse_fault_schedule(args, "--crash")
    recoveries = _parse_fault_schedule(args, "--recover")
    if crashes is None or recoveries is None:
        return 2

    # Force the flight recorder on for every system the example builds,
    # whatever arguments the script itself passes; arm any requested
    # crash/recovery schedule on each of them.
    systems: list[ActorSpaceSystem] = []
    original_init = ActorSpaceSystem.__init__

    def traced_init(self, *a, **kw):
        kw["trace"] = True
        original_init(self, *a, **kw)
        systems.append(self)
        node_count = self.topology.node_count
        for t, node in crashes:
            if 0 <= node < node_count:
                self.events.schedule(t, lambda s=self, n=node: s.crash_node(n))
        for t, node in recoveries:
            if 0 <= node < node_count:
                self.events.schedule(t, lambda s=self, n=node: s.recover_node(n))

    ActorSpaceSystem.__init__ = traced_init
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        ActorSpaceSystem.__init__ = original_init

    if not systems:
        print("trace: the example never constructed an ActorSpaceSystem",
              file=sys.stderr)
        return 1
    events = [e for system in systems for e in system.event_log]
    events.sort(key=lambda e: (e.t, e.seq))
    trace = chrome_trace(events)
    problems = validate_chrome_trace(trace)
    if problems:
        for problem in problems[:10]:
            print(f"trace: invalid output: {problem}", file=sys.stderr)
        return 1
    import json

    out.write_text(json.dumps(trace))
    print(f"trace: {len(events)} events from {len(systems)} system(s) "
          f"-> {out} ({len(trace['traceEvents'])} trace records)")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    command = args[0] if args else "help"
    if command == "demo":
        return _demo()
    if command == "examples":
        print("Example scripts (run with: python examples/<name>):")
        for name, blurb in EXAMPLES:
            print(f"  {name:26s} {blurb}")
        return 0
    if command == "experiments":
        print("Experiments (run with: pytest benchmarks/<file>.py "
              "--benchmark-only -s):")
        for exp, anchor, blurb, target in EXPERIMENTS:
            print(f"  {exp:4s} {anchor:14s} {blurb:34s} {target}")
        return 0
    if command == "trace":
        if "--cluster" in args[1:]:
            from repro.net.top import cluster_trace_main

            rest = [a for a in args[1:] if a != "--cluster"]
            return cluster_trace_main(rest)
        return _trace(args[1:])
    if command == "top":
        from repro.net.top import top_main

        return top_main(args[1:])
    if command == "check":
        from repro.check.cli import run_check

        return run_check(args[1:])
    if command == "serve":
        from repro.net.cluster import serve_main

        return serve_main(args[1:])
    if command == "cluster":
        from repro.net.cluster import cluster_main

        return cluster_main(args[1:])
    if command == "replay":
        from repro.store.replay import replay_main

        return replay_main(args[1:])
    if command == "durability":
        from repro.net.cluster import durability_main

        return durability_main(args[1:])
    if command == "shard":
        from repro.net.cluster import shard_main

        return shard_main(args[1:])
    if command == "version":
        from repro import __version__

        print(__version__)
        return 0
    print(__doc__)
    return 0 if command in ("help", "-h", "--help") else 1


if __name__ == "__main__":
    raise SystemExit(main())
