"""The conformance oracle: co-execute runtime and reference model.

One :class:`~repro.check.scenario.Scenario` is executed twice at once —
against a full :class:`~repro.runtime.system.ActorSpaceSystem` and against
the naive :class:`~repro.check.model.ReferenceModel` — and their
observable state is diffed at every quiescent boundary:

* per-replica **visibility directories** (every live node against the
  model's single directory);
* per-origin **park sets** (§5.6): suspended message order and persistent
  broadcasts' delivered sets;
* **dead letters** pending per destination node;
* **resolution probes** on every live replica;
* **GC reachability** (§5.5): the collected actor/space sets of a
  non-destructive cycle;
* final **delivery multisets**: what was routed and what was enqueued,
  per (message, receiver).

Recorded nondeterminism
-----------------------

The runtime's genuinely free choices are *recorded* and *validated*, not
predicted: the bus log supplies the total order of visibility ops the
model replays; each ``send``'s routed receiver is captured at its first
hop and checked for membership in the model's legal group; quarantine
masks (detector timing) are resynced from the live replicas at each
boundary.  Everything else must coincide exactly.

Boundaries are implicit: the executor settles the simulation whenever
the command class changes (visibility burst -> message burst, anything ->
control) — so deleting any single command, as the shrinker does, still
yields a well-formed trace with the same boundary discipline.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.errors import ActorSpaceError
from repro.core.mailbox import DEFAULT_MAILBOX_CAPACITY
from repro.core.manager import SpaceManager, UnmatchedPolicy
from repro.core.messages import Destination
from repro.runtime.network import LatencyModel, Topology
from repro.runtime.system import ActorSpaceSystem

from .model import ReferenceModel
from .scenario import COMMAND_CLASS, Scenario

#: Per-settle event budget; a boundary that cannot drain within this is
#: itself a conformance failure (livelock / runaway feedback).
MAX_EVENTS = 200_000


@dataclass
class Divergence:
    """One observable disagreement between runtime and model."""

    command_index: int  #: index into ``scenario.commands`` (or -1: final audit)
    kind: str           #: e.g. "directory", "arbitration", "parked", "gc"
    detail: str

    def __str__(self):
        return f"[cmd {self.command_index}] {self.kind}: {self.detail}"


@dataclass
class ConformanceReport:
    scenario: Scenario
    divergences: list[Divergence] = field(default_factory=list)
    commands_run: int = 0
    boundaries: int = 0
    crashes: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.divergences)} divergence(s)"
        return (
            f"seed={self.scenario.seed} bus={self.scenario.bus} "
            f"nodes={self.scenario.nodes} unmatched={self.scenario.unmatched} "
            f"commands={self.commands_run}/{len(self.scenario)} "
            f"boundaries={self.boundaries} -> {verdict}"
        )


def _sink(ctx, message):
    """Behavior of every scenario actor: consume silently."""


def _msg_of(envelope) -> int | None:
    payload = getattr(envelope.message, "payload", None)
    if isinstance(payload, dict):
        return payload.get("m")
    return None


class _Recorder:
    """Captures the runtime's routing choices and deliveries.

    Hops are recorded once per envelope (a dead letter's redelivery hops
    the *same* envelope again — the routing choice it validates was made
    at first routing); enqueues count every mailbox acceptance.
    """

    def __init__(self):
        self.routes: dict[int, list] = {}  #: msg -> [target addresses], hop order
        self.enqueued: Counter = Counter()  #: (msg, target address) -> count
        self._hopped: set[int] = set()

    def install(self, tracer) -> None:
        orig_hop = tracer.on_hop
        orig_enq = tracer.on_enqueued

        def on_hop(kind, envelope=None, **kw):
            if envelope is not None and envelope.envelope_id not in self._hopped:
                self._hopped.add(envelope.envelope_id)
                msg = _msg_of(envelope)
                if msg is not None and envelope.target is not None:
                    self.routes.setdefault(msg, []).append(envelope.target)
            return orig_hop(kind, envelope, **kw)

        def on_enqueued(envelope=None, **kw):
            msg = _msg_of(envelope)
            receiver = kw.get("receiver")
            if msg is not None and receiver is not None:
                self.enqueued[(msg, receiver)] += 1
            return orig_enq(envelope, **kw)

        tracer.on_hop = on_hop
        tracer.on_enqueued = on_enqueued


class _Run:
    """One co-execution of a scenario."""

    def __init__(self, scenario: Scenario, tiebreaker=None, inject=None,
                 shards: int = 1):
        self.scenario = scenario
        policy = UnmatchedPolicy[scenario.unmatched.upper()]
        shard_kwargs = {}
        if shards > 1:
            # Partitioned plane under check: co-locate every shard's
            # sequencer on node 0.  With the jitter-free equal latencies
            # below, every replica then receives ops in exactly the
            # cross-shard journal order the sequencing node committed, so
            # the model can replay the journal as *the* recorded order.
            shard_kwargs = {"shards": shards, "shard_sequencer": 0}
        self.system = ActorSpaceSystem(
            topology=Topology.lan(scenario.nodes),
            seed=scenario.seed,
            bus=scenario.bus,
            **shard_kwargs,
            # Quantized, jitter-free latencies: every hop takes the same
            # virtual time, so events that §5.3 leaves unordered actually
            # *tie* in the queue — that is the schedule space the
            # tiebreakers explore.  Jittered latencies would serialize it.
            latency_model=LatencyModel(local=0.1, lan=0.1, wan=0.1, jitter=0.0),
            root_manager_factory=lambda: SpaceManager(unmatched=policy),
            # Bounded-but-roomy mailboxes, matching the TCP runtime's
            # default: far above any conformance trace's depth, so the
            # bound is semantically invisible — which is itself part of
            # what a conformance run now certifies.
            mailbox_capacity=DEFAULT_MAILBOX_CAPACITY,
        )
        self.system.events.tiebreaker = tiebreaker
        self._teardown = inject(self.system) if inject is not None else None
        self.recorder = _Recorder()
        self.recorder.install(self.system.tracer)
        self.name2addr = {"ROOT": self.system.root_space}
        self.addr2name = {self.system.root_space: "ROOT"}
        self.model = ReferenceModel(
            nodes=scenario.nodes, unmatched=scenario.unmatched,
            addr_key=lambda name: self.name2addr[name],
        )
        self.report = ConformanceReport(scenario=scenario)
        self._op_cursor = 0
        # Sharded replay mirrors the coordinators' dependency parking:
        # spaces the model has *heard of* (live or destroyed) and vis ops
        # waiting for their containing space's ADD to cross shards.
        self._known_spaces: set[str] = set()
        self._space_waiting: dict[str, list[tuple[str, dict]]] = {}

    # -- divergence plumbing ------------------------------------------------

    def _diverge(self, index: int, kind: str, detail: str) -> None:
        self.report.divergences.append(Divergence(index, kind, detail))

    def _drain_model(self, index: int) -> None:
        for text in self.model.divergences:
            self._diverge(index, "arbitration", text)
        self.model.divergences.clear()

    def _choice_for(self, msg: int):
        routed = self.recorder.routes.get(msg)
        if not routed:
            return None
        return self.addr2name.get(routed[0])

    # -- execution ----------------------------------------------------------

    def execute(self) -> ConformanceReport:
        try:
            self._execute()
        finally:
            if self._teardown is not None:
                self._teardown()
        return self.report

    def _execute(self) -> None:
        prev_class = None
        prev_op = None
        for index, cmd in enumerate(self.scenario.commands):
            cls = COMMAND_CLASS[cmd["op"]]
            if self._boundary_before(prev_class, prev_op, cls, cmd["op"]):
                self.settle_and_sync(index)
                if not self.report.ok:
                    self.report.commands_run = index
                    return
            try:
                self._exec(index, cmd)
            except ActorSpaceError as exc:
                # Synchronous prechecks (capability, locally visible
                # cycles) reject on both sides: runtime raises before the
                # op is submitted, the model never sees it.  Anything the
                # model *would* have accepted shows up in the next
                # boundary diff, so a swallowed exception cannot hide a
                # real divergence.
                if cmd["op"] not in ("vis", "invis", "chattr", "destroy"):
                    self._diverge(index, "runtime-error",
                                  f"{cmd['op']}: {type(exc).__name__}: {exc}")
            self._drain_model(index)
            if not self.report.ok:
                self.report.commands_run = index + 1
                return
            if cls != "free":
                prev_class = cls
            prev_op = cmd["op"]
        self.report.commands_run = len(self.scenario.commands)
        self.settle_and_sync(-1)
        if self.report.ok:
            self._compare_deliveries()

    @staticmethod
    def _boundary_before(prev_class, prev_op, cls, op) -> bool:
        if cls == "free":
            return False
        # A detector must still be armed when the crash it should observe
        # happens; settling in between would run it to expiry first.
        if op == "crash" and prev_op == "detector":
            return False
        if cls == "ctl":
            return True
        return prev_class is not None and prev_class != cls

    def _exec(self, index: int, cmd: dict) -> None:
        op = cmd["op"]
        if op == "actor":
            address = self.system.create_actor(_sink, node=cmd["node"])
            self.name2addr[cmd["name"]] = address
            self.addr2name[address] = cmd["name"]
            self.model.add_actor(cmd["name"], cmd["node"])
        elif op == "space":
            parent = cmd.get("parent")
            address = self.system.create_space(
                node=cmd["node"], attributes=cmd.get("attrs"),
                parent=self.name2addr[parent] if parent else None,
            )
            self.name2addr[cmd["name"]] = address
            self.addr2name[address] = cmd["name"]
            self.model.note_space(cmd["name"], cmd["node"])
        elif op == "vis":
            self.system.make_visible(
                self.name2addr[cmd["target"]], cmd["attrs"],
                self.name2addr[cmd["space"]], node=cmd["node"],
            )
        elif op == "invis":
            self.system.make_invisible(
                self.name2addr[cmd["target"]],
                self.name2addr[cmd["space"]], node=cmd["node"],
            )
        elif op == "chattr":
            self.system.change_attributes(
                self.name2addr[cmd["target"]], cmd["attrs"],
                self.name2addr[cmd["space"]], node=cmd["node"],
            )
        elif op == "destroy":
            self.system.destroy_space(self.name2addr[cmd["target"]],
                                      node=cmd["node"])
        elif op in ("send", "bcast"):
            space = cmd.get("space")
            destination = Destination(
                cmd["pattern"],
                self.name2addr[space] if space else None,
            )
            payload = {"m": cmd["msg"]}
            if cmd.get("ref"):
                payload["ref"] = self.name2addr[cmd["ref"]]
            if op == "send":
                self.system.send(destination, payload, node=cmd["node"])
            else:
                self.system.broadcast(destination, payload, node=cmd["node"])
            # The runtime dispatched synchronously; its routing choice is
            # already on record for the model to validate.
            self.model.dispatch(cmd, self._choice_for)
        elif op == "dsend":
            payload = {"m": cmd["msg"]}
            if cmd.get("ref"):
                payload["ref"] = self.name2addr[cmd["ref"]]
            self.system.send_to(self.name2addr[cmd["target"]], payload,
                                node=cmd["node"])
            self.model.direct_send(cmd)
        elif op == "hold":
            self.system.hold(self.name2addr[cmd["target"]])
            self.model.hold(cmd["target"])
        elif op == "release":
            self.system.release(self.name2addr[cmd["target"]])
            self.model.release(cmd["target"])
        elif op == "crash":
            self.system.crash_node(cmd["node"])
            self.model.crash(cmd["node"])
            self.report.crashes += 1
        elif op == "recover":
            self._exec_recover(index, cmd["node"])
        elif op == "detector":
            self.system.start_failure_detector(duration=cmd["duration"])
        elif op == "probe":
            self._exec_probe(index, cmd)
        elif op == "gc":
            self._exec_gc(index)
        elif op == "settle":
            pass  # the boundary already ran
        else:  # pragma: no cover - repair filters unknown ops
            raise AssertionError(f"unknown command {op!r}")

    def _exec_recover(self, index: int, node: int) -> None:
        """Recovery is its own boundary: drain the runtime's replay,
        rechecks and redeliveries, then mirror them in the model."""
        self.system.recover_node(node)
        self.system.run(max_events=MAX_EVENTS)
        if not self.system.idle:
            self._diverge(index, "no-quiescence",
                          f"recovery of node {node} did not drain")
            return
        self._apply_new_ops()
        self.model.recover(node, self._choice_for)
        self.settle_and_sync(index)

    # -- boundaries ---------------------------------------------------------

    def settle_and_sync(self, index: int) -> None:
        self.report.boundaries += 1
        self.system.run(max_events=MAX_EVENTS)
        if not self.system.idle:
            self._diverge(index, "no-quiescence",
                          f"simulation did not drain within {MAX_EVENTS} events")
            return
        observables = self.system.export_observables()
        # Masks are recorded (detector timing is schedule-dependent); in
        # generated scenarios they never move concurrently with op traffic,
        # so resync order relative to the op drain is immaterial.
        self.model.crashed = set(observables["crashed"])
        for node, masked in observables["masks"].items():
            self.model.masks[node] = set(masked)
        self._apply_new_ops()
        self._drain_model(index)
        self._compare_directories(index, observables)
        self._compare_parked(index, observables)
        self._compare_dead_letters(index, observables)

    def _apply_new_ops(self) -> None:
        bus = self.system.bus
        shards = getattr(bus, "shards", None)
        if shards is not None:
            # Sharded plane: the recorded order is the cross-shard
            # journal ((shard, per-shard seq) at fan-out time), not a
            # global sequence.  The cursor is a journal index.  Replicas
            # park actor-vis ops that outran their containing space's
            # ADD (which sequences on shard 0) and drain them when the
            # ADD applies — mirror that reordering here, keyed on the
            # spaces the model has heard of (tombstones count: a vis on
            # a destroyed space applies immediately and gets rejected,
            # exactly as on a replica).
            fresh = bus.journal[self._op_cursor:]
            if not fresh:
                return
            self._op_cursor = len(bus.journal)
            ops: list[tuple[str, dict]] = []
            for k, seq in fresh:
                raw = shards[k].log[seq]
                kind, args = self._translate_op(raw)
                if (raw.shard != 0
                        and kind in ("make_visible", "make_invisible",
                                     "change_attributes")
                        and args["space"] not in self._known_spaces):
                    self._space_waiting.setdefault(
                        args["space"], []).append((kind, args))
                    continue
                ops.append((kind, args))
                if kind == "add_space":
                    self._known_spaces.add(args["name"])
                    ops.extend(self._space_waiting.pop(args["name"], ()))
                elif kind == "destroy_space":
                    self._known_spaces.add(args["name"])
            self.model.apply_ops(ops, self._choice_for)
            return
        log = bus.log
        fresh = sorted(seq for seq in log if seq >= self._op_cursor)
        if not fresh:
            return
        self._op_cursor = fresh[-1] + 1
        ops = [self._translate_op(log[seq]) for seq in fresh]
        self.model.apply_ops(ops, self._choice_for)

    def _translate_op(self, op) -> tuple[str, dict]:
        kind, a = op.kind.value, op.args
        if kind in ("add_space", "destroy_space"):
            return kind, {"name": self.addr2name[a["address"]]}
        if kind in ("make_visible", "change_attributes"):
            attrs = a["attributes"]
            if isinstance(attrs, str):
                attrs = [attrs]
            return kind, {
                "space": self.addr2name[a["space"]],
                "target": self.addr2name[a["target"]],
                "attrs": [str(path) for path in attrs],
            }
        if kind == "make_invisible":
            return kind, {"space": self.addr2name[a["space"]],
                          "target": self.addr2name[a["target"]]}
        if kind == "purge":
            return kind, {"target": self.addr2name.get(a["target"], "?")}
        return kind, {}  # bind_capability: no observable directory effect

    # -- comparisons --------------------------------------------------------

    def _live_nodes(self, observables) -> list[int]:
        return [n for n in range(self.scenario.nodes)
                if n not in observables["crashed"]]

    def _compare_directories(self, index: int, observables) -> None:
        expected = self.model.export_directory()
        for node in self._live_nodes(observables):
            actual = {
                self.addr2name[space]: {
                    self.addr2name[target]: tuple(sorted(str(p) for p in attrs))
                    for target, attrs in registry.items()
                }
                for space, registry in observables["directories"][node].items()
            }
            if actual != expected:
                for space in sorted(set(actual) | set(expected)):
                    if actual.get(space) != expected.get(space):
                        self._diverge(
                            index, "directory",
                            f"node {node}, space {space!r}: runtime has "
                            f"{actual.get(space)!r}, model has "
                            f"{expected.get(space)!r}")
                        break

    def _compare_parked(self, index: int, observables) -> None:
        expected = self.model.export_parked()
        for node in self._live_nodes(observables):
            parked = observables["parked"][node]
            suspended = [_msg_of(env) for env in parked["suspended"]]
            if suspended != expected[node]["suspended"]:
                self._diverge(
                    index, "parked",
                    f"node {node} suspended: runtime {suspended}, "
                    f"model {expected[node]['suspended']} (§5.6)")
            persistent = sorted(
                (_msg_of(env), frozenset(self.addr2name[t] for t in delivered))
                for env, delivered in parked["persistent"]
            )
            want = sorted(expected[node]["persistent"])
            if persistent != want:
                self._diverge(
                    index, "parked",
                    f"node {node} persistent: runtime {persistent}, "
                    f"model {want}")

    def _compare_dead_letters(self, index: int, observables) -> None:
        actual = {
            node: sorted((_msg_of(l.envelope), self.addr2name[l.envelope.target])
                         for l in letters)
            for node, letters in observables["dead_letters"].items() if letters
        }
        expected = self.model.export_dead_letters()
        if actual != expected:
            self._diverge(index, "dead-letters",
                          f"runtime {actual!r}, model {expected!r}")

    def _exec_probe(self, index: int, cmd: dict) -> None:
        space = cmd.get("space", "ROOT")
        space_addr = self.name2addr[space]
        for node in range(self.scenario.nodes):
            if self.system.coordinators[node].crashed:
                continue
            found = self.system.resolve(cmd["pattern"], space_addr, node=node)
            actual = {self.addr2name[a] for a in found}
            expected = self.model.resolve_actors(cmd["pattern"], space, node)
            if actual != expected:
                self._diverge(
                    index, "resolution",
                    f"probe {cmd['pattern']!r}@{space} on node {node}: "
                    f"runtime {sorted(actual)}, model {sorted(expected)}")

    def _exec_gc(self, index: int) -> None:
        report = self.system.collect_garbage(delete=False)
        if report.kept_active:
            self._diverge(index, "gc",
                          f"actors active at quiescence: "
                          f"{sorted(self.addr2name.get(a, repr(a)) for a in report.kept_active)}")
        actual_actors = {self.addr2name[a] for a in report.collected_actors}
        actual_spaces = {self.addr2name[s] for s in report.collected_spaces}
        want_actors, want_spaces = self.model.gc_report()
        if actual_actors != want_actors:
            self._diverge(
                index, "gc",
                f"collected actors: runtime {sorted(actual_actors)}, "
                f"model {sorted(want_actors)} (§5.5)")
        if actual_spaces != want_spaces:
            self._diverge(
                index, "gc",
                f"collected spaces: runtime {sorted(actual_spaces)}, "
                f"model {sorted(want_spaces)} (§5.5)")

    def _compare_deliveries(self) -> None:
        actual = Counter({
            (msg, self.addr2name[target]): count
            for (msg, target), count in self.recorder.enqueued.items()
        })
        if actual != self.model.delivered:
            diff = (actual - self.model.delivered) + (self.model.delivered - actual)
            self._diverge(-1, "deliveries",
                          f"delivery multisets differ on {dict(diff)!r}")
        routed = Counter()
        for msg, targets in self.recorder.routes.items():
            for target in targets:
                routed[(msg, self.addr2name[target])] += 1
        if routed != self.model.routed:
            diff = (routed - self.model.routed) + (self.model.routed - routed)
            self._diverge(-1, "routing",
                          f"routing multisets differ on {dict(diff)!r}")


def check_scenario(scenario: Scenario, tiebreaker=None,
                   inject=None, shards: int = 1) -> ConformanceReport:
    """Run ``scenario`` against runtime and model; report divergences.

    ``tiebreaker`` optionally controls same-instant event ordering (see
    :mod:`repro.check.schedule`); ``inject`` optionally installs a bug
    (``inject(system) -> teardown``) for harness self-tests; ``shards``
    runs the runtime side on a partitioned visibility plane (co-located
    sequencers) while the model stays the unsharded §5 reference.
    """
    return _Run(scenario, tiebreaker=tiebreaker, inject=inject,
                shards=shards).execute()
