"""Conformance oracle over a *persisted* bus log.

The live conformance harness (PR 4) co-executes the runtime against the
§5 reference model.  This module points the same model at what PR 9
wrote to disk: a recovered data directory is re-driven op by op, each
op's accept/reject outcome compared against the model's verdict and the
final directories diffed — so the durability layer's claim ("what we
persisted *is* the history") is itself checkable offline.

Two layers of checks:

* **Structural** — always run: sequence numbers must be gap-free and
  duplicate-free, per-origin ``origin_seq`` must be FIFO in bus order,
  and no ``(origin_node, origin_seq)`` pair may be sequenced twice
  (the dedup invariant the remote bus enforces on the wire).
* **Semantic** — run when the log reaches back to seq 0 (i.e. it has
  not been truncated past genesis): translate each op to the model's
  name-keyed vocabulary with deterministic address naming and check
  every accept/reject and the final visibility state.  Ops the runtime
  rejects on *capability* grounds are skipped in the model, which
  deliberately does not model capabilities (they are checked by the
  live harness's recorded-outcome path instead).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.addresses import SpaceAddress
from ..core.errors import CapabilityError
from ..runtime.bus import OpKind, VisibilityOp
from .model import ReferenceModel

if TYPE_CHECKING:  # pragma: no cover
    from ..store.node_store import RecoveredState

#: The bootstrap root space every node shares (minted by node 0).
_ROOT = SpaceAddress(0, 0)


def _name_of(addr) -> str:
    if addr == _ROOT:
        return "ROOT"
    tag = "s" if isinstance(addr, SpaceAddress) else "a"
    return f"n{addr.node}{tag}{addr.serial}"


def _addr_key(name: str):
    if name == "ROOT":
        return (0, 0)
    body = name[1:]
    for tag in ("s", "a"):
        if tag in body:
            node_text, _, serial_text = body.partition(tag)
            try:
                return (int(node_text), int(serial_text))
            except ValueError:
                break
    return (1 << 60, name)


def _attr_strings(attributes) -> list[str]:
    if isinstance(attributes, (str,)) or not hasattr(attributes, "__iter__"):
        return [str(attributes)]
    return [str(a) for a in attributes]


def translate_op(op: VisibilityOp) -> tuple[str, dict] | None:
    """A persisted op in the model's vocabulary; None for no-directory-
    effect ops (bind_capability)."""
    a = op.args
    if op.kind is OpKind.ADD_SPACE:
        return "add_space", {"name": _name_of(a["address"])}
    if op.kind is OpKind.DESTROY_SPACE:
        return "destroy_space", {"name": _name_of(a["address"])}
    if op.kind is OpKind.MAKE_VISIBLE:
        return "make_visible", {
            "space": _name_of(a["space"]), "target": _name_of(a["target"]),
            "attrs": _attr_strings(a["attributes"]),
        }
    if op.kind is OpKind.MAKE_INVISIBLE:
        return "make_invisible", {
            "space": _name_of(a["space"]), "target": _name_of(a["target"]),
        }
    if op.kind is OpKind.CHANGE_ATTRIBUTES:
        return "change_attributes", {
            "space": _name_of(a["space"]), "target": _name_of(a["target"]),
            "attrs": _attr_strings(a["attributes"]),
        }
    if op.kind is OpKind.PURGE:
        return "purge", {"target": _name_of(a["target"])}
    if op.kind is OpKind.BIND_CAPABILITY:
        return None
    raise AssertionError(f"unknown op kind {op.kind}")


def _structural_problems(ops: dict[int, VisibilityOp]) -> list[str]:
    problems: list[str] = []
    seqs = sorted(ops)
    for prev, cur in zip(seqs, seqs[1:]):
        if cur != prev + 1:
            problems.append(
                f"sequence gap: seq {prev} is followed by {cur} "
                f"({cur - prev - 1} op(s) missing)")
    seen: dict[tuple[int, int], int] = {}
    last_origin_seq: dict[int, int] = {}
    for seq in seqs:
        op = ops[seq]
        key = (op.origin_node, op.origin_seq)
        if key in seen:
            problems.append(
                f"duplicate origin pair {key} sequenced at both "
                f"{seen[key]} and {seq}")
        seen[key] = seq
        prev = last_origin_seq.get(op.origin_node)
        if prev is not None and op.origin_seq <= prev:
            problems.append(
                f"origin FIFO violated for node {op.origin_node}: "
                f"origin_seq {op.origin_seq} at seq {seq} after {prev}")
        last_origin_seq[op.origin_node] = op.origin_seq
    return problems


def check_ops(ops: dict[int, VisibilityOp]) -> list[str]:
    """Full check of a seq->op map that reaches back to genesis."""
    from ..store.replay import LogReplayer

    problems = _structural_problems(ops)
    model = ReferenceModel(
        nodes=max((op.origin_node for op in ops.values()), default=0) + 1,
        unmatched="suspend", addr_key=_addr_key)
    for op in ops.values():
        if op.kind is OpKind.ADD_SPACE:
            model.note_space(_name_of(op.args["address"]),
                             op.args.get("node", op.origin_node))
    replayer = LogReplayer()
    for seq in sorted(ops):
        op = ops[seq]
        applied, reason = replayer.apply(seq, op)
        translated = translate_op(op)
        if translated is None:
            continue
        if not applied and reason == CapabilityError.__name__:
            continue  # the model does not track capabilities
        kind, args = translated
        model_applied = model._apply_op(kind, args)
        if applied != model_applied:
            problems.append(
                f"seq {seq} ({kind}): runtime "
                f"{'applied' if applied else f'rejected ({reason})'} but the "
                f"model {'applied' if model_applied else 'rejected'}")
    model_dir = {
        name: {t: list(attrs) for t, attrs in sorted(registry.items())}
        for name, registry in model.export_directory().items()
    }
    named_runtime = _rename_runtime_directory(replayer)
    if named_runtime != model_dir:
        extra = set(named_runtime) - set(model_dir)
        missing = set(model_dir) - set(named_runtime)
        diffs = [
            space for space in set(named_runtime) & set(model_dir)
            if named_runtime[space] != model_dir[space]
        ]
        problems.append(
            f"final directory mismatch: runtime-only spaces {sorted(extra)}, "
            f"model-only {sorted(missing)}, differing {sorted(diffs)}")
    return problems


def _rename_runtime_directory(replayer) -> dict:
    out = {}
    for addr, registry in replayer.directory.snapshot().items():
        out[_name_of(addr)] = {
            _name_of(target): sorted(str(p) for p in attrs)
            for target, attrs in registry.items()
        }
    return out


def check_recovered(recovered: "RecoveredState",
                    until: int | None = None) -> list[str]:
    """Check a recovered data directory; returns problem strings.

    When the log has been truncated past genesis only the structural
    checks run (the model cannot be seeded from a snapshot — it speaks
    names, not addresses), which is still enough to catch reordering,
    duplication, and holes in what recovery would replay.
    """
    ops = {seq: op for seq, op in recovered.ops.items()
           if until is None or seq <= until}
    if not ops:
        return []
    if min(ops) == 0:
        return check_ops(ops)
    return _structural_problems(ops)
