"""Conformance harness: the runtime versus an executable §5 reference model.

The optimized runtime (resolution caches, coordinator bus, failure
quarantine, dead-letter redelivery) must be *observably equivalent* to the
paper's §5 semantics under every schedule the simulation can produce.
This package makes that claim executable:

* :mod:`repro.check.model` — a deliberately naive reference model of §5:
  visibility, matching, send/broadcast arbitration, suspension (§5.6),
  cycle prevention (§5.7), and GC (§5.5), with no caches, no bus, no
  failure layer.
* :mod:`repro.check.scenario` — a JSON-serializable command-trace format
  plus a seeded generator of interesting scenarios (nested spaces,
  structured patterns, crash/recover windows, GC probes).
* :mod:`repro.check.oracle` — co-executes runtime and model on one trace
  and diffs observable state: delivery multisets, directory replicas,
  park sets, dead letters, GC reachability.
* :mod:`repro.check.schedule` — tie-breaking controllers over the event
  queue: seeded random walks and bounded systematic exploration with
  commuting-event pruning (DPOR-lite).
* :mod:`repro.check.shrink` — a ddmin shrinker turning any diverging
  trace into a minimal replayable ``.repro.json`` artifact.
* :mod:`repro.check.cli` — the ``python -m repro check`` entry point.
"""

from .model import ReferenceModel
from .oracle import ConformanceReport, check_scenario
from .scenario import Scenario, generate_scenario, repair_commands
from .schedule import Explorer, RandomTieBreaker, ScriptedTieBreaker
from .shrink import shrink_scenario

__all__ = [
    "ConformanceReport",
    "Explorer",
    "RandomTieBreaker",
    "ReferenceModel",
    "Scenario",
    "ScriptedTieBreaker",
    "check_scenario",
    "generate_scenario",
    "repair_commands",
    "shrink_scenario",
]
