"""``python -m repro check`` — the conformance sweep.

Default behavior: generate N seeded scenarios, co-execute each against
the §5 reference model, stop at the first divergence, shrink it, and
write a replayable ``.repro.json`` artifact.  Exit 0 on a clean sweep,
1 on divergence, 2 on usage errors.

Schedules: every scenario runs under FIFO tie-breaking first; add
``--walks N`` for seeded random-walk schedules per scenario and
``--explore N`` for bounded systematic exploration (DPOR-lite) on top.

Self-test: ``--inject NAME`` installs a known bug
(:mod:`repro.check.inject`) so CI can assert the harness catches and
shrinks what it claims to.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .inject import INJECTIONS
from .oracle import check_scenario
from .scenario import Scenario, generate_scenario
from .schedule import Explorer, RandomTieBreaker, ScriptedTieBreaker
from .shrink import shrink_scenario


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro check",
        description="Check the runtime against the executable §5 reference model.",
    )
    parser.add_argument("--seeds", type=int, default=50,
                        help="number of generated scenarios (default 50)")
    parser.add_argument("--seed", type=int, default=0,
                        help="first scenario seed (default 0)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="force a node count (default: per-seed 2..4)")
    parser.add_argument("--bus", choices=["sequencer", "token-ring"], default=None,
                        help="force a bus protocol (default: alternate by seed)")
    parser.add_argument("--shards", type=int, default=1,
                        help="run the runtime on a partitioned visibility "
                             "plane with N per-shard sequencers (forces the "
                             "sequencer bus; the model stays the unsharded "
                             "§5 reference; default 1)")
    parser.add_argument("--walks", type=int, default=0,
                        help="random-walk schedules per scenario (default 0)")
    parser.add_argument("--explore", type=int, default=0,
                        help="bounded systematic schedules per scenario (default 0)")
    parser.add_argument("--budget", type=float, default=None,
                        help="wall-clock budget in seconds for the whole sweep")
    parser.add_argument("--inject", choices=sorted(INJECTIONS), default=None,
                        help="install a known bug (harness self-test)")
    parser.add_argument("--out", default=".",
                        help="directory for .repro.json artifacts (default .)")
    parser.add_argument("--replay", default=None, metavar="FILE",
                        help="re-run a .repro.json artifact instead of sweeping")
    parser.add_argument("--no-shrink", action="store_true",
                        help="emit the full diverging trace without ddmin")
    parser.add_argument("--transport", choices=["sim", "tcp"], default="sim",
                        help="sim (default): in-process co-execution; tcp: "
                             "additionally diff a real localhost cluster "
                             "against the single-process oracle")
    return parser


def _run_tcp_check(args) -> int:
    """Diff real TCP clusters against the sim oracle (bounded scenarios).

    Skips (exit 0) on platforms where loopback sockets are unavailable —
    the sweep is about the wire path, which such platforms cannot run.
    """
    from repro.net.cluster import loopback_available, run_tcp_conformance

    if not loopback_available():
        print("conformance[tcp]: loopback sockets unavailable; skipping")
        return 0
    seeds = [args.seed + offset for offset in range(args.seeds)]
    nodes = args.nodes if args.nodes else 3
    report = run_tcp_conformance(seeds, nodes=nodes, out_dir=None,
                                 shards=args.shards,
                                 log=lambda text: print(f"  {text}"))
    if report["divergences"]:
        first = report["divergences"][0]
        print(f"DIVERGENCE[tcp] seed={first['seed']} node={first['node']} "
              f"kind={first['kind']}")
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"conformance-tcp-{first['seed']}.json"
        path.write_text(json.dumps(report, indent=2))
        print(f"divergence report: {path}")
        return 1
    print(f"conformance[tcp]: {len(seeds)} scenarios x {nodes} nodes, "
          f"0 divergences")
    return 0


def _schedule_factory(spec: dict):
    """Tiebreaker factory from an artifact's schedule record."""
    kind = spec.get("type", "fifo")
    if kind == "fifo":
        return lambda: None
    if kind == "random":
        seed = int(spec.get("seed", 0))
        return lambda: RandomTieBreaker(seed)
    if kind == "scripted":
        decisions = list(spec.get("decisions", ()))
        return lambda: ScriptedTieBreaker(decisions)
    raise ValueError(f"unknown schedule type {kind!r}")


def _check_with(scenario: Scenario, make_breaker, inject, shards: int = 1):
    return check_scenario(scenario, tiebreaker=make_breaker(), inject=inject,
                          shards=shards)


def _report_failure(scenario: Scenario, report, schedule_spec: dict,
                    args, inject) -> int:
    print(f"DIVERGENCE {report.summary()}")
    for divergence in report.divergences[:8]:
        print(f"  {divergence}")
    shrunk, checks = scenario, 0
    shards = getattr(args, "shards", 1)
    if not args.no_shrink:
        make_breaker = _schedule_factory(schedule_spec)
        shrunk, checks = shrink_scenario(
            scenario, lambda s: _check_with(s, make_breaker, inject, shards))
        final = _check_with(shrunk, make_breaker, inject, shards)
        print(f"shrunk {len(scenario)} -> {len(shrunk)} commands "
              f"({checks} oracle calls)")
        report = final if not final.ok else report
    artifact = {
        "scenario": json.loads(shrunk.to_json()),
        "schedule": schedule_spec,
        "inject": args.inject,
        "shards": shards,
        "divergences": [str(d) for d in report.divergences],
    }
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"conformance-{scenario.seed}.repro.json"
    path.write_text(json.dumps(artifact, indent=2))
    print(f"replay artifact: {path}")
    print(f"  python -m repro check --replay {path}")
    return 1


def _replay(path: str, args, inject) -> int:
    try:
        artifact = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        print(f"check: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    scenario = Scenario.from_json(json.dumps(artifact["scenario"]))
    schedule_spec = artifact.get("schedule", {"type": "fifo"})
    inject = inject or INJECTIONS.get(artifact.get("inject") or "")
    shards = int(artifact.get("shards", 1)) or getattr(args, "shards", 1)
    report = _check_with(scenario, _schedule_factory(schedule_spec), inject,
                         shards)
    print(report.summary())
    for divergence in report.divergences[:8]:
        print(f"  {divergence}")
    return 0 if report.ok else 1


def run_check(argv: list[str]) -> int:
    try:
        args = _build_parser().parse_args(argv)
    except SystemExit as exc:
        return 0 if exc.code in (0, None) else 2
    inject = INJECTIONS[args.inject] if args.inject else None
    if args.replay:
        return _replay(args.replay, args, inject)
    if args.transport == "tcp":
        return _run_tcp_check(args)

    started = time.monotonic()

    def out_of_budget() -> bool:
        return args.budget is not None and time.monotonic() - started > args.budget

    schedules = 0
    scenarios = 0
    crash_scenarios = 0
    for offset in range(args.seeds):
        if out_of_budget():
            print(f"budget exhausted after {scenarios} scenarios")
            break
        seed = args.seed + offset
        bus = "sequencer" if args.shards > 1 else args.bus
        scenario = generate_scenario(seed, nodes=args.nodes, bus=bus)
        scenarios += 1
        if any(cmd["op"] == "crash" for cmd in scenario.commands):
            crash_scenarios += 1

        # 1. The deterministic FIFO schedule.
        fifo_spec = {"type": "fifo"}
        report = _check_with(scenario, _schedule_factory(fifo_spec), inject,
                             args.shards)
        schedules += 1
        if not report.ok:
            return _report_failure(scenario, report, fifo_spec, args, inject)

        # 2. Seeded random walks.
        for walk in range(args.walks):
            if out_of_budget():
                break
            spec = {"type": "random", "seed": seed * 1000 + walk}
            report = _check_with(scenario, _schedule_factory(spec), inject,
                                 args.shards)
            schedules += 1
            if not report.ok:
                return _report_failure(scenario, report, spec, args, inject)

        # 3. Bounded systematic exploration (DPOR-lite).
        if args.explore > 0 and not out_of_budget():
            explorer = Explorer(
                lambda breaker: check_scenario(scenario, tiebreaker=breaker,
                                               inject=inject,
                                               shards=args.shards),
                max_schedules=args.explore,
                deadline=out_of_budget,
            )
            failing, ran = explorer.explore()
            schedules += ran
            if failing is not None:
                spec = {"type": "scripted",
                        "decisions": getattr(failing, "schedule_decisions", [])}
                return _report_failure(scenario, failing, spec, args, inject)

    print(f"conformance: {scenarios} scenarios "
          f"({crash_scenarios} with crash/recover), {schedules} schedules, "
          f"0 divergences")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(run_check(sys.argv[1:]))
