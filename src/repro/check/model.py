"""An executable reference model of the paper's §5 semantics.

Deliberately naive: one flat name-keyed directory (no replicas, no bus,
no epochs, no caches, no first-atom indexes), recursive pattern matching
straight from the definitions, and explicit little lists for everything
the paper calls state — parked messages (§5.6), persistent broadcasts,
dead letters, acquaintances, GC roots (§5.5).  Every structure an
optimization in the runtime could corrupt is recomputed from scratch
here, which is the point: the oracle diffs the two.

Three kinds of nondeterminism are *recorded from the runtime* rather than
re-modelled, and validated instead of predicted:

* the total order of visibility operations (the bus log) — the model
  replays it and checks each op's accept/reject outcome by effect;
* ``send`` arbitration — the model computes the legal receiver group and
  checks the runtime's recorded choice is a member (§5.3 allows any);
* quarantine masks — detector timing is scheduling-dependent, so the
  oracle resyncs the per-replica masks at every boundary and the model
  checks the *consequences* (resolution, suspension, release).

Atom-level matching (globs, ``~regex``) reuses the runtime's
:class:`AtomMatcher` values as shared vocabulary; everything structural —
``/`` composition, ``**`` absorption, residual descent through nested
spaces, scoping — is implemented independently by naive recursion.
"""

from __future__ import annotations

from collections import Counter

from repro.core.patterns import AnySequence, AtomMatcher, parse_pattern

#: Op kinds whose successful application can release parked messages.
GROWTH_OPS = frozenset({"add_space", "make_visible", "change_attributes"})


# ---------------------------------------------------------------------------
# Naive sequence matching (independent of patterns._match_seq/_residuals)
# ---------------------------------------------------------------------------

def naive_match(matchers: tuple[AtomMatcher, ...], atoms: tuple[str, ...]) -> bool:
    """Does the matcher sequence accept exactly ``atoms``?  Plain recursion."""
    if not matchers:
        return not atoms
    head, rest = matchers[0], matchers[1:]
    if isinstance(head, AnySequence):
        return any(naive_match(rest, atoms[i:]) for i in range(len(atoms) + 1))
    return bool(atoms) and head.matches(atoms[0]) and naive_match(rest, atoms[1:])


def naive_residuals(
    matchers: tuple[AtomMatcher, ...], atoms: tuple[str, ...]
) -> list[tuple[AtomMatcher, ...]]:
    """Non-empty matcher suffixes left after consuming ``atoms`` as a prefix."""
    def walk(ms, ats):
        if not ats:
            return [ms]
        if not ms:
            return []
        head, rest = ms[0], ms[1:]
        out = []
        if isinstance(head, AnySequence):
            out += walk(rest, ats)       # ** absorbs nothing
            out += walk(ms, ats[1:])     # ** absorbs one atom, stays
        elif head.matches(ats[0]):
            out += walk(rest, ats[1:])
        return out

    seen: set[tuple] = set()
    result = []
    for suffix in walk(tuple(matchers), tuple(atoms)):
        if suffix and suffix not in seen:
            seen.add(suffix)
            result.append(suffix)
    return result


def _as_attr_tuples(attrs) -> frozenset[tuple[str, ...]]:
    return frozenset(tuple(a.split("/")) for a in attrs)


class ReferenceModel:
    """§5 semantics over a name-keyed world.

    ``addr_key`` maps a name to the runtime's address sort key, used only
    where the paper-level semantics depend on an ordering the runtime
    inherits from addresses (the primary scope of a multi-space
    destination).
    """

    def __init__(self, nodes: int, unmatched: str, addr_key):
        self.nodes = nodes
        self.unmatched = unmatched  #: root-space policy
        self.addr_key = addr_key
        #: space name -> {target name -> frozenset of attr tuples}
        self.registries: dict[str, dict[str, frozenset]] = {"ROOT": {}}
        self.actors: dict[str, int] = {}       #: actor name -> home node
        self.space_nodes: dict[str, int] = {"ROOT": 0}
        self.crashed: set[int] = set()
        #: Per-replica quarantine masks, resynced from the runtime at
        #: boundaries (detector timing is schedule-dependent).
        self.masks: dict[int, set[int]] = {n: set() for n in range(nodes)}
        self.held: set[str] = {"ROOT"}
        self.acquaintances: dict[str, set[str]] = {}
        #: Suspended pattern messages, in park order, with their origin.
        self.parked: list[dict] = []
        #: Persistent broadcasts: command dict + mutable delivered set.
        self.persistent: list[dict] = []
        #: Dead letters per destination node: [(msg, target, ref)].
        self.dead_letters: dict[int, list[tuple]] = {}
        #: (msg, target) -> times routed (hops) / enqueued (deliveries).
        self.routed: Counter = Counter()
        self.delivered: Counter = Counter()
        self.divergences: list[str] = []

    # -- helpers ------------------------------------------------------------

    def _diverge(self, text: str) -> None:
        self.divergences.append(text)

    def _is_space(self, name: str) -> bool:
        # Classification is by identity, not liveness: a destroyed space's
        # name must never be mistaken for an actor's.
        return name in self.space_nodes

    def _policy(self, scope: str | None) -> str:
        # Spaces created during a run get the paper-default manager; only
        # the root space carries the scenario's configured policy.
        if scope is None or scope == "ROOT":
            return self.unmatched
        return "suspend"

    # -- lifecycle ----------------------------------------------------------

    def add_actor(self, name: str, node: int) -> None:
        self.actors[name] = node
        self.acquaintances[name] = {"ROOT"}
        self.held.add(name)

    def note_space(self, name: str, node: int) -> None:
        """Record the name->node binding; the registry itself appears when
        the ADD_SPACE op comes through the recorded total order."""
        self.space_nodes[name] = node
        self.held.add(name)

    def hold(self, name: str) -> None:
        self.held.add(name)

    def release(self, name: str) -> None:
        self.held.discard(name)

    # -- the recorded total order of visibility ops -------------------------

    def apply_ops(self, ops: list[tuple[str, dict]], choice_for) -> None:
        """Replay bus-log ops in sequence order; recheck after growth."""
        for kind, args in ops:
            if self._apply_op(kind, args) and kind in GROWTH_OPS:
                self.recheck_parked(choice_for)

    def _apply_op(self, kind: str, args: dict) -> bool:
        """Apply one op; ``False`` means rejected (mirrors §5.4/§5.7)."""
        if kind == "add_space":
            name = args["name"]
            if name in self.registries:
                return False
            self.registries[name] = {}
            return True
        if kind == "destroy_space":
            name = args["name"]
            if name not in self.registries:
                return False
            del self.registries[name]
            for registry in self.registries.values():
                registry.pop(name, None)
            return True
        if kind == "make_visible":
            space, target = args["space"], args["target"]
            if space not in self.registries:
                return False
            if self._is_space(target) and self.reaches(target, space):
                return False  # §5.7: would close a containment cycle
            self.registries[space][target] = _as_attr_tuples(args["attrs"])
            return True
        if kind == "make_invisible":
            space = args["space"]
            if space not in self.registries:
                return False
            self.registries[space].pop(args["target"], None)
            return True
        if kind == "change_attributes":
            space, target = args["space"], args["target"]
            if space not in self.registries:
                return False
            if target not in self.registries[space]:
                return False
            self.registries[space][target] = _as_attr_tuples(args["attrs"])
            return True
        if kind == "purge":
            for registry in self.registries.values():
                registry.pop(args["target"], None)
            return True
        if kind == "bind_capability":
            return True
        raise AssertionError(f"unknown op kind {kind!r}")

    def reaches(self, start: str, goal: str) -> bool:
        """Is ``goal`` equal to ``start`` or transitively visible inside it?"""
        if start == goal:
            return True
        seen, stack = {start}, [start]
        while stack:
            for child in self.registries.get(stack.pop(), {}):
                if not self._is_space(child):
                    continue
                if child == goal:
                    return True
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return False

    # -- naive scoped resolution (§5.1, §7.1) -------------------------------

    def resolve_actors(self, pattern, space: str, origin_node: int) -> set[str]:
        matchers = parse_pattern(pattern).matchers
        out: set[str] = set()
        self._walk(matchers, space, origin_node, out, None, set())
        return out

    def resolve_spaces(self, pattern, space: str, origin_node: int) -> set[str]:
        matchers = parse_pattern(pattern).matchers
        out: set[str] = set()
        self._walk(matchers, space, origin_node, None, out, set())
        return out

    def _walk(self, matchers, space, origin_node, actor_out, space_out, visited):
        key = (space, matchers)
        if key in visited:
            return
        visited.add(key)
        registry = self.registries.get(space)
        if registry is None:
            return
        mask = self.masks[origin_node]
        for target, attrs in registry.items():
            if self._is_space(target):
                for attr in attrs:
                    if space_out is not None and naive_match(matchers, attr):
                        space_out.add(target)
                    for residual in naive_residuals(matchers, attr):
                        self._walk(residual, target, origin_node,
                                   actor_out, space_out, visited)
            elif actor_out is not None:
                if (any(naive_match(matchers, attr) for attr in attrs)
                        and self.actors.get(target) not in mask):
                    actor_out.add(target)

    def _dest_spaces(self, cmd: dict, origin_node: int) -> list[str]:
        """The scope spaces of a destination (§5.3): explicit, default, or
        pattern-based; ordered like the runtime orders addresses."""
        if cmd.get("space_pattern"):
            found = self.resolve_spaces(cmd["space_pattern"], "ROOT", origin_node)
            return sorted(found, key=self.addr_key)
        spec = cmd.get("space")
        if spec is None:
            return ["ROOT"]
        return [spec] if spec in self.registries else []

    # -- message dispatch (§5.3, §5.6) --------------------------------------

    def dispatch(self, cmd: dict, choice_for) -> None:
        """Model a ``send``/``bcast`` command issued at its origin node."""
        origin = cmd["node"]
        spaces = self._dest_spaces(cmd, origin)
        receivers: set[str] = set()
        for space in spaces:
            receivers |= self.resolve_actors(cmd["pattern"], space, origin)
        scope = spaces[0] if spaces else None
        policy = self._policy(scope)
        msg, ref = cmd["msg"], cmd.get("ref")
        if not receivers:
            self._park_unmatched(cmd, policy)
            return
        if cmd["op"] == "send":
            choice = choice_for(msg)
            if choice is None:
                self._diverge(
                    f"msg {msg}: model resolves {sorted(receivers)} but the "
                    f"runtime routed nothing (wrongly parked or dropped?)"
                )
                return
            if choice not in receivers:
                self._diverge(
                    f"msg {msg}: runtime arbitration chose {choice!r}, not in "
                    f"the legal group {sorted(receivers)} (§5.3)"
                )
                if choice not in self.actors:
                    return
            self._deliver(choice, msg, ref)
        else:
            for target in receivers:
                self._deliver(target, msg, ref)
            if policy == "persistent":
                self.persistent.append({"cmd": cmd, "delivered": set(receivers)})

    def _park_unmatched(self, cmd: dict, policy: str) -> None:
        if policy == "discard":
            return
        if policy == "persistent" and cmd["op"] == "bcast":
            self.persistent.append({"cmd": cmd, "delivered": set()})
            return
        self.parked.append(cmd)

    def direct_send(self, cmd: dict) -> None:
        self._deliver(cmd["target"], cmd["msg"], cmd.get("ref"))

    def _deliver(self, target: str, msg: int, ref: str | None) -> None:
        """Route ``msg`` to ``target``: a hop always, then delivery or a
        dead letter depending on the target node's health."""
        self.routed[(msg, target)] += 1
        node = self.actors[target]
        if node in self.crashed:
            self.dead_letters.setdefault(node, []).append((msg, target, ref))
            return
        self.delivered[(msg, target)] += 1
        if ref is not None:
            self.acquaintances[target].add(ref)

    # -- suspension release (§5.6) ------------------------------------------

    def recheck_parked(self, choice_for) -> None:
        """Visibility grew (or a mask lifted): retry suspended messages and
        extend persistent broadcasts, in park order.

        Park sets live at the *origin* coordinator (§5.6 mechanics), so a
        crashed origin's entries are frozen: nothing can release or extend
        them until the node recovers and replays the missed ops.
        """
        still: list[dict] = []
        for cmd in self.parked:
            origin = cmd["node"]
            if origin in self.crashed:
                still.append(cmd)
                continue
            spaces = self._dest_spaces(cmd, origin)
            receivers: set[str] = set()
            for space in spaces:
                receivers |= self.resolve_actors(cmd["pattern"], space, origin)
            if not receivers:
                still.append(cmd)
                continue
            msg, ref = cmd["msg"], cmd.get("ref")
            if cmd["op"] == "send":
                choice = choice_for(msg)
                if choice is None:
                    self._diverge(
                        f"msg {msg}: model releases the parked send to "
                        f"{sorted(receivers)} but the runtime kept it parked"
                    )
                    still.append(cmd)
                    continue
                if choice not in receivers:
                    self._diverge(
                        f"msg {msg}: released-send arbitration chose {choice!r}, "
                        f"not in the legal group {sorted(receivers)}"
                    )
                self._deliver(choice, msg, ref)
            else:
                for target in receivers:
                    self._deliver(target, msg, ref)
                if self._policy(spaces[0] if spaces else None) == "persistent":
                    self.persistent.append({"cmd": cmd, "delivered": set(receivers)})
        self.parked = still
        for entry in self.persistent:
            cmd = entry["cmd"]
            origin = cmd["node"]
            if origin in self.crashed:
                continue
            receivers = set()
            for space in self._dest_spaces(cmd, origin):
                receivers |= self.resolve_actors(cmd["pattern"], space, origin)
            for target in sorted(receivers - entry["delivered"]):
                entry["delivered"].add(target)
                self._deliver(target, cmd["msg"], cmd.get("ref"))

    # -- failure (§2 open systems; PR 3 mechanics) --------------------------

    def crash(self, node: int) -> None:
        self.crashed.add(node)

    def recover(self, node: int, choice_for) -> None:
        self.crashed.discard(node)
        for mask in self.masks.values():
            mask.discard(node)
        # The recovering replica drops its own stale masks for live peers.
        self.masks[node] = {p for p in self.masks[node] if p in self.crashed}
        # Lifted masks can make parked messages matchable again.
        self.recheck_parked(choice_for)
        # Dead letters for the node are redelivered (their routing choice
        # was fixed when they were first routed).
        for msg, target, ref in self.dead_letters.pop(node, []):
            if self.actors[target] in self.crashed:
                self.dead_letters.setdefault(self.actors[target], []).append(
                    (msg, target, ref))
                continue
            self.delivered[(msg, target)] += 1
            if ref is not None:
                self.acquaintances[target].add(ref)

    # -- GC (§5.5) ----------------------------------------------------------

    def gc_pins(self) -> set[str]:
        """Names pinned by pending messages: parked/persistent payload refs
        and dead letters' targets and refs."""
        pins: set[str] = set()
        for cmd in self.parked:
            if cmd.get("ref"):
                pins.add(cmd["ref"])
        for entry in self.persistent:
            if entry["cmd"].get("ref"):
                pins.add(entry["cmd"]["ref"])
        for letters in self.dead_letters.values():
            for _msg, target, ref in letters:
                pins.add(target)
                if ref:
                    pins.add(ref)
        return pins

    def gc_report(self) -> tuple[set[str], set[str]]:
        """(collected actors, collected spaces) under §5.5's rules."""
        live_actors: set[str] = set()
        live_spaces: set[str] = set()
        stack = list(self.held | self.gc_pins())
        while stack:
            name = stack.pop()
            if self._is_space(name):
                if name in live_spaces or name not in self.registries:
                    continue  # destroyed spaces contribute nothing (§5.5)
                live_spaces.add(name)
                stack.extend(self.registries[name])
            elif name in self.actors:
                if name in live_actors:
                    continue
                live_actors.add(name)
                stack.extend(self.acquaintances.get(name, ()))
        collected_actors = set(self.actors) - live_actors
        collected_spaces = set(self.registries) - live_spaces
        return collected_actors, collected_spaces

    # -- observable exports --------------------------------------------------

    def export_directory(self) -> dict:
        """{space: {target: sorted attr strings}} — the §5 visibility state."""
        return {
            space: {
                target: tuple(sorted("/".join(a) for a in attrs))
                for target, attrs in registry.items()
            }
            for space, registry in self.registries.items()
        }

    def export_parked(self) -> dict[int, dict]:
        """Per-origin park sets: suspended msg ids (ordered) and persistent
        (msg, delivered frozenset) pairs."""
        out: dict[int, dict] = {
            n: {"suspended": [], "persistent": []} for n in range(self.nodes)
        }
        for cmd in self.parked:
            out[cmd["node"]]["suspended"].append(cmd["msg"])
        for entry in self.persistent:
            out[entry["cmd"]["node"]]["persistent"].append(
                (entry["cmd"]["msg"], frozenset(entry["delivered"]))
            )
        return out

    def export_dead_letters(self) -> dict[int, list]:
        return {
            node: sorted((msg, target) for msg, target, _ in letters)
            for node, letters in self.dead_letters.items() if letters
        }
