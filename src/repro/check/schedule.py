"""Schedule control: steering the event queue's nondeterminism points.

The simulation is deterministic once seeded, but the *semantics* must
hold for every legal ordering of same-instant events: which of two
deliveries lands first, which coordinator's op reaches the sequencer
first, whether a detector tick observes a delivery or precedes it.  The
event queue exposes exactly that freedom through its ``tiebreaker`` hook
(:class:`~repro.runtime.events.EventQueue`): when several events tie on
``(time, priority)``, the tiebreaker picks which runs next from their
schedule tags.

Two controllers live here:

* :class:`RandomTieBreaker` — seeded random walks over the schedule
  space: cheap, surprisingly effective at shaking out order bugs.
* :class:`ScriptedTieBreaker` — replays a decision prefix, records the
  full decision ``trail``; :class:`Explorer` uses it for bounded
  DFS over decision prefixes (stateless model checking).

Both consult the tiebreak point only when the tied events can actually
*conflict* (DPOR-lite): deliveries to different actors commute, as do
already-sequenced bus applications — reordering those cannot change any
observable, so exploring both orders is pure waste.  The conflict
classifier errs toward "commutes" for pairs the runtime demonstrably
serializes elsewhere (the hold-back queue, per-actor mailbox FIFO).
"""

from __future__ import annotations

import numpy as np

#: Tag kinds whose same-kind ties always conflict (they race for a
#: global order: arrival order at the sequencer / around the ring).
_ALWAYS_CONFLICT = {"bus_seq", "bus_token"}


def _pair_conflicts(a, b) -> bool:
    if a is None or b is None:
        return True  # untagged events: assume the worst
    ka, kb = a[0], b[0]
    if ka in _ALWAYS_CONFLICT and ka == kb:
        return True
    # Deliveries/processing racing for the same mailbox order.
    if ka in ("deliver", "process") and kb in ("deliver", "process"):
        return a[1] == b[1]
    # A detector tick racing op application: masking interleaves with
    # parked-message rechecks.
    if {ka, kb} == {"detector", "bus"}:
        return True
    return False


def conflicting(tags) -> bool:
    """Do any two of these tied events fail to commute?"""
    for i, a in enumerate(tags):
        for b in tags[i + 1:]:
            if _pair_conflicts(a, b):
                return True
    return False


class RandomTieBreaker:
    """A seeded random walk over the schedule space."""

    def __init__(self, seed: int):
        self.rng = np.random.default_rng(seed)
        self.decisions = 0  #: conflict sites actually randomized

    def choose(self, tags) -> int:
        if not conflicting(tags):
            return 0
        self.decisions += 1
        return int(self.rng.integers(0, len(tags)))


class ScriptedTieBreaker:
    """Replays a decision prefix, then defaults to FIFO; records the trail.

    ``trail`` holds one ``(n_options, chosen)`` pair per *conflict* site,
    in order — the alphabet the :class:`Explorer` branches over.
    """

    def __init__(self, decisions=()):
        self._pending = list(decisions)
        self.trail: list[tuple[int, int]] = []

    def choose(self, tags) -> int:
        if not conflicting(tags):
            return 0
        if self._pending:
            chosen = self._pending.pop(0)
            if not 0 <= chosen < len(tags):
                chosen = 0
        else:
            chosen = 0
        self.trail.append((len(tags), chosen))
        return chosen


class Explorer:
    """Bounded systematic exploration over decision prefixes.

    Depth-first: run a schedule, then branch on every conflict site the
    run exposed beyond its scripted prefix.  Equivalent to stateless
    model checking with the commuting-delivery pruning baked into the
    tiebreakers (sites that never conflict never enter the trail, so
    they are never branched on).

    ``run_fn(tiebreaker)`` must return an object with an ``ok``
    attribute (a :class:`~repro.check.oracle.ConformanceReport`).
    """

    def __init__(self, run_fn, max_schedules: int = 64, deadline=None):
        self.run_fn = run_fn
        self.max_schedules = max_schedules
        self.deadline = deadline  #: optional () -> bool, True = stop now
        self.schedules_run = 0

    def explore(self):
        """Returns ``(first_failing_report_or_None, schedules_run)``."""
        stack: list[list[int]] = [[]]
        seen: set[tuple[int, ...]] = {()}
        while stack and self.schedules_run < self.max_schedules:
            if self.deadline is not None and self.deadline():
                break
            prefix = stack.pop()
            breaker = ScriptedTieBreaker(prefix)
            report = self.run_fn(breaker)
            self.schedules_run += 1
            if not report.ok:
                # The full decision trail replays this schedule exactly.
                report.schedule_decisions = [c for _n, c in breaker.trail]
                return report, self.schedules_run
            taken = [chosen for _n, chosen in breaker.trail]
            # Branch on every conflict site at or beyond this prefix.
            for site in range(len(prefix), len(breaker.trail)):
                n_options, chosen = breaker.trail[site]
                for alt in range(n_options):
                    if alt == chosen:
                        continue
                    candidate = taken[:site] + [alt]
                    key = tuple(candidate)
                    if key not in seen:
                        seen.add(key)
                        stack.append(candidate)
        return None, self.schedules_run
