"""Conformance scenarios: a command-trace format and a seeded generator.

A scenario is plain data — a config plus a list of command dicts — so it
round-trips through JSON (the ``.repro.json`` artifacts the shrinker
emits) and shrinks by deleting commands.  The oracle executes the same
trace against the runtime and the §5 reference model.

Command vocabulary (every command is a dict with an ``op`` key):

=============  ===============================================================
``actor``      ``{"op", "name", "node"}`` — create a sink actor
``space``      ``{"op", "name", "node", "attrs", "parent"}`` — create a space,
               optionally visible under ``attrs`` in ``parent`` (or ROOT)
``vis``        ``{"op", "target", "attrs", "space", "node"}`` — make_visible
``invis``      ``{"op", "target", "space", "node"}`` — make_invisible
``chattr``     ``{"op", "target", "attrs", "space", "node"}``
``destroy``    ``{"op", "target", "node"}`` — destroy a space
``send``       ``{"op", "pattern", "space", "space_pattern", "node", "msg",
               "ref"}`` — pattern send; ``ref`` optionally embeds an actor
               address in the payload (GC pin material)
``bcast``      same fields — pattern broadcast
``dsend``      ``{"op", "target", "node", "msg", "ref"}`` — direct send
``hold``       ``{"op", "target"}`` — pin as external GC root
``release``    ``{"op", "target"}`` — drop the external GC pin
``crash``      ``{"op", "node"}``
``recover``    ``{"op", "node"}``
``detector``   ``{"op", "duration"}`` — arm the failure detector
``probe``      ``{"op", "pattern", "space"}`` — compare resolution on every
               live replica against the model
``gc``         ``{"op"}`` — compare a non-destructive GC cycle
``settle``     ``{"op"}`` — explicit quiescence boundary (the executor also
               settles automatically between command classes, so deleting a
               ``settle`` never changes semantics — which keeps shrinking
               sound)
=============  ===============================================================

Names, not addresses: commands refer to actors/spaces by generated names
(``a0``, ``s1``, the root space is ``"ROOT"``), bound to runtime addresses
by the executor.  That keeps traces serializable and lets the shrinker
drop a creation command and every later reference to it via
:func:`repair_commands`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

import numpy as np

#: Attribute-atom vocabulary: small on purpose, so generated patterns
#: collide, overlap, and exercise structured descent instead of missing.
ATOMS = ["svc", "db", "web", "img", "job", "aux"]

#: Which settle class each op belongs to.  The executor auto-settles when
#: the class changes ("vis" ops and "msg" sends never interleave inside
#: one burst), and always before a "ctl" command.  "free" ops are
#: transparent: purely local, no bus traffic, no messages.
COMMAND_CLASS = {
    "actor": "free", "hold": "free", "release": "free",
    "space": "vis", "vis": "vis", "invis": "vis", "chattr": "vis",
    "destroy": "vis",
    "send": "msg", "bcast": "msg", "dsend": "msg",
    "crash": "ctl", "recover": "ctl", "detector": "ctl", "probe": "ctl",
    "gc": "ctl", "settle": "ctl",
}


@dataclass
class Scenario:
    """One conformance run: fixed config plus an ordered command trace."""

    nodes: int
    bus: str
    seed: int
    unmatched: str  #: root-space policy: "suspend" | "persistent" | "discard"
    commands: list = field(default_factory=list)

    def to_json(self) -> str:
        return json.dumps({
            "nodes": self.nodes, "bus": self.bus, "seed": self.seed,
            "unmatched": self.unmatched, "commands": self.commands,
        }, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        data = json.loads(text)
        return cls(
            nodes=int(data["nodes"]), bus=data["bus"], seed=int(data["seed"]),
            unmatched=data.get("unmatched", "suspend"),
            commands=list(data["commands"]),
        )

    def with_commands(self, commands: list) -> "Scenario":
        return replace(self, commands=list(commands))

    def __len__(self) -> int:
        return len(self.commands)


# ---------------------------------------------------------------------------
# Validity repair
# ---------------------------------------------------------------------------

def repair_commands(nodes: int, commands: list) -> list:
    """Drop commands made meaningless by earlier deletions.

    The shrinker deletes arbitrary command subsets; what remains must
    still be a well-formed trace (no references to never-created names,
    no recover without a crash, at most one concurrently crashed node, no
    command issued *from* a crashed node).  Repair is deterministic and
    order-preserving, so a repaired subset reproduces deterministically.
    """
    actors: set[str] = set()
    spaces: set[str] = {"ROOT"}
    alive: set[str] = {"ROOT"}
    crashed: set[int] = set()
    out: list = []

    def node_ok(cmd) -> bool:
        n = cmd.get("node", 0)
        return 0 <= n < nodes and n not in crashed

    for cmd in commands:
        op = cmd.get("op")
        keep = False
        if op == "actor":
            if node_ok(cmd) and cmd["name"] not in actors | spaces:
                actors.add(cmd["name"])
                keep = True
        elif op == "space":
            parent = cmd.get("parent")
            if (node_ok(cmd) and cmd["name"] not in actors | spaces
                    and (parent is None or parent in alive)):
                spaces.add(cmd["name"])
                alive.add(cmd["name"])
                keep = True
        elif op in ("vis", "invis", "chattr"):
            target = cmd["target"]
            keep = (node_ok(cmd) and cmd["space"] in alive
                    and (target in actors or target in alive))
        elif op == "destroy":
            if node_ok(cmd) and cmd["target"] in alive and cmd["target"] != "ROOT":
                alive.discard(cmd["target"])
                keep = True
        elif op in ("send", "bcast"):
            space = cmd.get("space")
            if node_ok(cmd) and (space is None or space in alive):
                cmd = dict(cmd)
                if cmd.get("ref") not in actors:
                    cmd["ref"] = None
                keep = True
        elif op == "dsend":
            if node_ok(cmd) and cmd["target"] in actors:
                cmd = dict(cmd)
                if cmd.get("ref") not in actors:
                    cmd["ref"] = None
                keep = True
        elif op in ("hold", "release"):
            keep = cmd["target"] in actors | spaces
        elif op == "crash":
            n = cmd.get("node", 0)
            if 0 <= n < nodes and n not in crashed and not crashed:
                crashed.add(n)
                keep = True
        elif op == "recover":
            n = cmd.get("node", 0)
            if n in crashed:
                crashed.discard(n)
                keep = True
        elif op == "detector":
            keep = cmd.get("duration", 0) > 0
        elif op == "probe":
            keep = cmd.get("space", "ROOT") in alive
        elif op == "gc":
            keep = not crashed
        elif op == "settle":
            keep = True
        if keep:
            out.append(cmd)
    return out


# ---------------------------------------------------------------------------
# Seeded generation
# ---------------------------------------------------------------------------

def _gen_path(rng: np.random.Generator, depth: int = 3) -> str:
    n = int(rng.integers(1, depth + 1))
    return "/".join(str(rng.choice(ATOMS)) for _ in range(n))


def _gen_attrs(rng: np.random.Generator) -> list[str]:
    return sorted({_gen_path(rng) for _ in range(int(rng.integers(1, 3)))})


def _gen_pattern(rng: np.random.Generator, used: list[str]) -> str:
    """A pattern biased toward (near-)hits on attributes already in play."""
    base = str(rng.choice(used)) if used and rng.random() < 0.85 else _gen_path(rng)
    atoms = base.split("/")
    roll = rng.random()
    if roll < 0.30:
        return base
    if roll < 0.50:
        atoms[int(rng.integers(0, len(atoms)))] = "*"
        return "/".join(atoms)
    if roll < 0.65:
        return atoms[0] + "/**" if rng.random() < 0.5 else "**/" + atoms[-1]
    if roll < 0.72:
        return "**"
    if roll < 0.84:
        atom = atoms[int(rng.integers(0, len(atoms)))]
        atoms[atoms.index(atom)] = atom[0] + "*"
        return "/".join(atoms)
    if roll < 0.92:
        return "~" + atoms[0][0] + ".*"
    return _gen_path(rng)  # likely miss: exercises the unmatched policy


def generate_scenario(
    seed: int,
    nodes: int | None = None,
    bus: str | None = None,
    faults: bool | None = None,
) -> Scenario:
    """Deterministically grow one interesting scenario from ``seed``.

    ``faults=None`` enables a crash/recover window for every fifth seed
    (``seed % 5 == 3``), so a default 50-seed sweep always includes
    crash/recover schedules.
    """
    rng = np.random.default_rng(seed)
    if nodes is None:
        nodes = int(rng.integers(2, 5))
    if bus is None:
        bus = "sequencer" if seed % 2 == 0 else "token-ring"
    if faults is None:
        faults = seed % 5 == 3
    unmatched = str(rng.choice(
        ["suspend", "persistent", "discard"], p=[0.6, 0.25, 0.15]
    ))

    commands: list = []
    actors: list[str] = []
    spaces: list[str] = ["ROOT"]
    used_attrs: list[str] = []
    crashed: int | None = None
    next_msg = 0
    names = iter(range(10_000))

    def live_node() -> int:
        choices = [n for n in range(nodes) if n != crashed]
        return int(rng.choice(choices))

    def add_actor() -> str:
        name = f"a{next(names)}"
        commands.append({"op": "actor", "name": name, "node": live_node()})
        actors.append(name)
        if rng.random() < 0.5:
            commands.append({"op": "release", "target": name})
        return name

    def add_space() -> str:
        name = f"s{next(names)}"
        parent = str(rng.choice(spaces)) if rng.random() < 0.4 else None
        attrs = _gen_attrs(rng) if rng.random() < 0.8 else None
        commands.append({"op": "space", "name": name, "node": live_node(),
                         "attrs": attrs, "parent": parent})
        if attrs:
            used_attrs.extend(attrs)
        spaces.append(name)
        if rng.random() < 0.3:
            commands.append({"op": "release", "target": name})
        return name

    def vis_burst(count: int) -> None:
        for _ in range(count):
            roll = rng.random()
            if roll < 0.55 and actors:
                attrs = _gen_attrs(rng)
                used_attrs.extend(attrs)
                commands.append({
                    "op": "vis", "target": str(rng.choice(actors)),
                    "attrs": attrs, "space": str(rng.choice(spaces)),
                    "node": live_node(),
                })
            elif roll < 0.70 and actors:
                commands.append({
                    "op": "chattr", "target": str(rng.choice(actors)),
                    "attrs": _gen_attrs(rng), "space": str(rng.choice(spaces)),
                    "node": live_node(),
                })
            elif roll < 0.82 and actors:
                commands.append({
                    "op": "invis", "target": str(rng.choice(actors)),
                    "space": str(rng.choice(spaces)), "node": live_node(),
                })
            elif roll < 0.94 and len(spaces) > 1:
                # Space-in-space visibility, including deliberate cycle
                # attempts — both sides must reject those identically.
                child, parent = rng.choice(spaces, size=2)
                attrs = _gen_attrs(rng)
                used_attrs.extend(attrs)
                commands.append({
                    "op": "vis", "target": str(child), "attrs": attrs,
                    "space": str(parent), "node": live_node(),
                })
            elif len(spaces) > 2:
                victim = str(rng.choice([s for s in spaces if s != "ROOT"]))
                commands.append({"op": "destroy", "target": victim,
                                 "node": live_node()})
                spaces.remove(victim)

    def msg_burst(count: int) -> None:
        nonlocal next_msg
        for _ in range(count):
            roll = rng.random()
            ref = str(rng.choice(actors)) if actors and rng.random() < 0.25 else None
            if roll < 0.55:
                op = "send"
            elif roll < 0.85:
                op = "bcast"
            else:
                op = "dsend"
            if op == "dsend" and actors:
                commands.append({"op": "dsend", "target": str(rng.choice(actors)),
                                 "node": live_node(), "msg": next_msg, "ref": ref})
            else:
                space = None
                if rng.random() < 0.35 and len(spaces) > 1:
                    space = str(rng.choice(spaces))
                commands.append({
                    "op": "send" if op == "dsend" else op,
                    "pattern": _gen_pattern(rng, used_attrs),
                    "space": space, "space_pattern": None,
                    "node": live_node(), "msg": next_msg, "ref": ref,
                })
            next_msg += 1

    # -- setup phase --------------------------------------------------------
    for _ in range(int(rng.integers(3, 7))):
        add_actor()
    for _ in range(int(rng.integers(1, 3))):
        add_space()
    vis_burst(int(rng.integers(3, 7)))
    commands.append({"op": "settle"})

    # -- main rounds --------------------------------------------------------
    rounds = int(rng.integers(3, 7))
    fault_round = int(rng.integers(0, rounds)) if faults else -1
    for round_no in range(rounds):
        if round_no == fault_round:
            victim = int(rng.integers(0, nodes))
            commands.append({"op": "detector",
                             "duration": 4.0 + float(rng.integers(0, 3))})
            commands.append({"op": "crash", "node": victim})
            crashed = victim
            msg_burst(int(rng.integers(2, 5)))
            if rng.random() < 0.5:
                vis_burst(int(rng.integers(1, 4)))
            commands.append({"op": "recover", "node": victim})
            crashed = None
            msg_burst(int(rng.integers(1, 4)))
            continue
        roll = rng.random()
        if roll < 0.35:
            if rng.random() < 0.3:
                add_actor()
            vis_burst(int(rng.integers(2, 6)))
        elif roll < 0.75:
            msg_burst(int(rng.integers(2, 6)))
        elif roll < 0.88:
            commands.append({
                "op": "probe", "pattern": _gen_pattern(rng, used_attrs),
                "space": str(rng.choice(spaces)),
            })
        else:
            commands.append({"op": "gc"})

    # -- closing audit ------------------------------------------------------
    commands.append({"op": "settle"})
    commands.append({"op": "probe", "pattern": "**", "space": "ROOT"})
    commands.append({"op": "gc"})

    return Scenario(nodes=nodes, bus=bus, seed=seed, unmatched=unmatched,
                    commands=repair_commands(nodes, commands))
