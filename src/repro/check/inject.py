"""Deliberate bugs for harness self-tests.

The conformance oracle is only trustworthy if it *catches* the failure
classes it claims to cover.  Each injection here installs a plausible
implementation bug — of a kind this codebase has actually had — and the
self-test (CI job, ``--inject`` flag, test suite) asserts the oracle
flags it and the shrinker reduces it to a few-command trace.

An injection is ``inject(system) -> teardown``: it may monkey-patch
shared classes, so the teardown must restore them even when the check
raises (the oracle guarantees that with ``finally``).
"""

from __future__ import annotations

from repro.core.manager import SpaceManager
from repro.core.matching import ResolutionCache


def inject_arbitration_stale(system):
    """Arbitration remembers candidates: a §5.3 violation.

    ``choose_receiver`` keeps the previous candidate group per manager
    and, when any formerly legal receiver has dropped out of the current
    group, routes to it anyway — the classic stale-snapshot arbitration
    bug.  The oracle catches it as a choice outside the legal group (or
    as a delivery-multiset mismatch).
    """
    original = SpaceManager.choose_receiver
    memory: dict[int, list] = {}

    def remembering(self, candidates, rng, load_of=None):
        previous = memory.get(id(self), [])
        current = list(candidates)
        memory[id(self)] = current
        stale = [c for c in previous if c not in current]
        if stale:
            return stale[0]
        return original(self, candidates, rng, load_of)

    SpaceManager.choose_receiver = remembering
    return lambda: setattr(SpaceManager, "choose_receiver", original)


def inject_stale_resolution(system):
    """Resolution cache trusts hits blindly: a missed-invalidation bug.

    ``ResolutionCache.lookup`` normally validates a hit against the
    directory epoch and the epochs of every space the cached walk
    visited.  This injection skips the validation, so resolution keeps
    answering from snapshots that ``make_invisible``/``chattr``/destroy
    have outdated — the bug family PR 1's epoch machinery exists to
    prevent.  The oracle catches it through probes, misdelivery, or
    park-set drift.
    """
    original = ResolutionCache.lookup

    def blind(self, kind, space, pattern, directory, stats=None):
        entry = self._entries.get((kind, space, pattern))
        if entry is not None:
            return entry[0]
        return original(self, kind, space, pattern, directory, stats)

    ResolutionCache.lookup = blind
    return lambda: setattr(ResolutionCache, "lookup", original)


#: Name -> injection, for ``python -m repro check --inject NAME``.
INJECTIONS = {
    "arbitration-stale": inject_arbitration_stale,
    "stale-resolution": inject_stale_resolution,
}
