"""Divergence shrinking: delta-debugging a failing command trace.

Given a scenario the oracle rejects, find a (locally) minimal command
subsequence that still diverges — small enough to read, small enough to
turn into a regression test.  Classic ddmin over the command list, then
a one-at-a-time minimization pass.

Soundness relies on two properties of the surrounding machinery:

* any subsequence of commands is repaired into a well-formed trace by
  :func:`~repro.check.scenario.repair_commands` (dangling references
  dropped, crash/recover invariants restored), deterministically;
* the oracle settles at command-class transitions automatically, so
  deleting a command never silently changes the boundary discipline of
  the ones that remain.

``check_fn`` must be deterministic for a fixed command list — the caller
bakes the schedule controller (fresh per invocation) into it.
"""

from __future__ import annotations

import json

from .scenario import Scenario, repair_commands


def _key(commands: list) -> str:
    return json.dumps(commands, sort_keys=True)


def shrink_scenario(scenario: Scenario, check_fn, max_checks: int = 400):
    """Minimize ``scenario`` while ``check_fn`` keeps failing on it.

    ``check_fn(scenario) -> ConformanceReport``; a scenario "fails" when
    the report's ``ok`` is false.  Returns ``(shrunk_scenario, checks)``
    where the shrunk scenario's commands are already repaired.  If the
    input doesn't fail (flaky under the supplied schedule), it is
    returned unchanged.
    """
    cache: dict[str, bool] = {}
    checks = 0

    def fails(commands: list) -> bool:
        nonlocal checks
        repaired = repair_commands(scenario.nodes, commands)
        key = _key(repaired)
        if key in cache:
            return cache[key]
        if checks >= max_checks:
            return False  # budget exhausted: treat as passing, keep current
        checks += 1
        verdict = not check_fn(scenario.with_commands(repaired)).ok
        cache[key] = verdict
        return verdict

    best = repair_commands(scenario.nodes, list(scenario.commands))
    if not fails(best):
        return scenario, checks

    # -- ddmin: remove chunks at increasing granularity ---------------------
    granularity = 2
    while len(best) >= 2:
        chunk = max(1, len(best) // granularity)
        shrunk = False
        start = 0
        while start < len(best):
            candidate = best[:start] + best[start + chunk:]
            if candidate and fails(candidate):
                best = repair_commands(scenario.nodes, candidate)
                shrunk = True
                # Stay at the same start: the next chunk slid into place.
            else:
                start += chunk
        if shrunk:
            granularity = max(granularity - 1, 2)
        elif granularity >= len(best):
            break
        else:
            granularity = min(len(best), granularity * 2)

    # -- 1-minimal polish: no single command can be dropped -----------------
    index = 0
    while index < len(best):
        candidate = best[:index] + best[index + 1:]
        if candidate and fails(candidate):
            best = repair_commands(scenario.nodes, candidate)
        else:
            index += 1

    return scenario.with_commands(best), checks
