"""Simulated network topology: nodes, LAN clusters, WAN links.

The paper's process-pool example (section 6) relies on locality structure:
"the broadcast can happen to representatives of a WAN whereas the
subsequent distribution can be localized to be within a LAN".  To measure
that (experiment E4) the simulator needs an explicit two-level topology
with distinct latency classes:

* ``LOCAL``  — both endpoints on the same node (coordinator-internal);
* ``LAN``    — distinct nodes in the same cluster;
* ``WAN``    — nodes in different clusters.

Latencies are a base per class plus seeded jitter, so interleaving is
realistic but reproducible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class LinkKind(enum.Enum):
    """Classification of one message hop, for locality accounting."""

    LOCAL = "local"
    LAN = "lan"
    WAN = "wan"


@dataclass(frozen=True)
class LatencyModel:
    """Base latency and jitter fraction per link class.

    Defaults approximate the classic 3-orders-of-magnitude spread between
    intra-node scheduling, LAN round trips, and WAN round trips; the
    absolute values are arbitrary virtual-time units — experiments report
    ratios and shapes, not wall-clock numbers.
    """

    local: float = 0.001
    lan: float = 0.1
    wan: float = 2.0
    jitter: float = 0.25  #: +/- fraction of the base drawn uniformly

    def base(self, kind: LinkKind) -> float:
        if kind is LinkKind.LOCAL:
            return self.local
        if kind is LinkKind.LAN:
            return self.lan
        return self.wan

    def sample(self, kind: LinkKind, rng: np.random.Generator) -> float:
        """One latency draw for a hop of the given kind."""
        base = self.base(kind)
        if self.jitter <= 0:
            return base
        factor = 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return max(base * factor, 1e-9)


@dataclass
class Topology:
    """Node-to-cluster assignment.

    ``clusters[i]`` is the number of nodes in LAN cluster ``i``; nodes are
    numbered densely in cluster order, so ``Topology([2, 3])`` yields nodes
    0-1 in cluster 0 and nodes 2-4 in cluster 1.
    """

    clusters: list[int] = field(default_factory=lambda: [1])

    def __post_init__(self):
        if not self.clusters or any(c < 1 for c in self.clusters):
            raise ValueError("topology needs at least one node per cluster")
        self._cluster_of: list[int] = []
        for idx, size in enumerate(self.clusters):
            self._cluster_of.extend([idx] * size)

    # -- constructors ------------------------------------------------------------

    @staticmethod
    def single() -> "Topology":
        """One node: the pure shared-memory case."""
        return Topology([1])

    @staticmethod
    def lan(nodes: int) -> "Topology":
        """One cluster of ``nodes`` nodes."""
        return Topology([nodes])

    @staticmethod
    def wan(*cluster_sizes: int) -> "Topology":
        """Multiple LAN clusters joined by WAN links."""
        return Topology(list(cluster_sizes))

    # -- queries -------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._cluster_of)

    @property
    def nodes(self) -> range:
        return range(self.node_count)

    def cluster_of(self, node: int) -> int:
        """The LAN cluster index containing ``node``."""
        return self._cluster_of[node]

    def cluster_nodes(self, cluster: int) -> list[int]:
        """All node ids in ``cluster``."""
        return [n for n in self.nodes if self._cluster_of[n] == cluster]

    @property
    def cluster_count(self) -> int:
        return len(self.clusters)

    def link_kind(self, src: int, dst: int) -> LinkKind:
        """Classify the hop from ``src`` to ``dst``."""
        if src == dst:
            return LinkKind.LOCAL
        if self._cluster_of[src] == self._cluster_of[dst]:
            return LinkKind.LAN
        return LinkKind.WAN

    def __repr__(self):
        return f"<Topology clusters={self.clusters}>"


class Network:
    """Topology + latency model + the RNG stream for jitter draws."""

    __slots__ = ("topology", "latency_model", "_rng", "hop_counts")

    def __init__(
        self,
        topology: Topology,
        latency_model: LatencyModel | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.topology = topology
        self.latency_model = latency_model or LatencyModel()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        #: Cumulative hop counts by link kind (locality accounting, E4).
        self.hop_counts: dict[LinkKind, int] = {k: 0 for k in LinkKind}

    def latency(self, src: int, dst: int) -> float:
        """Sample the latency of one hop and account for it."""
        kind = self.topology.link_kind(src, dst)
        self.hop_counts[kind] += 1
        return self.latency_model.sample(kind, self._rng)

    def reset_counts(self) -> None:
        """Zero the hop counters (between benchmark phases)."""
        for k in self.hop_counts:
            self.hop_counts[k] = 0

    def __repr__(self):
        return f"<Network {self.topology!r} hops={ {k.value: v for k, v in self.hop_counts.items()} }>"
