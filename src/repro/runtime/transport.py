"""Abstract transport objects.

Section 7.2: "The Coordinator and the executing actors communicate through
abstract transport objects which are subclassed to use a specific message
passing mechanism; the mechanism may be selected at run-time."  The same
abstraction carries coordinator-to-coordinator traffic (section 7.3).

A transport's one job is to answer: *when does this payload arrive, if at
all?*  It returns a latency (or raises/returns ``None`` for a drop) and
the runtime schedules the delivery event.  Three implementations:

* :class:`InstantTransport` — fixed negligible latency; used by unit tests
  that want semantics without timing noise.
* :class:`NetworkTransport` — latencies from the :class:`~repro.runtime.network.Network`
  model; the default.
* :class:`LossyTransport` — wraps another transport and drops each attempt
  with probability ``loss``; paired with sender retransmission so that the
  actor model's guaranteed-eventual-delivery still holds (used by the
  reliability experiment E11 and failure-injection tests).

Crash injection lives here too: a transport consults the set of crashed
nodes and refuses delivery to them.
"""

from __future__ import annotations

import abc

import numpy as np

from .network import Network


class Transport(abc.ABC):
    """Decides delivery latency (or drop) for one hop between nodes.

    Every transport carries per-instance accounting: ``attempts`` counts
    delivery attempts observed, ``drops`` the attempts that were lost.
    They are initialized here, in ``__init__`` — as class attributes they
    looked per-instance but a subclass forgetting its own assignments
    would have silently accumulated counts on the *class*, shared across
    every system in the process.  Subclasses must call
    ``super().__init__()``.
    """

    def __init__(self):
        #: Number of delivery attempts observed (accounting).
        self.attempts = 0
        #: Number of attempts that were dropped.
        self.drops = 0

    @abc.abstractmethod
    def try_deliver(self, src_node: int, dst_node: int) -> float | None:
        """Latency for this attempt, or ``None`` if the attempt is lost."""

    def deliver_latency(
        self, src_node: int, dst_node: int, max_retries: int = 100
    ) -> float:
        """Total latency including retransmissions until success.

        Models a simple stop-and-wait retransmission: each failed attempt
        costs one timeout interval (twice the eventual successful latency
        is a fair stand-in; we use the per-attempt draw).  Guarantees
        eventual delivery as long as the loss rate is below 1.

        Raises
        ------
        RuntimeError
            If ``max_retries`` attempts all fail (loss = 1.0 would
            otherwise loop forever; the actor guarantee presumes a live
            link).
        """
        total = 0.0
        for _ in range(max_retries):
            latency = self.try_deliver(src_node, dst_node)
            if latency is not None:
                return total + latency
            # A lost attempt is detected after a timeout, modelled as one
            # base-latency interval of the successful path.
            total += self.timeout_interval(src_node, dst_node)
        raise RuntimeError(
            f"transport could not deliver {src_node}->{dst_node} after {max_retries} attempts"
        )

    def timeout_interval(self, src_node: int, dst_node: int) -> float:
        """Retransmission timeout for the link (override for tuned models)."""
        return 1.0

    def node_is_down(self, node: int) -> bool:
        """Is ``node`` currently crashed?  (Liveness oracle for the bus
        protocols and the dead-letter queue; transports without crash
        injection report everything live.)"""
        return False

    def metrics_snapshot(self) -> dict:
        """The transport's accounting counters, for observability export."""
        return {"attempts": self.attempts, "drops": self.drops}


class InstantTransport(Transport):
    """Delivers everything after a fixed tiny latency (tests)."""

    def __init__(self, latency: float = 0.001):
        super().__init__()
        self.latency = latency

    def try_deliver(self, src_node: int, dst_node: int) -> float | None:
        self.attempts += 1
        return self.latency

    def timeout_interval(self, src_node: int, dst_node: int) -> float:
        return self.latency * 2


class NetworkTransport(Transport):
    """Latencies from the topology-aware network model (the default)."""

    def __init__(self, network: Network):
        super().__init__()
        self.network = network
        #: Nodes currently crashed: delivery to/from them fails terminally.
        self.crashed: set[int] = set()

    def crash_node(self, node: int) -> None:
        """Mark ``node`` down; messages to it are dropped without retry."""
        self.crashed.add(node)

    def recover_node(self, node: int) -> None:
        """Bring ``node`` back up."""
        self.crashed.discard(node)

    def node_is_down(self, node: int) -> bool:
        return node in self.crashed

    def try_deliver(self, src_node: int, dst_node: int) -> float | None:
        self.attempts += 1
        if src_node in self.crashed or dst_node in self.crashed:
            self.drops += 1
            return None
        return self.network.latency(src_node, dst_node)

    def deliver_latency(self, src_node: int, dst_node: int, max_retries: int = 100) -> float:
        # Crashes are terminal, not transient: do not spin on retries.
        if src_node in self.crashed or dst_node in self.crashed:
            self.attempts += 1
            self.drops += 1
            from repro.core.errors import NodeDownError

            raise NodeDownError(f"node {dst_node if dst_node in self.crashed else src_node} is down")
        return super().deliver_latency(src_node, dst_node, max_retries)

    def timeout_interval(self, src_node: int, dst_node: int) -> float:
        kind = self.network.topology.link_kind(src_node, dst_node)
        return 2.0 * self.network.latency_model.base(kind)


class LossyTransport(Transport):
    """Wraps another transport, losing each attempt with probability ``loss``."""

    def __init__(self, inner: Transport, loss: float, rng: np.random.Generator):
        if not 0.0 <= loss < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        super().__init__()
        self.inner = inner
        self.loss = loss
        self._rng = rng

    def try_deliver(self, src_node: int, dst_node: int) -> float | None:
        self.attempts += 1
        if float(self._rng.random()) < self.loss:
            self.drops += 1
            return None
        return self.inner.try_deliver(src_node, dst_node)

    def timeout_interval(self, src_node: int, dst_node: int) -> float:
        return self.inner.timeout_interval(src_node, dst_node)

    def node_is_down(self, node: int) -> bool:
        return self.inner.node_is_down(node)

    def metrics_snapshot(self) -> dict:
        """Own counters plus the wrapped transport's, nested under ``inner``."""
        snapshot = super().metrics_snapshot()
        snapshot["inner"] = self.inner.metrics_snapshot()
        return snapshot
