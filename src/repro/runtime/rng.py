"""Seeded randomness: the system's single source of nondeterminism.

The paradigm is full of *specified* nondeterminism — ``send`` picks an
arbitrary group member, message latencies interleave arbitrarily — and the
simulation models all of it with draws from ``numpy.random.Generator``
streams derived from one seed.  Runs are exactly reproducible given the
seed, which is what makes the experiments and property tests meaningful.

Independent subsystems get independent *child* streams (via
``Generator.spawn``-style seeding with ``SeedSequence``) so that, e.g.,
adding an extra latency draw in the network does not perturb the
arbitration choices — experiments stay comparable across code changes.
"""

from __future__ import annotations

import numpy as np


class RngHub:
    """Derives named, independent random streams from one master seed."""

    __slots__ = ("seed", "_seq", "_streams")

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._seq = np.random.SeedSequence(self.seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for subsystem ``name`` (created on first use).

        The same name always returns the same generator object; distinct
        names get statistically independent streams.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed deterministically from (master seed, name).
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            child = np.random.SeedSequence(
                entropy=self._seq.entropy, spawn_key=tuple(int(b) for b in digest)
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def __repr__(self):
        return f"<RngHub seed={self.seed} streams={sorted(self._streams)}>"
