"""Nodes: the unit of placement (Fig. 2 of the paper).

In the prototype a node bundles the interpreter, the ActorInterface, and
the Coordinator.  In this runtime the coordinator carries all run-time
state, so :class:`Node` is a thin view over one — it exists to give the
interpreter layer (``repro.interp``) its attachment point and to expose
node-level accounting with a stable name.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .coordinator import Coordinator

if TYPE_CHECKING:  # pragma: no cover
    from .system import ActorSpaceSystem


class Node:
    """A view of one simulated node."""

    __slots__ = ("system", "node_id")

    def __init__(self, system: "ActorSpaceSystem", node_id: int):
        self.system = system
        self.node_id = node_id

    @property
    def coordinator(self) -> Coordinator:
        return self.system.coordinators[self.node_id]

    @property
    def cluster(self) -> int:
        """The LAN cluster this node belongs to."""
        return self.system.topology.cluster_of(self.node_id)

    @property
    def actor_count(self) -> int:
        """Live (non-terminated) actors currently placed here."""
        return sum(
            1 for r in self.coordinator.actors.values() if not r.terminated
        )

    @property
    def crashed(self) -> bool:
        return self.coordinator.crashed

    @property
    def queue_depth(self) -> int:
        """Messages waiting in this node's live mailboxes."""
        return sum(
            r.mailbox.pending
            for r in self.coordinator.actors.values()
            if not r.terminated
        )

    @property
    def parked_count(self) -> int:
        """Suspended pattern messages + persistent broadcasts held here."""
        coordinator = self.coordinator
        return len(coordinator.suspended) + len(coordinator.persistent)

    def telemetry(self) -> dict:
        """One node's live observability snapshot (plain data).

        The per-node slice of :meth:`ActorSpaceSystem.metrics_snapshot`,
        cheap enough to poll inside a behavior or a monitoring daemon.
        """
        return {
            "node": self.node_id,
            "cluster": self.cluster,
            "crashed": self.crashed,
            "actors": self.actor_count,
            "queue_depth": self.queue_depth,
            "parked": self.parked_count,
            "visibility_ops_applied":
                self.system.tracer.visibility_ops_applied.get(self.node_id, 0),
        }

    def __repr__(self):
        return f"<Node {self.node_id} cluster={self.cluster} actors={self.actor_count}>"
