"""Self-healing delivery: failure detection and dead-letter redelivery.

The paper's open-system stance (section 2: "components can be designed
independently and may enter or leave the system") implies nodes that
*leave involuntarily*.  The seed runtime already modelled the crash
itself (the transport drops traffic to crashed nodes, experiment E11
measures the blast radius); this module adds the two mechanisms a
deployment needs to *react*:

* :class:`FailureDetector` — each coordinator observes its peers through
  periodic heartbeats riding the ordinary (lossy) transport.  Missed
  heartbeats first make a peer *suspected*, then *confirmed down*; the
  first confirmation quarantines the dead node's directory entries on
  every live replica and notifies the bus so the total-order protocol
  can fail over.  A heartbeat heard again clears suspicion (false
  positives under loss are expected and harmless).
* :class:`DeadLetterQueue` — a bounded per-destination queue capturing
  envelopes the router had to drop because the destination was down (or
  its target already dead).  When the destination recovers, queued
  letters are redelivered with capped exponential backoff, up to
  ``max_redeliveries`` attempts per envelope; letters that exhaust their
  attempts (or overflow the bounded queue) are *expired* — visible in
  the ``dead_letters_expired_total`` counter, never silently lost twice.

Both components are opt-in and deterministic: the detector is driven by
virtual-clock events bounded by an explicit horizon (so ``run()`` still
quiesces), and redelivery is scheduled through the ordinary event queue.
The historical drop counters keep their meaning — capture is additive
accounting on top of the drop, not a replacement for it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.messages import Envelope

from .coordinator import ACTOR_PRIORITY
from .bus import BUS_PRIORITY

if TYPE_CHECKING:  # pragma: no cover
    from .system import ActorSpaceSystem


class FailureDetector:
    """Heartbeat-based peer monitoring over the simulated transport.

    Every ``interval`` of virtual time, each live node sends one
    heartbeat to every peer through :meth:`Transport.try_deliver` — so
    heartbeats are subject to the same loss model as application
    traffic, and a lossy link can produce (transient) false suspicion.
    Per observer, a peer missing ``suspect_after`` consecutive
    heartbeats becomes *suspected*; at ``confirm_after`` misses it is
    *confirmed down*.  The first observer to confirm triggers the
    system-wide reaction (directory quarantine + bus failover); later
    confirmations are deduplicated.

    The detector runs only up to the horizon given to :meth:`start` —
    periodic timers with no horizon would keep the event queue non-empty
    forever and ``run()`` would never reach quiescence.
    """

    def __init__(
        self,
        system: "ActorSpaceSystem",
        interval: float = 0.5,
        suspect_after: int = 2,
        confirm_after: int = 4,
    ):
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be positive, got {interval}")
        if suspect_after < 1 or confirm_after < suspect_after:
            raise ValueError(
                "need 1 <= suspect_after <= confirm_after, "
                f"got suspect_after={suspect_after} confirm_after={confirm_after}"
            )
        self.system = system
        self.interval = interval
        self.suspect_after = suspect_after
        self.confirm_after = confirm_after
        nodes = list(system.topology.nodes)
        self.nodes = nodes
        #: The nodes this detector instance observes *as*.  The simulator
        #: plays every node from one process, so all of them; a TCP node
        #: process narrows this to its own node id (each process runs its
        #: own detector and only its local vantage point is real).
        self.observers = list(nodes)
        #: Consecutive missed heartbeats, per (observer, peer).
        self._misses: dict[int, dict[int, int]] = {
            o: {p: 0 for p in nodes if p != o} for o in nodes
        }
        self._suspected: dict[int, set[int]] = {o: set() for o in nodes}
        #: Peers confirmed down system-wide (first confirmation wins).
        self.confirmed_down: set[int] = set()
        self._deadline = 0.0
        self._running = False
        self.ticks = 0

    # -- lifecycle --------------------------------------------------------------

    def start(self, duration: float) -> "FailureDetector":
        """Run (or extend) heartbeat ticks until ``now + duration``."""
        self._deadline = max(self._deadline, self.system.clock.now + duration)
        if not self._running:
            self._running = True
            self.system.events.schedule(
                self.system.clock.now + self.interval, self._tick,
                priority=BUS_PRIORITY, tag=("detector",),
            )
        return self

    def stop(self) -> None:
        """Let the pending tick be the last one."""
        self._deadline = self.system.clock.now

    def suspected_by(self, observer: int) -> frozenset[int]:
        """The peers ``observer`` currently suspects."""
        return frozenset(self._suspected[observer])

    # -- the heartbeat round ----------------------------------------------------

    def _tick(self) -> None:
        system = self.system
        now = system.clock.now
        self.ticks += 1
        transport = system.transport
        tracer = system.tracer
        for observer in self.observers:
            if transport.node_is_down(observer):
                continue  # a dead node observes nothing
            misses = self._misses[observer]
            suspected = self._suspected[observer]
            for peer in self.nodes:
                if peer == observer:
                    continue
                heard = (
                    not transport.node_is_down(peer)
                    and transport.try_deliver(peer, observer) is not None
                )
                if heard:
                    misses[peer] = 0
                    if peer in suspected:
                        # False suspicion under loss: quietly rescind.
                        suspected.discard(peer)
                        tracer.on_node_health("node_recovered", observer, peer, now)
                    continue
                misses[peer] += 1
                if misses[peer] == self.suspect_after and peer not in suspected:
                    suspected.add(peer)
                    tracer.on_node_health("node_suspected", observer, peer, now)
                if (
                    misses[peer] >= self.confirm_after
                    and peer not in self.confirmed_down
                ):
                    self.confirmed_down.add(peer)
                    tracer.on_node_health("node_confirmed_down", observer, peer, now)
                    system._on_node_confirmed_down(peer)
        if now + self.interval <= self._deadline:
            system.events.schedule(
                now + self.interval, self._tick, priority=BUS_PRIORITY,
                tag=("detector",),
            )
        else:
            self._running = False

    def on_node_recovered(self, node: int) -> None:
        """External recovery notice: clear all verdicts about ``node``."""
        was_known_bad = node in self.confirmed_down
        self.confirmed_down.discard(node)
        for observer in self.nodes:
            if node in self._misses[observer]:
                self._misses[observer][node] = 0
            if node in self._suspected[observer]:
                self._suspected[observer].discard(node)
                was_known_bad = True
        if was_known_bad:
            self.system.tracer.on_node_health(
                "node_recovered", node, node, self.system.clock.now
            )

    def __repr__(self):
        return (
            f"<FailureDetector interval={self.interval} ticks={self.ticks} "
            f"confirmed={sorted(self.confirmed_down)}>"
        )


@dataclass
class DeadLetter:
    """One captured envelope awaiting redelivery."""

    envelope: Envelope
    dst_node: int
    reason: str
    queued_at: float
    attempts: int = 0

    def __repr__(self):
        return (
            f"<DeadLetter env#{self.envelope.envelope_id} -> n{self.dst_node} "
            f"{self.reason} attempts={self.attempts}>"
        )


class DeadLetterQueue:
    """Bounded per-destination capture of undeliverable envelopes.

    ``capture`` is called by the coordinator wherever it previously
    dropped an envelope on the floor (destination node down, target
    actor dead).  ``flush`` — invoked by ``recover_node`` — schedules
    redelivery of everything parked for the recovered node with capped
    exponential backoff (``base_backoff * 2**attempts``, at most
    ``max_backoff``).  Attempts are tracked per envelope id, so an
    envelope that keeps failing across crash cycles is expired after
    ``max_redeliveries`` instead of looping forever; a full queue evicts
    its oldest letter (also counted as expired, reason ``overflow``).
    """

    def __init__(
        self,
        system: "ActorSpaceSystem",
        capacity: int = 256,
        max_redeliveries: int = 4,
        base_backoff: float = 0.05,
        max_backoff: float = 1.0,
    ):
        if capacity <= 0:
            raise ValueError(f"dead-letter capacity must be positive, got {capacity}")
        if max_redeliveries < 1:
            raise ValueError("max_redeliveries must be at least 1")
        self.system = system
        self.capacity = capacity
        self.max_redeliveries = max_redeliveries
        self.base_backoff = base_backoff
        self.max_backoff = max_backoff
        self._queues: dict[int, deque[DeadLetter]] = {}
        #: Redelivery attempts per envelope id (survives re-capture).
        self._attempts: dict[int, int] = {}
        self.queued_total = 0
        self.redelivered_total = 0
        self.expired_total = 0
        #: Optional :class:`repro.store.NodeStore` — when attached, the
        #: letter lifecycle (capture / resolve / expire) is journaled so
        #: a restart re-adopts exactly the still-pending letters.
        self.store = None
        #: Letters re-adopted from disk by the last recovery.
        self.recovered_total = 0

    # -- capture ----------------------------------------------------------------

    def capture(self, envelope: Envelope, dst_node: int, reason: str) -> bool:
        """Park an undeliverable envelope; returns ``False`` if expired.

        Called *after* the drop was counted — capture is an additive
        safety net, it never rewrites the drop accounting.
        """
        attempts = self._attempts.get(envelope.envelope_id, 0)
        if attempts >= self.max_redeliveries:
            self._expire(envelope, dst_node, "max_redeliveries", attempts)
            return False
        queue = self._queues.setdefault(dst_node, deque())
        if len(queue) >= self.capacity:
            victim = queue.popleft()
            self._expire(victim.envelope, dst_node, "overflow", victim.attempts)
        letter = DeadLetter(
            envelope, dst_node, reason, self.system.clock.now, attempts
        )
        queue.append(letter)
        self.queued_total += 1
        if self.store is not None:
            self.store.append_dlq_capture(
                envelope, dst_node, reason, attempts, letter.queued_at)
            self.store.commit()
        self.system.tracer.on_dead_letter(
            "queued", envelope, node=dst_node, t=self.system.clock.now,
            reason=reason, attempts=attempts,
        )
        return True

    def capture_retry(self, envelope: Envelope, dst_node: int,
                      reason: str) -> bool:
        """Park an envelope whose *destination is alive* and retry it.

        Overload sheds (full mailbox, admission rejection) differ from
        node-down captures: there is no future recovery edge to flush
        the queue, so redelivery is scheduled immediately with the same
        capped backoff.  This is queue-based load leveling — parked
        traffic re-offers itself as the destination drains, and an
        envelope that keeps being shed expires after
        ``max_redeliveries`` attempts instead of looping forever.

        Returns ``False`` if the envelope expired instead of parking.
        """
        if not self.capture(envelope, dst_node, reason):
            return False
        queue = self._queues[dst_node]
        self._schedule(queue.pop())
        return True

    def note_delivered(self, envelope_id: int) -> None:
        """Forget redelivery attempts for an envelope that got through.

        Called by the coordinator when an envelope lands in a mailbox
        (and by the TCP runtime when it hands an envelope to the wire).
        Without this, ``_attempts`` kept one entry per *successfully*
        redelivered envelope forever — entries were added in
        ``_schedule`` but only removed in ``_expire``, so the dict grew
        without bound under crash/recover churn.
        """
        if self._attempts:
            self._attempts.pop(envelope_id, None)
        if self.store is not None:
            # The store only journals ids it has persisted as captured
            # (this method fires on *every* mailbox landing, captured or
            # not — the store-side guard stops the write amplification).
            if self.store.append_dlq_resolve(envelope_id):
                self.store.commit()

    def _expire(self, envelope: Envelope, dst_node: int, reason: str,
                attempts: int) -> None:
        self.expired_total += 1
        self._attempts.pop(envelope.envelope_id, None)
        if self.store is not None:
            if self.store.append_dlq_expire(envelope.envelope_id, reason,
                                            attempts):
                self.store.commit()
        self.system.tracer.on_dead_letter(
            "expired", envelope, node=dst_node, t=self.system.clock.now,
            reason=reason, attempts=attempts,
        )

    # -- redelivery -------------------------------------------------------------

    def flush(self, node: int) -> int:
        """Schedule redelivery of everything parked for ``node``."""
        queue = self._queues.get(node)
        if not queue:
            return 0
        count = 0
        while queue:
            self._schedule(queue.popleft())
            count += 1
        return count

    def _schedule(self, letter: DeadLetter) -> None:
        delay = min(self.base_backoff * (2 ** letter.attempts), self.max_backoff)
        letter.attempts += 1
        self._attempts[letter.envelope.envelope_id] = letter.attempts
        self.system.events.schedule(
            self.system.clock.now + delay,
            lambda: self._redeliver(letter),
            priority=ACTOR_PRIORITY,
            tag=("dlq", letter.dst_node),
        )

    def _redeliver(self, letter: DeadLetter) -> None:
        system = self.system
        dst = letter.dst_node
        if system.transport.node_is_down(dst) or system.coordinators[dst].crashed:
            # The destination died again before the backoff elapsed: park
            # the letter for the next recovery (or expire it).
            if letter.attempts >= self.max_redeliveries:
                self._expire(letter.envelope, dst, "max_redeliveries",
                             letter.attempts)
            else:
                self._queues.setdefault(dst, deque()).append(letter)
            return
        self.redelivered_total += 1
        system.tracer.on_dead_letter(
            "redelivered", letter.envelope, node=dst, t=system.clock.now,
            reason=letter.reason, attempts=letter.attempts,
        )
        # Route from the (now live) destination's own coordinator; a
        # failed redelivery re-enters capture with its attempt count.
        target = letter.envelope.target
        assert target is not None
        system.coordinators[dst]._route(letter.envelope, target)

    # -- recovery ---------------------------------------------------------------

    def adopt(self, envelope: Envelope, dst_node: int, reason: str,
              queued_at: float = 0.0, attempts: int = 0) -> DeadLetter:
        """Re-insert a letter recovered from disk, bypassing capture.

        Capture would re-journal the letter (and re-count it in
        ``queued_total``); adoption restores the in-memory shape exactly
        as the snapshot/journal recorded it.  Redelivery happens through
        the ordinary ``flush``/recovery edges afterwards.
        """
        letter = DeadLetter(envelope, dst_node, reason, queued_at, attempts)
        self._queues.setdefault(dst_node, deque()).append(letter)
        if attempts:
            self._attempts[envelope.envelope_id] = attempts
        self.recovered_total += 1
        return letter

    def queues(self) -> dict[int, deque]:
        """The live per-destination queues (read-only use: snapshots)."""
        return self._queues

    # -- introspection ----------------------------------------------------------

    def pending(self, node: int | None = None) -> int:
        """Letters currently parked (for one node, or in total)."""
        if node is not None:
            return len(self._queues.get(node, ()))
        return sum(len(q) for q in self._queues.values())

    def letters(self):
        """Iterate every parked :class:`DeadLetter` (all destinations).

        Parked letters pin their envelope's addresses against garbage
        collection (§5.5: a letter still awaiting redelivery is a pending
        message), so the GC scan walks this.
        """
        for queue in self._queues.values():
            yield from queue

    def export_pending(self) -> dict[int, list[DeadLetter]]:
        """Parked letters per destination node (shallow copies) for
        conformance checking."""
        return {node: list(queue) for node, queue in self._queues.items() if queue}

    def __len__(self) -> int:
        return self.pending()

    def __repr__(self):
        return (
            f"<DeadLetterQueue pending={self.pending()} "
            f"queued={self.queued_total} redelivered={self.redelivered_total} "
            f"expired={self.expired_total}>"
        )
