"""Concrete :class:`~repro.core.actor.ActorContext` bound to the runtime.

One ephemeral context is made per behavior invocation; it funnels every
primitive to the actor's node coordinator.  Behaviors never see the
coordinator or the system directly — the context *is* the paper's
ActorInterface as seen from native (Python) behaviors.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.core.actor import ActorContext, ActorRecord, Behavior, as_behavior
from repro.core.addresses import ActorAddress, MailAddress, SpaceAddress
from repro.core.capabilities import Capability
from repro.core.messages import Destination, Envelope, Message, Mode, Port, parse_destination

if TYPE_CHECKING:  # pragma: no cover
    from .system import ActorSpaceSystem


def _as_destination(destination: "Destination | str") -> Destination:
    if isinstance(destination, Destination):
        return destination
    return parse_destination(destination)


class RuntimeContext(ActorContext):
    """The live context handed to behaviors by the scheduler.

    ``cause`` is the envelope whose processing created this context (or
    ``None`` for ``on_start`` hooks and driver calls); envelopes sent
    through the context join its causal tree, which is what lets the
    flight recorder chain a delivery back to the external send that
    ultimately triggered it.

    ``claimed`` records every address this API *handed to* the behavior
    during the invocation (created actors, created spaces).  Together
    with the creation-time state scan and the delivery-time payload scan
    it covers every channel through which an address can enter behavior
    state, so the coordinator's acquaintance bookkeeping after a receive
    is O(new addresses) instead of a full rescan of the behavior.
    """

    __slots__ = ("_system", "_record", "_cause", "claimed")

    def __init__(self, system: "ActorSpaceSystem", record: ActorRecord,
                 cause: "Envelope | None" = None):
        self._system = system
        self._record = record
        self._cause = cause
        self.claimed: list[MailAddress] = []

    @property
    def _trace_id(self):
        return self._cause.trace_id if self._cause is not None else None

    @property
    def _parent_id(self):
        return self._cause.envelope_id if self._cause is not None else None

    # -- identity ---------------------------------------------------------------

    @property
    def self_address(self) -> ActorAddress:
        return self._record.address

    @property
    def host_space(self) -> SpaceAddress:
        return self._record.host_space

    @property
    def now(self) -> float:
        return self._system.clock.now

    @property
    def _coordinator(self):
        return self._system.coordinators[self._record.node]

    # -- classic actor primitives ---------------------------------------------

    def create(
        self,
        behavior: "Behavior | Callable",
        *args: Any,
        space: SpaceAddress | None = None,
        capability: Capability | None = None,
        node: int | None = None,
        **kwargs: Any,
    ) -> ActorAddress:
        target_node = self._record.node if node is None else node
        coordinator = self._system.coordinators[target_node]
        address = coordinator.create_actor(
            behavior,
            args,
            kwargs,
            host_space=space if space is not None else self._record.host_space,
            capability=capability,
            creator=self._record.address,
        )
        self.claimed.append(address)
        return address

    def send_to(self, target: ActorAddress, payload: Any, *,
                reply_to: ActorAddress | None = None,
                headers: dict | None = None) -> None:
        envelope = Envelope(
            message=Message(payload, reply_to=reply_to, headers=headers or {}),
            sender=self._record.address,
            mode=Mode.DIRECT,
            target=target,
            port=Port.INVOCATION,
            sent_at=self.now,
            origin_space=self._record.host_space,
            trace_id=self._trace_id,
            parent_id=self._parent_id,
        )
        self._coordinator.send_direct(envelope)

    def become(self, behavior: "Behavior | Callable", *args: Any, **kwargs: Any) -> None:
        self._record.stage_become(as_behavior(behavior, *args, **kwargs))

    # -- ActorSpace primitives ---------------------------------------------------

    def send(self, destination: "Destination | str", payload: Any, *,
             reply_to: ActorAddress | None = None,
             headers: dict | None = None) -> None:
        envelope = Envelope(
            message=Message(payload, reply_to=reply_to, headers=headers or {}),
            sender=self._record.address,
            mode=Mode.SEND,
            destination=_as_destination(destination),
            port=Port.INVOCATION,
            sent_at=self.now,
            origin_space=self._record.host_space,
            trace_id=self._trace_id,
            parent_id=self._parent_id,
        )
        self._coordinator.send_pattern(envelope)

    def broadcast(self, destination: "Destination | str", payload: Any, *,
                  reply_to: ActorAddress | None = None,
                  headers: dict | None = None) -> None:
        envelope = Envelope(
            message=Message(payload, reply_to=reply_to, headers=headers or {}),
            sender=self._record.address,
            mode=Mode.BROADCAST,
            destination=_as_destination(destination),
            port=Port.INVOCATION,
            sent_at=self.now,
            origin_space=self._record.host_space,
            trace_id=self._trace_id,
            parent_id=self._parent_id,
        )
        self._coordinator.broadcast_pattern(envelope)

    def create_actorspace(
        self,
        capability: Capability | None = None,
        *,
        space: SpaceAddress | None = None,
        attributes=None,
        manager_factory=None,
    ) -> SpaceAddress:
        address = self._coordinator.create_space(capability, manager_factory)
        self.claimed.append(address)
        if attributes is not None:
            parent = space if space is not None else self._record.host_space
            self._coordinator.make_visible(address, attributes, parent, capability)
        return address

    def make_visible(
        self,
        target: MailAddress,
        attributes,
        space: SpaceAddress | None = None,
        capability: Capability | None = None,
    ) -> None:
        scope = space if space is not None else self._record.host_space
        self._coordinator.make_visible(target, attributes, scope, capability)

    def make_invisible(
        self,
        target: MailAddress,
        space: SpaceAddress | None = None,
        capability: Capability | None = None,
    ) -> None:
        scope = space if space is not None else self._record.host_space
        self._coordinator.make_invisible(target, scope, capability)

    def change_attributes(
        self,
        target: MailAddress,
        attributes,
        space: SpaceAddress | None = None,
        capability: Capability | None = None,
    ) -> None:
        scope = space if space is not None else self._record.host_space
        self._coordinator.change_attributes(target, attributes, scope, capability)

    def new_capability(self) -> Capability:
        return self._system.capabilities.new_capability()

    # -- misc ----------------------------------------------------------------------

    def terminate(self) -> None:
        self._coordinator.terminate_actor(self._record.address)

    def schedule(self, delay: float, payload: Any) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        system = self._system
        record = self._record
        envelope = Envelope(
            message=Message(payload),
            sender=record.address,
            mode=Mode.DIRECT,
            target=record.address,
            port=Port.INVOCATION,
            sent_at=self.now,
            origin_space=record.host_space,
            trace_id=self._trace_id,
            parent_id=self._parent_id,
        )
        log = system.tracer.log
        if log.enabled:
            # Event-only: scheduled self-messages never counted as sends,
            # but the recorder must still root their causal chain.
            log.emit("sent", self.now, record.node, envelope,
                     mode=Mode.DIRECT.value, scheduled=True)
        system.in_flight[envelope.envelope_id] = envelope
        system.events.schedule(
            self.now + delay,
            lambda: system.coordinators[record.node]._deliver(envelope),
        )
