"""The causal flight recorder: a structured log of envelope lifecycles.

The aggregate counters in :class:`~repro.runtime.tracing.Tracer` say *how
many* messages were suspended or dropped; they cannot say *which* message,
*why*, or what caused what.  This module records exactly that: every
envelope carries a ``trace_id`` (the root envelope of its causal tree) and
a ``parent_id`` (the envelope whose processing created it), and the
runtime emits typed :class:`TraceEvent` records at each lifecycle step:

====================  ========================================================
kind                  emitted when
====================  ========================================================
``sent``              an envelope enters the system (send/broadcast/direct,
                      or a scheduled self-message, marked ``scheduled``)
``resolved``          a pattern resolution completed (cache hits/misses and
                      entries examined in ``data``)
``hop``               the router forwarded the envelope over a link
``delivered``         the envelope reached its target actor
``enqueued``          the target mailbox accepted it (queue depth in ``data``)
``suspended``         no receiver matched; the envelope was parked
``released``          a visibility change un-parked a suspended envelope
``dropped``           the envelope was discarded (``reason`` in ``data``)
``visibility_op``     a replica applied one totally-ordered visibility op
``bus_sequenced``     the bus assigned an op its global sequence number
``daemon_fired``      a monitoring daemon rewrote derived attributes
``gc``                a garbage-collection cycle completed
``node_suspected``    a failure-detector observer missed enough heartbeats
``node_confirmed_down``  an observer confirmed a peer dead (first wins)
``node_recovered``    a suspected/confirmed peer is reachable again
``quarantined``       a replica masked a dead node's directory entries
``unquarantined``     a replica lifted the mask on recovery
``dead_letter_queued``  an undeliverable envelope was captured for retry
``dead_letter_redelivered``  a captured envelope was re-routed post-recovery
``dead_letter_expired``  a captured envelope hit its attempt/capacity bound
``failover``          the bus re-elected a sequencer / regenerated the token
====================  ========================================================

Events land in a bounded ring buffer (oldest evicted first) and are
pushed synchronously to *sinks* (persistence: JSONL, Chrome trace) and
*subscribers* (reaction: the section-8 event-driven daemons).  When the
log is disabled the ``emit`` call is a single attribute test — the
tracing-off hot path stays at pre-flight-recorder cost, which the
runtime micro-benchmark guards.

Chrome ``trace_event`` export (:func:`chrome_trace`) gives each node its
own track and binds ``sent -> delivered`` pairs with flow arrows, so a
run opens directly in ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Any, Callable, Iterable

#: Event kinds the runtime emits (sinks may see others from user code).
EVENT_KINDS = (
    "sent",
    "resolved",
    "hop",
    "enqueued",
    "suspended",
    "released",
    "delivered",
    "dropped",
    "visibility_op",
    "bus_sequenced",
    "daemon_fired",
    "gc",
    "node_suspected",
    "node_confirmed_down",
    "node_recovered",
    "quarantined",
    "unquarantined",
    "dead_letter_queued",
    "dead_letter_redelivered",
    "dead_letter_expired",
    "failover",
)


@dataclass
class TraceEvent:
    """One structured lifecycle event.

    ``t`` is virtual time.  ``envelope_id``/``trace_id``/``parent_id``
    are ``None`` for events not tied to an envelope (visibility ops,
    daemon sweeps, GC cycles).  ``data`` holds kind-specific detail.
    """

    seq: int
    t: float
    kind: str
    node: int
    envelope_id: int | None = None
    trace_id: int | None = None
    parent_id: int | None = None
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """A JSON-ready plain dict (data values stringified as needed)."""
        out = {
            "seq": self.seq,
            "t": self.t,
            "kind": self.kind,
            "node": self.node,
        }
        if self.envelope_id is not None:
            out["envelope_id"] = self.envelope_id
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.data:
            out["data"] = {k: _jsonable(v) for k, v in self.data.items()}
        return out

    def __repr__(self):
        env = f" env#{self.envelope_id}" if self.envelope_id is not None else ""
        return f"<TraceEvent {self.seq} t={self.t:.4f} {self.kind} n{self.node}{env}>"


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


class EventLog:
    """Bounded ring buffer of :class:`TraceEvent` with sinks and subscribers.

    Parameters
    ----------
    capacity:
        Ring-buffer size; the oldest events are evicted once full.
        Sinks see every event regardless of eviction.
    enabled:
        When ``False``, :meth:`emit` returns immediately — the recorder
        costs one attribute check per call site.
    """

    def __init__(self, capacity: int = 65536, enabled: bool = True):
        if capacity <= 0:
            raise ValueError(f"event log capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self.sinks: list[Any] = []
        self.subscribers: list[Callable[[TraceEvent], None]] = []
        #: Every event ever emitted (ring eviction does not decrement).
        self.emitted_count = 0
        self._next_seq = 0

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent],
                    capacity: int | None = None) -> "EventLog":
        """A query-only log over externally produced events.

        The telemetry collector merges per-node event streams into one
        timeline; wrapping the merged list in an :class:`EventLog` makes
        every query (:meth:`causal_chain`, :meth:`for_trace`,
        :meth:`by_kind`) work across node boundaries.
        """
        materialized = list(events)
        log = cls(capacity=capacity or max(len(materialized), 1),
                  enabled=False)
        log.events.extend(materialized)
        log.emitted_count = len(materialized)
        return log

    # -- emission ---------------------------------------------------------------

    def emit(
        self,
        kind: str,
        t: float,
        node: int,
        envelope=None,
        **data: Any,
    ) -> TraceEvent | None:
        """Record one event; returns it, or ``None`` when disabled.

        ``envelope`` (any object with ``envelope_id``/``trace_id``/
        ``parent_id`` attributes — in practice an
        :class:`~repro.core.messages.Envelope`) supplies the causal ids.
        """
        if not self.enabled:
            return None
        event = TraceEvent(
            seq=self._next_seq,
            t=t,
            kind=kind,
            node=node,
            envelope_id=getattr(envelope, "envelope_id", None),
            trace_id=getattr(envelope, "trace_id", None),
            parent_id=getattr(envelope, "parent_id", None),
            data=data,
        )
        self._next_seq += 1
        self.emitted_count += 1
        self.events.append(event)
        for sink in self.sinks:
            sink.write(event)
        for subscriber in self.subscribers:
            subscriber(event)
        return event

    @property
    def next_seq(self) -> int:
        """The seq the next emitted event will carry."""
        return self._next_seq

    # -- sinks and subscribers ----------------------------------------------------

    def add_sink(self, sink) -> None:
        """Attach a sink (an object with ``write(event)`` and ``close()``)."""
        self.sinks.append(sink)

    def remove_sink(self, sink) -> None:
        self.sinks.remove(sink)

    def subscribe(self, fn: Callable[[TraceEvent], None]) -> Callable[[], None]:
        """Register a synchronous per-event callback; returns an unsubscriber."""
        self.subscribers.append(fn)

        def unsubscribe() -> None:
            if fn in self.subscribers:
                self.subscribers.remove(fn)

        return unsubscribe

    def close(self) -> None:
        """Close every sink (flushes files); the log stays usable."""
        for sink in self.sinks:
            sink.close()

    # -- queries ----------------------------------------------------------------

    def clear(self) -> None:
        """Drop buffered events; sinks and subscribers stay attached."""
        self.events.clear()

    def by_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_trace(self, trace_id: int) -> list[TraceEvent]:
        """Every buffered event of one causal tree, in emission order."""
        return [e for e in self.events if e.trace_id == trace_id]

    def causal_chain(self, envelope_id: int) -> list[int]:
        """Envelope ids from ``envelope_id`` back to its causal root.

        Follows ``parent_id`` links as recorded in buffered events.  The
        chain ends at the first envelope with no recorded parent (the
        root, whose ``sent`` event started the tree).
        """
        parents: dict[int, int | None] = {}
        for e in self.events:
            if e.envelope_id is not None and e.envelope_id not in parents:
                parents[e.envelope_id] = e.parent_id
        chain = [envelope_id]
        seen = {envelope_id}
        current = envelope_id
        while True:
            parent = parents.get(current)
            if parent is None or parent in seen:
                return chain
            chain.append(parent)
            seen.add(parent)
            current = parent

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __repr__(self):
        state = "on" if self.enabled else "off"
        return (
            f"<EventLog {state} buffered={len(self.events)}/{self.capacity} "
            f"emitted={self.emitted_count}>"
        )


class JsonlSink:
    """Stream events as one JSON object per line.

    Accepts a path or an open text file.  Every line is flushed to the
    OS as it is written: a SIGKILLed node (the cluster fault drills)
    leaves a usable event log up to the instant of death instead of
    losing the stdio-buffered tail — the point of a flight recorder.
    """

    def __init__(self, target: "str | IO[str]"):
        if isinstance(target, str):
            # buffering=1 is line-buffered for text files; the explicit
            # flush in write() is the guarantee, this just keeps the
            # window small even if a write is interrupted mid-line.
            self._file: IO[str] = open(
                target, "w", encoding="utf-8", buffering=1)
            self._owns = True
        else:
            self._file = target
            self._owns = False
        self.written = 0

    def write(self, event: TraceEvent) -> None:
        self._file.write(json.dumps(event.to_dict()) + "\n")
        self._file.flush()
        self.written += 1

    def close(self) -> None:
        self._file.flush()
        if self._owns:
            self._file.close()

    def __repr__(self):
        return f"<JsonlSink written={self.written}>"


# ---------------------------------------------------------------------------
# Chrome trace_event export
# ---------------------------------------------------------------------------

#: Virtual-time unit -> trace microseconds.  Virtual latencies are small
#: fractions; scaling one virtual time unit to 1ms of trace time keeps
#: Perfetto's zoom levels comfortable.
_TRACE_US_PER_VT = 1_000.0

#: Event data fields naming the actor a lifecycle step happened *in*.
#: Used to assign per-actor ``tid`` tracks inside each node's process.
_ACTOR_FIELDS = ("receiver", "actor")


def _actor_label(event: TraceEvent) -> str | None:
    for key in _ACTOR_FIELDS:
        value = event.data.get(key)
        if value is not None:
            return str(value)
    return None


def chrome_trace(events: Iterable[TraceEvent],
                 us_per_t: float = _TRACE_US_PER_VT) -> dict:
    """Render events into the Chrome ``trace_event`` JSON object format.

    * Each node becomes a process (``pid``) with a human-readable
      ``process_name`` metadata record, giving per-node tracks.
    * Within a node, events naming an actor (``receiver``/``actor`` in
      their data) land on that actor's own thread track (``tid``); the
      node's runtime-level events stay on ``tid`` 0.
    * ``delivered`` events with a recorded ``sent_at`` become complete
      (``ph: "X"``) slices spanning the in-flight interval on the
      destination node's track.
    * Every event also appears as an instant (``ph: "i"``) mark.
    * ``sent``/``delivered`` pairs are linked with flow arrows
      (``ph: "s"`` / ``ph: "f"``) keyed by envelope id, so clicking a
      delivery walks back to its cause — including across nodes in a
      merged cluster trace, where the send and delivery carry
      different ``pid`` values.

    ``us_per_t`` converts the events' timescale to trace microseconds:
    the default suits virtual time; merged cluster traces carry real
    seconds and pass ``1e6``.
    """
    trace_events: list[dict] = []
    nodes_seen: set[int] = set()
    # node -> actor label -> tid (0 is the node's runtime track).
    tids: dict[int, dict[str, int]] = {}
    materialized = list(events)
    for event in materialized:
        nodes_seen.add(event.node)
        label = _actor_label(event)
        if label is not None:
            node_tids = tids.setdefault(event.node, {})
            if label not in node_tids:
                node_tids[label] = len(node_tids) + 1
    for node in sorted(nodes_seen):
        trace_events.append({
            "name": "process_name",
            "ph": "M",
            "pid": node,
            "tid": 0,
            "args": {"name": f"node {node}"},
        })
        trace_events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": node,
            "tid": 0,
            "args": {"name": "runtime"},
        })
        for label, tid in sorted(tids.get(node, {}).items(),
                                 key=lambda item: item[1]):
            trace_events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": node,
                "tid": tid,
                "args": {"name": label},
            })
    for event in materialized:
        ts = event.t * us_per_t
        args = {k: _jsonable(v) for k, v in event.data.items()}
        if event.envelope_id is not None:
            args["envelope_id"] = event.envelope_id
        if event.trace_id is not None:
            args["trace_id"] = event.trace_id
        if event.parent_id is not None:
            args["parent_id"] = event.parent_id
        label = _actor_label(event)
        tid = tids.get(event.node, {}).get(label, 0) if label else 0
        common = {"cat": "actorspace", "pid": event.node, "tid": tid}
        name = event.kind
        if event.kind == "dropped" and "reason" in event.data:
            name = f"dropped:{event.data['reason']}"
        trace_events.append({
            "name": name, "ph": "i", "ts": ts, "s": "p", "args": args,
            **common,
        })
        if event.kind == "delivered" and "sent_at" in event.data:
            sent_ts = float(event.data["sent_at"]) * us_per_t
            trace_events.append({
                "name": f"in-flight {event.data.get('mode', 'msg')}",
                "ph": "X",
                "ts": sent_ts,
                "dur": max(ts - sent_ts, 1.0),
                "args": args,
                **common,
            })
        if event.envelope_id is not None:
            if event.kind == "sent":
                trace_events.append({
                    "name": "causality", "ph": "s", "id": event.envelope_id,
                    "ts": ts, **common,
                })
            elif event.kind == "delivered":
                trace_events.append({
                    "name": "causality", "ph": "f", "bp": "e",
                    "id": event.envelope_id, "ts": ts, **common,
                })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro ActorSpace flight recorder"},
    }


def export_chrome_trace(events: Iterable[TraceEvent], path: str,
                        us_per_t: float = _TRACE_US_PER_VT) -> dict:
    """Write :func:`chrome_trace` output to ``path``; returns the dict."""
    trace = chrome_trace(events, us_per_t=us_per_t)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh)
    return trace


def validate_chrome_trace(trace: dict) -> list[str]:
    """Structural sanity check of an exported trace; returns problem strings.

    Used by the CI smoke job: an empty return means the file will load
    in ``chrome://tracing`` / Perfetto.
    """
    problems: list[str] = []
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return ["missing traceEvents container"]
    records = trace["traceEvents"]
    if not isinstance(records, list) or not records:
        return ["traceEvents empty or not a list"]
    allowed_phases = {"M", "i", "X", "s", "f", "B", "E"}
    for i, record in enumerate(records):
        for key in ("name", "ph", "pid"):
            if key not in record:
                problems.append(f"record {i} missing {key!r}")
        ph = record.get("ph")
        if ph not in allowed_phases:
            problems.append(f"record {i} has unexpected phase {ph!r}")
        if ph != "M" and "ts" not in record:
            problems.append(f"record {i} ({ph}) missing ts")
        if ph == "X" and "dur" not in record:
            problems.append(f"record {i} (X) missing dur")
    return problems
