"""The virtual coordinator bus: totally ordered visibility updates.

Section 7.3: "A coordinator process uses the network connection to
broadcast information to other coordinators in order to maintain coherence
of the state of ActorSpace. ... the current design needs a global ordering
on individual broadcasts between coordinators to order visibility changes
globally, so that all nodes have the same view of visibility in ActorSpace
(although not necessarily the same order on broadcasts to actors).  The
broadcasting between the coordinators could, for instance, be done using
either the Amoeba broadcast protocol or a centralized broadcaster and
sequencer."

We implement both families the paper names:

* :class:`SequencerBus` — a centralized sequencer (Chang & Maxemchuk
  style [9]): submissions travel to a sequencer node, receive a global
  sequence number, and are fanned out to every coordinator.
* :class:`TokenRingBus` — a rotating-token protocol (the Amoeba/token
  family): the token visits nodes round-robin; the holder stamps and fans
  out its pending submissions.

Both guarantee: (1) a single total order of operations, identical at every
replica, and (2) per-origin FIFO (a node's own operations apply in the
order it issued them — required so "create space" precedes "make visible
in that space").  Coordinators apply operations through a hold-back queue
keyed by sequence number, so delivery-order jitter never reorders
application.  Experiment E9 verifies coherence and compares the two
protocols' latency/message cost.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from .clock import VirtualClock
from .events import EventQueue
from .transport import Transport

#: Event priority for bus traffic: applied before same-instant actor work,
#: so a visibility change never races a delivery scheduled alongside it.
BUS_PRIORITY = -1


class OpKind(enum.Enum):
    """The visibility-affecting operations replicated through the bus."""

    ADD_SPACE = "add_space"
    DESTROY_SPACE = "destroy_space"
    MAKE_VISIBLE = "make_visible"
    MAKE_INVISIBLE = "make_invisible"
    CHANGE_ATTRIBUTES = "change_attributes"
    BIND_CAPABILITY = "bind_capability"
    PURGE = "purge"  #: remove a collected entity from all registries


_op_ids = itertools.count()


@dataclass
class VisibilityOp:
    """One replicated operation plus its origin bookkeeping."""

    kind: OpKind
    args: dict[str, Any]
    origin_node: int
    origin_seq: int = 0  #: per-origin FIFO counter, set by the submitting coordinator
    op_id: int = field(default_factory=lambda: next(_op_ids))
    #: Called (only at the origin) if apply-time validation rejects the op.
    on_rejected: Callable[[Exception], None] | None = None
    #: Called (only at the origin) when the op applies successfully.
    on_applied: Callable[[], None] | None = None

    def __repr__(self):
        return f"<Op #{self.op_id} {self.kind.value} from n{self.origin_node}>"


class Bus:
    """Base class: total-order broadcast of :class:`VisibilityOp` values.

    ``deliver`` is a callback ``(node, global_seq, op)`` installed by the
    system; implementations must invoke it exactly once per (node, op) and
    assign each op exactly one ``global_seq`` from a gap-free sequence.
    """

    def __init__(
        self,
        nodes: list[int],
        events: EventQueue,
        clock: VirtualClock,
        transport: Transport,
    ):
        if not nodes:
            raise ValueError("bus needs at least one node")
        self.nodes = list(nodes)
        self.events = events
        self.clock = clock
        self.transport = transport
        self.deliver: Callable[[int, int, VisibilityOp], None] | None = None
        #: The system's flight recorder, wired after construction; the bus
        #: emits ``bus_sequenced`` events when it assigns global order.
        self.event_log = None
        #: Total protocol messages exchanged (cost accounting for E9).
        self.protocol_messages = 0
        self.ops_sequenced = 0
        #: The sequenced-op log: seq -> op.  Retained so a recovering
        #: coordinator can be brought up to date (state transfer); a real
        #: deployment would truncate it at the all-applied watermark.
        self.log: dict[int, VisibilityOp] = {}

    def submit(self, op: VisibilityOp) -> None:  # pragma: no cover - abstract
        """Accept ``op`` from its origin coordinator for global ordering."""
        raise NotImplementedError

    def replay_to(self, node: int, from_seq: int) -> int:
        """State transfer: redeliver every logged op >= ``from_seq`` to ``node``.

        Called when a coordinator recovers from a crash; the missed ops
        arrive with ordinary transport latency and flow through the same
        hold-back application path, so recovery is just catching up on the
        total order.  Returns the number of ops scheduled for replay.
        """
        assert self.deliver is not None, "bus not wired to a system"
        from repro.core.errors import TransportError

        source = self.nodes[0]
        count = 0
        for seq in sorted(s for s in self.log if s >= from_seq):
            op = self.log[seq]
            self.protocol_messages += 1
            try:
                latency = self.transport.deliver_latency(source, node)
            except (TransportError, RuntimeError):  # pragma: no cover
                break
            count += 1
            self.events.schedule(
                self.clock.now + latency,
                (lambda n=node, s=seq, o=op: self.deliver(n, s, o)),
                priority=BUS_PRIORITY,
            )
        return count

    # -- shared helpers ----------------------------------------------------------

    def _fan_out(self, seq: int, op: VisibilityOp, from_node: int) -> None:
        """Send the sequenced op to every coordinator.

        Crashed nodes are skipped; a real deployment would replay the
        missed operations on recovery (out of scope for the experiments,
        which never recover a coordinator).
        """
        assert self.deliver is not None, "bus not wired to a system"
        from repro.core.errors import TransportError

        self.log[seq] = op
        if self.event_log is not None and self.event_log.enabled:
            self.event_log.emit(
                "bus_sequenced", self.clock.now, from_node, None,
                global_seq=seq, op=op.kind.value, origin_node=op.origin_node,
                origin_seq=op.origin_seq,
            )
        for node in self.nodes:
            self.protocol_messages += 1
            try:
                latency = self.transport.deliver_latency(from_node, node)
            except (TransportError, RuntimeError):
                continue
            self.events.schedule(
                self.clock.now + latency,
                (lambda n=node, s=seq, o=op: self.deliver(n, s, o)),
                priority=BUS_PRIORITY,
            )


class SequencerBus(Bus):
    """Centralized broadcaster-and-sequencer (Chang & Maxemchuk [9]).

    Submissions are unicast to the sequencer node, buffered there until
    per-origin FIFO order is restored, stamped with the next global
    sequence number, and fanned out to all nodes.
    """

    def __init__(self, nodes, events, clock, transport, sequencer_node: int | None = None):
        super().__init__(nodes, events, clock, transport)
        self.sequencer_node = self.nodes[0] if sequencer_node is None else sequencer_node
        self._next_seq = 0
        #: Per-origin FIFO reassembly at the sequencer.
        self._expected: dict[int, int] = {}
        self._holdback: dict[tuple[int, int], VisibilityOp] = {}

    def submit(self, op: VisibilityOp) -> None:
        self.protocol_messages += 1
        latency = self.transport.deliver_latency(op.origin_node, self.sequencer_node)
        self.events.schedule(
            self.clock.now + latency,
            lambda: self._at_sequencer(op),
            priority=BUS_PRIORITY,
        )

    def _at_sequencer(self, op: VisibilityOp) -> None:
        origin = op.origin_node
        self._expected.setdefault(origin, 0)
        self._holdback[(origin, op.origin_seq)] = op
        # Release the contiguous run now available from this origin.
        while (origin, self._expected[origin]) in self._holdback:
            ready = self._holdback.pop((origin, self._expected[origin]))
            self._expected[origin] += 1
            seq = self._next_seq
            self._next_seq += 1
            self.ops_sequenced += 1
            self._fan_out(seq, ready, self.sequencer_node)

    def __repr__(self):
        return f"<SequencerBus @n{self.sequencer_node} seq={self._next_seq}>"


class TokenRingBus(Bus):
    """Rotating-token total order (the Amoeba/token-protocol family).

    A token circulates through the nodes in id order.  When a node holds
    the token, all submissions that have *arrived* at that node are
    stamped with consecutive global sequence numbers and fanned out.  The
    token then travels to the next node after ``hold_time``.

    The token "carries" the global sequence counter, which is what makes
    the order total without a central sequencer.
    """

    def __init__(self, nodes, events, clock, transport, hold_time: float = 0.05):
        super().__init__(nodes, events, clock, transport)
        self.hold_time = hold_time
        self._next_seq = 0
        self._pending: dict[int, list[VisibilityOp]] = {n: [] for n in self.nodes}
        self._expected: dict[int, int] = {}
        self._holdback: dict[tuple[int, int], VisibilityOp] = {}
        self._token_holder_index = 0
        self._token_started = False

    def submit(self, op: VisibilityOp) -> None:
        # The op is already at its origin node; it waits for the token.
        self._enqueue_fifo(op)
        self._ensure_token()

    def _enqueue_fifo(self, op: VisibilityOp) -> None:
        """Restore per-origin FIFO before queuing for the token."""
        origin = op.origin_node
        expected = self._expected.setdefault(origin, 0)
        self._holdback[(origin, op.origin_seq)] = op
        while (origin, self._expected[origin]) in self._holdback:
            ready = self._holdback.pop((origin, self._expected[origin]))
            self._expected[origin] += 1
            self._pending[origin].append(ready)

    def _ensure_token(self) -> None:
        if not self._token_started:
            self._token_started = True
            self.events.schedule(
                self.clock.now + self.hold_time,
                self._token_arrives,
                priority=BUS_PRIORITY,
            )

    def _token_arrives(self) -> None:
        holder = self.nodes[self._token_holder_index]
        queue = self._pending[holder]
        while queue:
            op = queue.pop(0)
            seq = self._next_seq
            self._next_seq += 1
            self.ops_sequenced += 1
            self._fan_out(seq, op, holder)
        # Pass the token along the ring.
        self._token_holder_index = (self._token_holder_index + 1) % len(self.nodes)
        next_holder = self.nodes[self._token_holder_index]
        self.protocol_messages += 1  # the token itself is a message
        hop = self.transport.deliver_latency(holder, next_holder)
        # The token circulates while work is pending; it parks once idle so
        # the event queue can drain (the next submit restarts it).
        if self._any_pending():
            self.events.schedule(
                self.clock.now + hop + self.hold_time,
                self._token_arrives,
                priority=BUS_PRIORITY,
            )
        else:
            self._token_started = False

    def _any_pending(self) -> bool:
        return any(self._pending[n] for n in self.nodes) or bool(self._holdback)

    def __repr__(self):
        return f"<TokenRingBus holder={self.nodes[self._token_holder_index]} seq={self._next_seq}>"
