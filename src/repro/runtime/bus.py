"""The virtual coordinator bus: totally ordered visibility updates.

Section 7.3: "A coordinator process uses the network connection to
broadcast information to other coordinators in order to maintain coherence
of the state of ActorSpace. ... the current design needs a global ordering
on individual broadcasts between coordinators to order visibility changes
globally, so that all nodes have the same view of visibility in ActorSpace
(although not necessarily the same order on broadcasts to actors).  The
broadcasting between the coordinators could, for instance, be done using
either the Amoeba broadcast protocol or a centralized broadcaster and
sequencer."

We implement both families the paper names:

* :class:`SequencerBus` — a centralized sequencer (Chang & Maxemchuk
  style [9]): submissions travel to a sequencer node, receive a global
  sequence number, and are fanned out to every coordinator.
* :class:`TokenRingBus` — a rotating-token protocol (the Amoeba/token
  family): the token visits nodes round-robin; the holder stamps and fans
  out its pending submissions.

Both guarantee: (1) a single total order of operations, identical at every
replica, and (2) per-origin FIFO (a node's own operations apply in the
order it issued them — required so "create space" precedes "make visible
in that space").  Coordinators apply operations through a hold-back queue
keyed by sequence number, so delivery-order jitter never reorders
application.  Experiment E9 verifies coherence and compares the two
protocols' latency/message cost.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from .clock import VirtualClock
from .events import EventQueue
from .transport import Transport

#: Event priority for bus traffic: applied before same-instant actor work,
#: so a visibility change never races a delivery scheduled alongside it.
BUS_PRIORITY = -1


class OpKind(enum.Enum):
    """The visibility-affecting operations replicated through the bus."""

    ADD_SPACE = "add_space"
    DESTROY_SPACE = "destroy_space"
    MAKE_VISIBLE = "make_visible"
    MAKE_INVISIBLE = "make_invisible"
    CHANGE_ATTRIBUTES = "change_attributes"
    BIND_CAPABILITY = "bind_capability"
    PURGE = "purge"  #: remove a collected entity from all registries


_op_ids = itertools.count()


@dataclass
class VisibilityOp:
    """One replicated operation plus its origin bookkeeping."""

    kind: OpKind
    args: dict[str, Any]
    origin_node: int
    origin_seq: int = 0  #: per-(origin, shard) FIFO counter, set by the submitter
    op_id: int = field(default_factory=lambda: next(_op_ids))
    #: Home shard under a partitioned visibility plane (0 when unsharded).
    shard: int = 0
    #: Node-local monotonic sequencing tick, stamped when the op receives
    #: its per-shard sequence number; the cross-shard merge key for
    #: offline replay (``repro.shard.merge``).  ``None`` until sequenced.
    tick: "int | None" = None
    #: ``op_id`` of the primary copy when this op is a per-shard fan copy
    #: (BIND_CAPABILITY / PURGE are replicated once per shard stream);
    #: ``None`` for ordinary ops and primaries.
    fan_of: "int | None" = None
    #: Called (only at the origin) if apply-time validation rejects the op.
    on_rejected: Callable[[Exception], None] | None = None
    #: Called (only at the origin) when the op applies successfully.
    on_applied: Callable[[], None] | None = None

    def __repr__(self):
        return f"<Op #{self.op_id} {self.kind.value} from n{self.origin_node}>"


class Bus:
    """Base class: total-order broadcast of :class:`VisibilityOp` values.

    ``deliver`` is a callback ``(node, global_seq, op)`` installed by the
    system; implementations must invoke it exactly once per (node, op) and
    assign each op exactly one ``global_seq`` from a gap-free sequence.
    """

    def __init__(
        self,
        nodes: list[int],
        events: EventQueue,
        clock: VirtualClock,
        transport: Transport,
    ):
        if not nodes:
            raise ValueError("bus needs at least one node")
        self.nodes = list(nodes)
        self.events = events
        self.clock = clock
        self.transport = transport
        self.deliver: Callable[[int, int, VisibilityOp], None] | None = None
        #: The system's flight recorder, wired after construction; the bus
        #: emits ``bus_sequenced`` events when it assigns global order.
        self.event_log = None
        #: The system's tracer, wired after construction; failover and
        #: token regeneration report through it when present.
        self.tracer = None
        #: Total protocol messages exchanged (cost accounting for E9).
        self.protocol_messages = 0
        self.ops_sequenced = 0
        #: Failover events survived (sequencer re-elections / token
        #: regenerations), for E11-style reliability accounting.
        self.failovers = 0
        #: The sequenced-op log: seq -> op.  Retained so a recovering
        #: coordinator can be brought up to date (state transfer); a real
        #: deployment would truncate it at the all-applied watermark.
        self.log: dict[int, VisibilityOp] = {}
        #: Optional :class:`repro.store.NodeStore`.  When attached, every
        #: sequenced op is persisted and committed before local delivery
        #: is scheduled (transactional outbox), and ``replay_to`` can
        #: fall back to disk when no live replica can source a transfer.
        self.store = None
        self.disk_replays = 0
        #: Sharding hooks, set by :class:`repro.shard.ShardedBus` when
        #: this bus serves one shard of a partitioned plane: the shard id,
        #: a shared cross-shard sequencing journal (appended at fan-out
        #: time), and a shared node-local tick counter (the offline merge
        #: key).  All ``None``/0 for a standalone bus.
        self.shard_id = 0
        self.journal: "list[tuple[int, int]] | None" = None
        self.tick_counter = None

    def submit(self, op: VisibilityOp) -> None:  # pragma: no cover - abstract
        """Accept ``op`` from its origin coordinator for global ordering."""
        raise NotImplementedError

    def live_nodes(self) -> list[int]:
        """The nodes the transport currently considers up, in id order."""
        return [n for n in self.nodes if not self.transport.node_is_down(n)]

    def on_node_down(self, node: int) -> None:
        """Failure notification (crash injection or detector confirm)."""

    def on_node_recovered(self, node: int) -> None:
        """Recovery notification; protocols resume work parked on ``node``."""

    def replay_to(self, node: int, from_seq: int) -> int:
        """State transfer: redeliver every logged op >= ``from_seq`` to ``node``.

        Called when a coordinator recovers from a crash; the missed ops
        arrive with ordinary transport latency and flow through the same
        hold-back application path, so recovery is just catching up on the
        total order.  The transfer source is a *live* replica — preferring
        the lowest live node other than ``node`` itself — because the
        historical fixed choice (node 0) silently skipped the transfer
        whenever node 0 was down, leaving the recovering replica diverged
        forever.  Returns the number of ops scheduled for replay.

        Raises
        ------
        NodeDownError
            If there are ops to replay and no live node can source them.
        """
        assert self.deliver is not None, "bus not wired to a system"
        from repro.core.errors import NodeDownError, TransportError

        pending = sorted(s for s in self.log if s >= from_seq)
        live = self.live_nodes()
        sources = [n for n in live if n != node] or ([node] if node in live else [])
        if not sources and self.store is not None:
            # The disk may hold ops the in-memory log cannot see (a fresh
            # process starts with an empty log), so consult it whenever no
            # live replica can source the transfer.
            return self._replay_from_store(node, from_seq)
        if not pending:
            return 0
        if not sources:
            raise NodeDownError(
                f"no live replica can source state transfer to node {node}"
            )
        source = sources[0]
        count = 0
        for seq in pending:
            op = self.log[seq]
            self.protocol_messages += 1
            try:
                latency = self.transport.deliver_latency(source, node)
            except (TransportError, RuntimeError):  # pragma: no cover
                break
            count += 1
            self.events.schedule(
                self.clock.now + latency,
                (lambda n=node, s=seq, o=op: self.deliver(n, s, o)),
                priority=BUS_PRIORITY,
                tag=("bus", node),
            )
        return count

    def _replay_from_store(self, node: int, from_seq: int) -> int:
        """State transfer from the persisted log when no replica lives.

        Before the store existed this case was a hard
        :class:`NodeDownError` — ops pending, nobody alive to send them —
        even though the recovering node itself had every op on disk.
        Disk replay schedules the missed ops locally (no network to
        cross, so they land at the next tick) through the same hold-back
        path as a live transfer.
        """
        count = 0
        for seq, op in self.store.read_ops(from_seq):
            self.log.setdefault(seq, op)
            count += 1
            self.events.schedule(
                self.clock.now,
                (lambda n=node, s=seq, o=op: self.deliver(n, s, o)),
                priority=BUS_PRIORITY,
                tag=("bus", node),
            )
        self.disk_replays += 1
        if self.event_log is not None and self.event_log.enabled:
            self.event_log.emit(
                "bus_disk_replay", self.clock.now, node, None,
                from_seq=from_seq, ops=count,
            )
        return count

    def _record_failover(self, protocol: str, reason: str,
                         new_leader: int | None = None) -> None:
        """Count one failover and report it to the tracer when wired."""
        self.failovers += 1
        if self.tracer is not None:
            self.tracer.on_failover(
                node=new_leader if new_leader is not None else -1,
                t=self.clock.now, protocol=protocol, reason=reason,
                new_leader=new_leader,
            )
        elif self.event_log is not None and self.event_log.enabled:
            self.event_log.emit(
                "failover", self.clock.now, new_leader if new_leader is not None else -1,
                None, protocol=protocol, reason=reason,
            )

    # -- shared helpers ----------------------------------------------------------

    def _fan_out(self, seq: int, op: VisibilityOp, from_node: int) -> None:
        """Send the sequenced op to every coordinator.

        Crashed nodes are skipped; a real deployment would replay the
        missed operations on recovery (out of scope for the experiments,
        which never recover a coordinator).
        """
        assert self.deliver is not None, "bus not wired to a system"
        from repro.core.errors import TransportError

        self.log[seq] = op
        if self.tick_counter is not None:
            op.tick = next(self.tick_counter)
        if self.journal is not None:
            self.journal.append((self.shard_id, seq))
        if self.store is not None:
            # Transactional outbox: the op is durable before any replica
            # sees it, so a crash can only lose ops nobody applied.
            if op.tick is None:
                self.store.append_op(seq, op)
            else:
                self.store.append_op(seq, op, tick=op.tick)
            self.store.commit()
        if self.event_log is not None and self.event_log.enabled:
            self.event_log.emit(
                "bus_sequenced", self.clock.now, from_node, None,
                global_seq=seq, op=op.kind.value, origin_node=op.origin_node,
                origin_seq=op.origin_seq,
            )
        for node in self.nodes:
            self.protocol_messages += 1
            try:
                latency = self.transport.deliver_latency(from_node, node)
            except (TransportError, RuntimeError):
                continue
            self.events.schedule(
                self.clock.now + latency,
                (lambda n=node, s=seq, o=op: self.deliver(n, s, o)),
                priority=BUS_PRIORITY,
                tag=("bus", node),
            )


class SequencerBus(Bus):
    """Centralized broadcaster-and-sequencer (Chang & Maxemchuk [9]).

    Submissions are unicast to the sequencer node, buffered there until
    per-origin FIFO order is restored, stamped with the next global
    sequence number, and fanned out to all nodes.
    """

    #: Virtual-time cost of electing a replacement sequencer (one
    #: coordination round before unacked submissions are re-driven).
    FAILOVER_DELAY = 0.05

    def __init__(self, nodes, events, clock, transport,
                 sequencer_node: int | None = None,
                 service_time: float = 0.0):
        super().__init__(nodes, events, clock, transport)
        self.sequencer_node = self.nodes[0] if sequencer_node is None else sequencer_node
        #: Modelled serial per-op service time at the sequencer (virtual
        #: seconds).  Zero (default) sequences instantaneously — the
        #: historical behavior.  Non-zero makes the sequencer a real
        #: queueing station: ops are stamped in order but fanned out one
        #: service interval apart, so a single global sequencer saturates
        #: and per-shard sequencers visibly divide the load (what
        #: ``bench_shard.py`` measures).
        self.service_time = service_time
        self._busy_until = 0.0
        self._next_seq = 0
        #: Per-origin FIFO reassembly at the sequencer.
        self._expected: dict[int, int] = {}
        self._holdback: dict[tuple[int, int], VisibilityOp] = {}
        #: Submissions not yet globally ordered: op_id -> op.  Failover
        #: re-drives these at the replacement sequencer; they are removed
        #: the moment the op is stamped and fanned out.
        self._unacked: dict[int, VisibilityOp] = {}
        #: Ops already stamped, so a re-driven duplicate is dropped.
        self._sequenced_ids: set[int] = set()
        self._redrive_scheduled = False

    def submit(self, op: VisibilityOp) -> None:
        """Accept ``op`` for ordering.  Never raises on a crashed
        sequencer: the op parks as unacked and failover re-drives it."""
        self._unacked[op.op_id] = op
        self._to_sequencer(op)

    def _to_sequencer(self, op: VisibilityOp) -> None:
        from repro.core.errors import TransportError

        if self.transport.node_is_down(op.origin_node):
            # The submitting node died before the unicast left it: the
            # op is lost with its origin (nobody else holds a copy).
            self._unacked.pop(op.op_id, None)
            return
        if self.transport.node_is_down(self.sequencer_node):
            self._failover()
            return
        self.protocol_messages += 1
        try:
            latency = self.transport.deliver_latency(op.origin_node, self.sequencer_node)
        except (TransportError, RuntimeError):
            self._failover()
            return
        self.events.schedule(
            self.clock.now + latency,
            lambda: self._at_sequencer(op),
            priority=BUS_PRIORITY,
            tag=("bus_seq",),
        )

    def _at_sequencer(self, op: VisibilityOp) -> None:
        if self.transport.node_is_down(self.sequencer_node):
            # The sequencer died while the unicast was in flight; the op
            # stays unacked and the failover path re-drives it.
            return
        if op.op_id in self._sequenced_ids:
            return  # duplicate of a re-driven op that already made it
        origin = op.origin_node
        self._expected.setdefault(origin, 0)
        self._holdback[(origin, op.origin_seq)] = op
        # Release the contiguous run now available from this origin.
        while (origin, self._expected[origin]) in self._holdback:
            ready = self._holdback.pop((origin, self._expected[origin]))
            self._expected[origin] += 1
            seq = self._next_seq
            self._next_seq += 1
            self.ops_sequenced += 1
            self._sequenced_ids.add(ready.op_id)
            self._unacked.pop(ready.op_id, None)
            if self.service_time > 0.0:
                # Queueing model: each op occupies the sequencer for one
                # service interval; fan-out happens when service completes.
                start = max(self.clock.now, self._busy_until)
                done = start + self.service_time
                self._busy_until = done
                self.events.schedule(
                    done,
                    (lambda s=seq, o=ready: self._fan_out(s, o, self.sequencer_node)),
                    priority=BUS_PRIORITY,
                    tag=("bus_seq",),
                )
            else:
                self._fan_out(seq, ready, self.sequencer_node)

    # -- failover ----------------------------------------------------------------

    def _failover(self) -> None:
        """Elect the lowest live node as replacement sequencer.

        The sequenced log, FIFO reassembly state, and next sequence
        number are modelled as shared bus state (a real deployment
        rebuilds them from the replicated log during election), so the
        replacement continues the gap-free global order; unacked
        submissions are re-driven after one election delay.
        """
        live = self.live_nodes()
        if not live:
            # Total outage: unacked ops wait for the first recovery.
            return
        if self.transport.node_is_down(self.sequencer_node):
            self.sequencer_node = live[0]
            self._record_failover("sequencer", "sequencer_down",
                                  new_leader=self.sequencer_node)
        self._schedule_redrive(self.FAILOVER_DELAY)

    def _schedule_redrive(self, delay: float) -> None:
        if self._redrive_scheduled:
            return
        self._redrive_scheduled = True
        self.events.schedule(
            self.clock.now + delay, self._redrive, priority=BUS_PRIORITY,
            tag=("bus_ctl",),
        )

    def _redrive(self) -> None:
        self._redrive_scheduled = False
        pending = sorted(
            self._unacked.values(), key=lambda o: (o.origin_node, o.origin_seq)
        )
        for op in pending:
            self._to_sequencer(op)

    def on_node_down(self, node: int) -> None:
        if node == self.sequencer_node:
            self._failover()

    def on_node_recovered(self, node: int) -> None:
        if self.transport.node_is_down(self.sequencer_node):
            self._failover()
        elif self._unacked:
            self._schedule_redrive(0.0)

    def __repr__(self):
        return f"<SequencerBus @n{self.sequencer_node} seq={self._next_seq}>"


class TokenRingBus(Bus):
    """Rotating-token total order (the Amoeba/token-protocol family).

    A token circulates through the nodes in id order.  When a node holds
    the token, all submissions that have *arrived* at that node are
    stamped with consecutive global sequence numbers and fanned out.  The
    token then travels to the next node after ``hold_time``.

    The token "carries" the global sequence counter, which is what makes
    the order total without a central sequencer.
    """

    def __init__(self, nodes, events, clock, transport, hold_time: float = 0.05):
        super().__init__(nodes, events, clock, transport)
        self.hold_time = hold_time
        self._next_seq = 0
        self._pending: dict[int, deque[VisibilityOp]] = {n: deque() for n in self.nodes}
        self._expected: dict[int, int] = {}
        self._holdback: dict[tuple[int, int], VisibilityOp] = {}
        self._token_holder_index = 0
        self._token_started = False

    def submit(self, op: VisibilityOp) -> None:
        # The op is already at its origin node; it waits for the token.
        self._enqueue_fifo(op)
        self._ensure_token()

    def _enqueue_fifo(self, op: VisibilityOp) -> None:
        """Restore per-origin FIFO before queuing for the token."""
        origin = op.origin_node
        self._expected.setdefault(origin, 0)
        self._holdback[(origin, op.origin_seq)] = op
        while (origin, self._expected[origin]) in self._holdback:
            ready = self._holdback.pop((origin, self._expected[origin]))
            self._expected[origin] += 1
            self._pending[origin].append(ready)

    def _ensure_token(self) -> None:
        if not self._token_started:
            self._token_started = True
            self.events.schedule(
                self.clock.now + self.hold_time,
                self._token_arrives,
                priority=BUS_PRIORITY,
                tag=("bus_token",),
            )

    def _token_arrives(self) -> None:
        from repro.core.errors import TransportError

        holder = self.nodes[self._token_holder_index]
        if self.transport.node_is_down(holder):
            # The holder crashed with the token: regenerate it at the next
            # live node.  The crashed node's parked ops stay parked until
            # it recovers — no other node holds copies of them.
            self._record_failover("token-ring", "token_regenerated")
        else:
            queue = self._pending[holder]
            while queue:
                op = queue.popleft()
                seq = self._next_seq
                self._next_seq += 1
                self.ops_sequenced += 1
                self._fan_out(seq, op, holder)
        # Pass the token to the next *live* node on the ring.
        next_index = self._next_live_index(self._token_holder_index)
        if next_index is None:
            # Total outage: the token parks; recovery restarts it.
            self._token_started = False
            return
        self._token_holder_index = next_index
        next_holder = self.nodes[next_index]
        self.protocol_messages += 1  # the token itself is a message
        try:
            hop = self.transport.deliver_latency(holder, next_holder)
        except (TransportError, RuntimeError):
            # The old holder (or the link out of it) is down; the
            # regenerated token materializes at the next holder after one
            # hold interval instead of killing the run.
            hop = self.hold_time
        # The token circulates while work is pending; it parks once idle so
        # the event queue can drain (the next submit restarts it).
        if self._any_pending():
            self.events.schedule(
                self.clock.now + hop + self.hold_time,
                self._token_arrives,
                priority=BUS_PRIORITY,
                tag=("bus_token",),
            )
        else:
            self._token_started = False

    def _next_live_index(self, from_index: int) -> int | None:
        """Index of the next live node on the ring, or ``None`` if all down."""
        n = len(self.nodes)
        for step in range(1, n + 1):
            idx = (from_index + step) % n
            if not self.transport.node_is_down(self.nodes[idx]):
                return idx
        return None

    def _any_pending(self) -> bool:
        """Is there work the token can still serve?

        Ops parked at crashed nodes are excluded: counting them would keep
        the token circulating forever (the event queue would never drain)
        for work that cannot be sequenced until the origin recovers.
        """
        down = self.transport.node_is_down
        if any(self._pending[n] and not down(n) for n in self.nodes):
            return True
        return any(not down(origin) for origin, _ in self._holdback)

    def on_node_recovered(self, node: int) -> None:
        if self._any_pending():
            self._ensure_token()

    def __repr__(self):
        return f"<TokenRingBus holder={self.nodes[self._token_holder_index]} seq={self._next_seq}>"
