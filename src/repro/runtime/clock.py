"""Virtual time.

The runtime is a discrete-event simulation: time is a float that only
moves when the event queue advances it.  Keeping the clock in its own
object (rather than a bare float on the system) lets every component hold
a reference and observe a consistent "now" without reaching back into the
scheduler.
"""

from __future__ import annotations


class VirtualClock:
    """A monotonically advancing virtual clock."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t``.

        Raises
        ------
        ValueError
            If ``t`` lies in the past — the event queue must never hand
            the clock an out-of-order timestamp; failing loudly here has
            caught every scheduler ordering bug in development.
        """
        if t < self._now:
            raise ValueError(f"clock cannot run backwards: {t} < {self._now}")
        self._now = t

    def __repr__(self):
        return f"<VirtualClock t={self._now:.6f}>"
